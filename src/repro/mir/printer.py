"""Textual rendering of MIR, in the spirit of LLVM assembly (Figure 1.2)."""

from __future__ import annotations

from repro.mir.instructions import Instr, Opcode
from repro.mir.module import Function, Module


def _operand(op) -> str:
    if op is None:
        return "void"
    kind, value = op
    if kind == "i":
        return str(value)
    if kind == "r":
        return f"%r{value}"
    return repr(op)


def _memref(ref) -> str:
    kind, value = ref
    if kind == "g":
        return f"@g+{value}"
    if kind == "f":
        return f"%fp+{value}"
    return f"[%r{value}]"


def format_instr(instr: Instr) -> str:
    op = instr.op
    dest = f"%r{instr.dest} = " if instr.dest is not None else ""
    meta = f"  ; {instr.var}@{instr.line}" if instr.var else ""
    if op == Opcode.CONST:
        return f"{dest}const {instr.a}"
    if op == Opcode.BIN:
        return f"{dest}{instr.a} {_operand(instr.b)}, {_operand(instr.c)}"
    if op == Opcode.UN:
        return f"{dest}{instr.a} {_operand(instr.b)}"
    if op == Opcode.LOAD:
        return f"{dest}load {_memref(instr.a)}{meta}"
    if op == Opcode.STORE:
        return f"store {_memref(instr.a)}, {_operand(instr.b)}{meta}"
    if op == Opcode.ADDR:
        return f"{dest}addr {instr.a} {instr.b} + {_operand(instr.c)}"
    if op == Opcode.BR:
        return f"br {_operand(instr.a)}, ->{instr.b}, ->{instr.c}"
    if op == Opcode.JMP:
        return f"jmp ->{instr.a}"
    if op in (Opcode.CALL, Opcode.CALLB, Opcode.SPAWN):
        args = ", ".join(_operand(a) for a in instr.b)
        return f"{dest}{op} @{instr.a}({args})"
    if op == Opcode.RET:
        return f"ret {_operand(instr.a)}" if instr.a is not None else "ret"
    if op in (Opcode.ENTER, Opcode.EXIT, Opcode.ITER):
        return f"{op} region#{instr.a} (line {instr.line})"
    if op in (Opcode.JOIN, Opcode.LOCK, Opcode.UNLOCK):
        return f"{op} {_operand(instr.a)}"
    return repr(instr)  # pragma: no cover


def format_function(func: Function) -> str:
    lines = [f"define {func.return_type} @{func.name}"
             f"({', '.join(p.name for p in func.params)}) "
             f"frame={func.frame_size} regs={func.n_regs} {{"]
    if func.code:
        starts = {idx: label for label, idx in func.block_starts.items()}
        for i, instr in enumerate(func.code):
            if i in starts:
                lines.append(f"bb{starts[i]}:")
            lines.append(f"  {i:4d}  {format_instr(instr)}")
    else:
        for block in func.blocks:
            lines.append(f"bb{block.label}:")
            for instr in block.instrs:
                lines.append(f"        {format_instr(instr)}")
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    parts = [f"; module {module.name}  globals={module.global_size} words"]
    for info, offset in module.global_layout():
        size = f"[{info.array_size}]" if info.is_array else ""
        parts.append(f"@{info.name}{size} = global {info.type_name} ; addr {offset}")
    for func in module.functions.values():
        parts.append("")
        parts.append(format_function(func))
    return "\n".join(parts)
