"""A small pass framework over MIR, mirroring the LLVM pass taxonomy (§1.4.2).

The framework's own analyses are implemented as passes where it buys
structure: instrumentation statistics, region verification, and the static
half of Phase 1.  Passes are deliberately lightweight — a callable plus a
name — managed by :class:`PassManager` which runs module passes, then
function passes per function, then loop passes per loop region (outermost
last, matching LLVM's LoopPass ordering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.mir.instructions import Opcode
from repro.mir.module import Function, Module, Region


@dataclass
class PassResult:
    """Accumulated named results of an analysis run."""

    data: dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str) -> object:
        return self.data[key]

    def __setitem__(self, key: str, value: object) -> None:
        self.data[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.data


ModulePassFn = Callable[[Module, PassResult], None]
FunctionPassFn = Callable[[Module, Function, PassResult], None]
LoopPassFn = Callable[[Module, Region, PassResult], None]


@dataclass
class Pass:
    name: str
    kind: str  # 'module' | 'function' | 'loop'
    run: Callable


class PassManager:
    """Schedules registered passes over a module."""

    def __init__(self) -> None:
        self.passes: list[Pass] = []

    def add_module_pass(self, name: str, fn: ModulePassFn) -> None:
        self.passes.append(Pass(name, "module", fn))

    def add_function_pass(self, name: str, fn: FunctionPassFn) -> None:
        self.passes.append(Pass(name, "function", fn))

    def add_loop_pass(self, name: str, fn: LoopPassFn) -> None:
        self.passes.append(Pass(name, "loop", fn))

    def run(self, module: Module) -> PassResult:
        result = PassResult()
        for p in self.passes:
            if p.kind == "module":
                p.run(module, result)
            elif p.kind == "function":
                for func in module.functions.values():
                    p.run(module, func, result)
            else:  # loop passes, innermost first then outermost (LLVM order)
                for region in _loops_innermost_first(module):
                    p.run(module, region, result)
        return result


def _loops_innermost_first(module: Module) -> list[Region]:
    loops = module.loops()
    depth: dict[int, int] = {}

    def depth_of(region: Region) -> int:
        if region.region_id in depth:
            return depth[region.region_id]
        d = 0
        parent = region.parent
        while parent is not None:
            pr = module.regions[parent]
            if pr.kind == "loop":
                d += 1
            parent = pr.parent
        depth[region.region_id] = d
        return d

    return sorted(loops, key=depth_of, reverse=True)


# ---------------------------------------------------------------------------
# Built-in analysis passes
# ---------------------------------------------------------------------------


def instrumentation_stats(module: Module, result: PassResult) -> None:
    """Counts instrumentation sites per function (memory ops, markers)."""
    stats: dict[str, dict[str, int]] = {}
    for func in module.functions.values():
        loads = stores = markers = 0
        for instr in func.code:
            if instr.op == Opcode.LOAD:
                loads += 1
            elif instr.op == Opcode.STORE:
                stores += 1
            elif instr.op in (Opcode.ENTER, Opcode.EXIT, Opcode.ITER):
                markers += 1
        stats[func.name] = {
            "loads": loads,
            "stores": stores,
            "markers": markers,
            "instrs": len(func.code),
        }
    result["instrumentation_stats"] = stats


def verify_regions(module: Module, result: PassResult) -> None:
    """Checks ENTER/EXIT nesting per function (static well-formedness).

    Every code path should keep region markers properly nested; since breaks
    can jump across branch regions, we only verify that each region has
    exactly one ENTER and one EXIT site and that parents enclose children by
    line range.
    """
    enters: dict[int, int] = {}
    exits: dict[int, int] = {}
    for func in module.functions.values():
        for instr in func.code:
            if instr.op == Opcode.ENTER:
                enters[instr.a] = enters.get(instr.a, 0) + 1
            elif instr.op == Opcode.EXIT:
                exits[instr.a] = exits.get(instr.a, 0) + 1
    problems: list[str] = []
    for region in module.regions.values():
        if region.kind == "func":
            continue
        if enters.get(region.region_id, 0) != 1:
            problems.append(f"region {region.region_id} has no unique ENTER")
        if exits.get(region.region_id, 0) != 1:
            problems.append(f"region {region.region_id} has no unique EXIT")
        if region.parent is not None:
            parent = module.regions[region.parent]
            if not (
                parent.start_line <= region.start_line
                and region.end_line <= parent.end_line
            ):
                problems.append(
                    f"region {region.region_id} not enclosed by parent line range"
                )
    result["region_problems"] = problems


def loop_memops(module: Module, region: Region, result: PassResult) -> None:
    """Collects static memory-operation ids per loop region (used by the
    skipping optimization's per-op state sizing, §2.4)."""
    table = result.data.setdefault("loop_memops", {})
    func = module.functions[region.func]
    ops = [
        instr.op_id
        for instr in func.code
        if instr.is_memory() and region.contains_line(instr.line)
    ]
    table[region.region_id] = ops


def default_pipeline() -> PassManager:
    """The standard static-analysis pipeline run before profiling."""
    pm = PassManager()
    pm.add_module_pass("instrumentation-stats", instrumentation_stats)
    pm.add_module_pass("verify-regions", verify_regions)
    pm.add_loop_pass("loop-memops", loop_memops)
    return pm
