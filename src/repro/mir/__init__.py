"""MIR: the LLVM-IR-like intermediate representation.

The paper's framework operates on LLVM IR in clang ``-O0`` shape: every
source variable lives in memory (``alloca``) and every use is an explicit
``load``/``store``.  MIR reproduces exactly that shape — a three-address
register machine over a flat word-addressed memory, with region markers
(loop / branch entry, exit, iteration) standing in for DiscoPoP's control
-region instrumentation.

Pipeline: MiniC AST --(:mod:`repro.mir.lowering`)--> :class:`Module` of
:class:`Function` s of :class:`BasicBlock` s of :class:`Instr` uctions,
then flattened to linear code arrays executed by :mod:`repro.runtime`.
"""

from repro.mir.instructions import Instr, Opcode
from repro.mir.module import BasicBlock, Function, Module, Region
from repro.mir.lowering import lower, compile_source
from repro.mir.cfg import CFG, build_cfg, dominators, postdominators
from repro.mir.printer import format_function, format_module

__all__ = [
    "Instr",
    "Opcode",
    "BasicBlock",
    "Function",
    "Module",
    "Region",
    "lower",
    "compile_source",
    "CFG",
    "build_cfg",
    "dominators",
    "postdominators",
    "format_function",
    "format_module",
]
