"""Control-flow graph construction and dominance analyses for MIR.

Used by the re-convergence-point computation (§3.2.2: a branch's
re-convergence point is the immediate post-dominator of the branch block)
and by tests that validate lowering structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mir.instructions import Opcode
from repro.mir.module import Function


@dataclass
class CFG:
    """Successor/predecessor maps over basic-block labels."""

    entry: int
    succs: dict[int, list[int]] = field(default_factory=dict)
    preds: dict[int, list[int]] = field(default_factory=dict)
    exits: list[int] = field(default_factory=list)

    @property
    def blocks(self) -> list[int]:
        return sorted(self.succs)

    def reachable(self) -> set[int]:
        """Labels reachable from the entry block."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            node = stack.pop()
            for succ in self.succs.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen


def build_cfg(func: Function) -> CFG:
    """Build the CFG of a finalized function."""
    index_to_label = {idx: label for label, idx in func.block_starts.items()}
    cfg = CFG(entry=0)
    for block in func.blocks:
        cfg.succs.setdefault(block.label, [])
        cfg.preds.setdefault(block.label, [])
    for i, block in enumerate(func.blocks):
        term = block.terminator
        succs: list[int] = []
        if term is None:
            # fall-through into the next block (possible for dead blocks)
            if i + 1 < len(func.blocks):
                succs = [func.blocks[i + 1].label]
        elif term.op == Opcode.JMP:
            succs = [index_to_label[term.a]]
        elif term.op == Opcode.BR:
            succs = [index_to_label[term.b], index_to_label[term.c]]
        elif term.op == Opcode.RET:
            cfg.exits.append(block.label)
        cfg.succs[block.label] = succs
        for succ in succs:
            cfg.preds[succ].append(block.label)
    return cfg


def _dominators_of(
    nodes: list[int], entry: int, preds: dict[int, list[int]]
) -> dict[int, set[int]]:
    """Classic iterative data-flow dominator computation."""
    node_set = set(nodes)
    dom: dict[int, set[int]] = {n: set(nodes) for n in nodes}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == entry:
                continue
            pred_doms = [
                dom[p] for p in preds.get(node, ()) if p in node_set
            ]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new.add(node)
            if new != dom[node]:
                dom[node] = new
                changed = True
    return dom


def dominators(cfg: CFG) -> dict[int, set[int]]:
    """dom(b) = blocks dominating b (including b)."""
    nodes = [n for n in cfg.blocks if n in cfg.reachable()]
    return _dominators_of(nodes, cfg.entry, cfg.preds)


def postdominators(cfg: CFG) -> dict[int, set[int]]:
    """pdom(b) = blocks post-dominating b, computed on the reversed CFG.

    Multiple exits are joined through a virtual exit node (label -1).
    """
    reachable = cfg.reachable()
    nodes = [n for n in cfg.blocks if n in reachable]
    virtual_exit = -1
    # Predecessors in the REVERSED graph: preds_rev(x) = succs_original(x),
    # plus the virtual exit for original exit blocks (the reverse graph's
    # entry feeds them).
    rev_preds: dict[int, list[int]] = {virtual_exit: []}
    for node in nodes:
        succs = [s for s in cfg.succs.get(node, ()) if s in reachable]
        rev_preds[node] = list(succs)
        if not succs or node in cfg.exits:
            rev_preds[node].append(virtual_exit)
    pdom = _dominators_of(
        nodes + [virtual_exit],
        virtual_exit,
        rev_preds,
    )
    for node in pdom:
        pdom[node].discard(virtual_exit)
    pdom.pop(virtual_exit, None)
    return pdom


def immediate_postdominator(
    cfg: CFG, block: int, pdom: Optional[dict[int, set[int]]] = None
) -> Optional[int]:
    """The re-convergence point of a branch at ``block`` (§3.2.2)."""
    if pdom is None:
        pdom = postdominators(cfg)
    candidates = pdom.get(block, set()) - {block}
    if not candidates:
        return None
    # The immediate post-dominator is the candidate post-dominated by all
    # other candidates.
    for cand in candidates:
        if all(cand in pdom[other] or other == cand for other in candidates):
            return cand
    return None
