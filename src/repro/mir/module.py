"""MIR container structures: Module, Function, BasicBlock, Region.

A :class:`Module` corresponds to one MiniC translation unit: a global memory
layout, a set of functions, and the static control-region tree that the
profiler's BGN/END records and the CU builder's region walks refer to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mir.instructions import Instr, Opcode
from repro.minic.sema import SymbolTable, VarInfo


@dataclass(slots=True)
class Region:
    """A static control region (function body, loop, or branch).

    Mirrors the paper's control regions: the profiler emits ``BGN``/``END``
    records for them and CUs never cross their boundaries.
    """

    region_id: int
    kind: str  # 'func' | 'loop' | 'branch'
    func: str
    start_line: int
    end_line: int
    parent: Optional[int]
    children: list[int] = field(default_factory=list)
    #: variables declared lexically inside the region (local to it)
    declared_vars: frozenset = frozenset()
    #: variables read / written anywhere inside the region
    read_vars: frozenset = frozenset()
    written_vars: frozenset = frozenset()
    #: used-but-declared-outside — the paper's ``globalVars`` of the region
    global_vars: frozenset = frozenset()
    #: loop-iteration variable (§3.2.5), None for non-loops/while loops
    iter_var: Optional[int] = None
    #: True when the iteration variable is also written in the loop body,
    #: which makes it global to the loop per §3.2.5
    iter_var_written_in_body: bool = False

    def contains_line(self, line: int) -> bool:
        return self.start_line <= line <= self.end_line


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    __slots__ = ("label", "instrs")

    def __init__(self, label: int) -> None:
        self.label = label
        self.instrs: list[Instr] = []

    def append(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr

    @property
    def terminator(self) -> Optional[Instr]:
        if self.instrs and self.instrs[-1].is_terminator():
            return self.instrs[-1]
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<bb{self.label}: {len(self.instrs)} instrs>"


class Function:
    """One MIR function.

    During lowering instructions live in :attr:`blocks`; :meth:`finalize`
    flattens them into :attr:`code` (a linear instruction array) and patches
    branch targets from block labels to code indices — the form the
    interpreter executes.
    """

    def __init__(self, name: str, params: list[VarInfo], return_type: str) -> None:
        self.name = name
        self.params = params
        self.return_type = return_type
        self.blocks: list[BasicBlock] = []
        #: frame layout: var_id -> word offset within the frame
        self.frame_slots: dict[int, int] = {}
        self.frame_size = 0
        self.n_regs = 0
        #: registers that receive array-parameter base addresses, in
        #: parameter order (None for scalar params, which get frame slots)
        self.param_regs: list[Optional[int]] = []
        self.code: list[Instr] = []
        self.block_starts: dict[int, int] = {}
        self.region_id: Optional[int] = None
        self.start_line = 0
        self.end_line = 0

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def finalize(self) -> None:
        """Flatten blocks to linear code and patch jump targets."""
        self.code = []
        self.block_starts = {}
        for block in self.blocks:
            self.block_starts[block.label] = len(self.code)
            self.code.extend(block.instrs)
        for instr in self.code:
            if instr.op == Opcode.JMP:
                instr.a = self.block_starts[instr.a]
            elif instr.op == Opcode.BR:
                instr.b = self.block_starts[instr.b]
                instr.c = self.block_starts[instr.c]

    @property
    def n_instrs(self) -> int:
        return len(self.code) if self.code else sum(
            len(b.instrs) for b in self.blocks
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Function {self.name} blocks={len(self.blocks)}>"


class Module:
    """A compiled MiniC translation unit."""

    def __init__(self, name: str, symtab: SymbolTable, file_id: int = 1) -> None:
        self.name = name
        self.file_id = file_id
        self.symtab = symtab
        self.functions: dict[str, Function] = {}
        #: var_id -> absolute address of the global's first word
        self.global_offsets: dict[int, int] = {}
        #: address -> literal initial value (constant global initializers)
        self.global_init: dict[int, object] = {}
        self.global_size = 0
        self.regions: dict[int, Region] = {}
        #: memory-operation id -> the load/store Instr (static instrumentation
        #: site table; the skipping optimization allocates its per-op state
        #: from this)
        self.mem_ops: dict[int, Instr] = {}
        self.source: str = ""

    # -- regions -------------------------------------------------------------

    def add_region(self, region: Region) -> Region:
        self.regions[region.region_id] = region
        if region.parent is not None:
            self.regions[region.parent].children.append(region.region_id)
        return region

    def loops(self) -> list[Region]:
        return [r for r in self.regions.values() if r.kind == "loop"]

    def region_of_function(self, name: str) -> Region:
        func = self.functions[name]
        assert func.region_id is not None
        return self.regions[func.region_id]

    # -- variables -----------------------------------------------------------

    def var(self, var_id: int) -> VarInfo:
        return self.symtab.variables[var_id]

    def global_layout(self) -> list[tuple[VarInfo, int]]:
        return [
            (self.symtab.variables[vid], off)
            for vid, off in sorted(self.global_offsets.items(), key=lambda p: p[1])
        ]

    @property
    def n_instrs(self) -> int:
        return sum(f.n_instrs for f in self.functions.values())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.regions)} regions, {self.n_instrs} instrs>"
        )
