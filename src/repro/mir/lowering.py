"""AST → MIR lowering.

Reproduces the clang ``-O0`` shape the paper instruments: every source
variable gets a memory home (global segment or stack frame), every use is an
explicit ``load``/``store`` carrying source line + variable name + static
memory-operation id, and control regions (function bodies, loops, branches)
get entry/exit/iteration markers.

The lowering also performs the *static* half of the paper's Phase 1: for each
control region it records which variables are declared inside (local) and
which are referenced but declared outside (global to the region) — the
``globalVars`` sets consumed by the top-down CU construction (Algorithm 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.minic import astnodes as ast
from repro.minic.parser import parse
from repro.minic.sema import SymbolTable, analyze
from repro.mir.instructions import BINOPS, Instr, Opcode
from repro.mir.module import BasicBlock, Function, Module, Region

Operand = tuple  # ('i', value) | ('r', idx)


@dataclass
class _LoopContext:
    """Targets for break/continue inside the innermost loop."""

    latch_label: int
    exit_label: int


@dataclass
class _RegionVars:
    """Accumulated variable usage while lowering one region."""

    declared: set[int] = field(default_factory=set)
    read: set[int] = field(default_factory=set)
    written: set[int] = field(default_factory=set)


class Lowerer:
    """Lowers one analysed Program to a Module."""

    def __init__(self, program: ast.Program, symtab: SymbolTable, name: str) -> None:
        self.program = program
        self.symtab = symtab
        self.module = Module(name, symtab)
        self._next_region_id = 1
        self._next_op_id = 0
        # per-function state
        self.func: Optional[Function] = None
        self.block: Optional[BasicBlock] = None
        self._loop_stack: list[_LoopContext] = []
        self._region_var_stack: list[_RegionVars] = []
        self._region_stack: list[int] = []

    # ------------------------------------------------------------------
    # public entry
    # ------------------------------------------------------------------

    def lower(self) -> Module:
        self._layout_globals()
        for func_ast in self.program.functions:
            self._lower_function(func_ast)
        return self.module

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    def _layout_globals(self) -> None:
        offset = 0
        decls = {d.var_id: d for d in self.program.globals}
        for info in self.symtab.global_vars:
            self.module.global_offsets[info.var_id] = offset
            decl = decls.get(info.var_id)
            if decl is not None and decl.init is not None:
                self.module.global_init[offset] = decl.init.value
            offset += info.size
        self.module.global_size = offset

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------

    def _new_reg(self) -> int:
        assert self.func is not None
        reg = self.func.n_regs
        self.func.n_regs += 1
        return reg

    def _new_op_id(self, instr: Instr) -> int:
        op_id = self._next_op_id
        self._next_op_id += 1
        instr.op_id = op_id
        self.module.mem_ops[op_id] = instr
        return op_id

    def _emit(self, instr: Instr) -> Instr:
        assert self.block is not None
        self.block.append(instr)
        return instr

    def _start_block(self) -> BasicBlock:
        assert self.func is not None
        self.block = self.func.new_block()
        return self.block

    def _jump_to_new_block(self) -> BasicBlock:
        """Terminate the current block with a jump into a fresh block."""
        assert self.block is not None
        new = self.func.new_block()
        if self.block.terminator is None:
            self._emit(Instr(Opcode.JMP, a=new.label))
        self.block = new
        return new

    def _record_read(self, var_id: int) -> None:
        for rv in self._region_var_stack:
            rv.read.add(var_id)

    def _record_write(self, var_id: int) -> None:
        for rv in self._region_var_stack:
            rv.written.add(var_id)

    def _record_decl(self, var_id: int) -> None:
        if self._region_var_stack:
            self._region_var_stack[-1].declared.add(var_id)

    # ------------------------------------------------------------------
    # regions
    # ------------------------------------------------------------------

    def _open_region(
        self, kind: str, start_line: int, end_line: int
    ) -> tuple[Region, _RegionVars]:
        region = Region(
            region_id=self._next_region_id,
            kind=kind,
            func=self.func.name if self.func else "<module>",
            start_line=start_line,
            end_line=end_line,
            parent=self._region_stack[-1] if self._region_stack else None,
        )
        self._next_region_id += 1
        self.module.add_region(region)
        rv = _RegionVars()
        self._region_stack.append(region.region_id)
        self._region_var_stack.append(rv)
        return region, rv

    def _close_region(self, region: Region, rv: _RegionVars) -> None:
        self._region_stack.pop()
        self._region_var_stack.pop()
        region.declared_vars = frozenset(rv.declared)
        region.read_vars = frozenset(rv.read)
        region.written_vars = frozenset(rv.written)
        # variables used in the region but declared outside it
        used = rv.read | rv.written
        region.global_vars = frozenset(used - rv.declared)
        # propagate declarations of nested scopes upward so an enclosing
        # region sees nested declarations as its own locals
        if self._region_var_stack:
            self._region_var_stack[-1].declared.update(rv.declared)

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------

    def _lower_function(self, func_ast: ast.FuncDef) -> None:
        finfo = self.symtab.functions[func_ast.name]
        func = Function(func_ast.name, finfo.params, func_ast.return_type)
        func.start_line = func_ast.line
        func.end_line = func_ast.end_line
        self.module.functions[func_ast.name] = func
        self.func = func
        self._loop_stack = []

        region, rv = self._open_region("func", func_ast.line, func_ast.end_line)
        func.region_id = region.region_id

        # Frame layout: scalar params and all locals get slots; array params
        # get an incoming base-address register.
        func.n_regs = len(func_ast.params)  # regs 0..n-1 hold incoming args
        offset = 0
        for i, (param, pinfo) in enumerate(zip(func_ast.params, finfo.params)):
            if pinfo.is_array:
                func.param_regs.append(i)
            else:
                func.param_regs.append(None)
                func.frame_slots[pinfo.var_id] = offset
                offset += 1
        for linfo in finfo.local_vars:
            func.frame_slots[linfo.var_id] = offset
            offset += linfo.size
        func.frame_size = offset

        self._start_block()
        # Prologue: spill scalar arguments into their frame slots.  These are
        # instrumented writes — the paper's CU rules put parameters in the
        # read set; the profiler sees the argument stores as INIT writes.
        for i, pinfo in enumerate(finfo.params):
            if not pinfo.is_array:
                slot = func.frame_slots[pinfo.var_id]
                store = Instr(
                    Opcode.STORE,
                    a=("f", slot),
                    b=("r", i),
                    line=pinfo.decl_line,
                    var=pinfo.name,
                    var_id=pinfo.var_id,
                )
                self._new_op_id(store)
                self._emit(store)
                self._record_write(pinfo.var_id)
                self._record_decl(pinfo.var_id)
            else:
                self._record_decl(pinfo.var_id)

        for stmt in func_ast.body.body:
            self._lower_stmt(stmt)

        # Implicit return for void functions / fall-through.
        if self.block.terminator is None:
            self._emit(Instr(Opcode.RET, a=None, line=func_ast.end_line))

        self._close_region(region, rv)
        func.finalize()
        self.func = None
        self.block = None

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            self._lower_vardecl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._lower_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            operand = (
                self._lower_expr(stmt.value) if stmt.value is not None else None
            )
            self._emit(Instr(Opcode.RET, a=operand, line=stmt.line))
            self._start_block()  # dead block for any trailing code
        elif isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise SyntaxError(f"line {stmt.line}: break outside loop")
            self._emit(Instr(Opcode.JMP, a=self._loop_stack[-1].exit_label))
            self._start_block()
        elif isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise SyntaxError(f"line {stmt.line}: continue outside loop")
            self._emit(Instr(Opcode.JMP, a=self._loop_stack[-1].latch_label))
            self._start_block()
        elif isinstance(stmt, ast.Block):
            for inner in stmt.body:
                self._lower_stmt(inner)
        elif isinstance(stmt, ast.Lock):
            operand = self._lower_expr(stmt.lock_id)
            self._emit(Instr(Opcode.LOCK, a=operand, line=stmt.line))
        elif isinstance(stmt, ast.Unlock):
            operand = self._lower_expr(stmt.lock_id)
            self._emit(Instr(Opcode.UNLOCK, a=operand, line=stmt.line))
        elif isinstance(stmt, ast.Join):
            operand = self._lower_expr(stmt.tid)
            self._emit(Instr(Opcode.JOIN, a=operand, line=stmt.line))
        else:  # pragma: no cover - exhaustive
            raise NotImplementedError(type(stmt).__name__)

    def _lower_vardecl(self, decl: ast.VarDecl) -> None:
        assert decl.var_id is not None
        self._record_decl(decl.var_id)
        if decl.init is not None:
            operand = self._lower_expr(decl.init)
            self._store_scalar(decl.var_id, decl.name, decl.line, operand)

    def _lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Var):
            assert target.var_id is not None
            if stmt.op == "=":
                value = self._lower_expr(stmt.value)
            else:
                current = self._load_scalar(target.var_id, target.name, stmt.line)
                rhs = self._lower_expr(stmt.value)
                value = self._binop(stmt.op[:-1], current, rhs, stmt.line)
            self._store_scalar(target.var_id, target.name, stmt.line, value)
        else:  # Index target
            base_info = self.symtab.variables[target.base.var_id]
            idx = self._lower_expr(target.index)
            memref = self._element_memref(target.base, idx, stmt.line)
            if stmt.op == "=":
                value = self._lower_expr(stmt.value)
            else:
                dest = self._new_reg()
                load = Instr(
                    Opcode.LOAD,
                    dest=dest,
                    a=memref,
                    line=stmt.line,
                    var=base_info.name,
                    var_id=base_info.var_id,
                )
                self._new_op_id(load)
                self._emit(load)
                self._record_read(base_info.var_id)
                rhs = self._lower_expr(stmt.value)
                value = self._binop(stmt.op[:-1], ("r", dest), rhs, stmt.line)
            store = Instr(
                Opcode.STORE,
                a=memref,
                b=value,
                line=stmt.line,
                var=base_info.name,
                var_id=base_info.var_id,
            )
            self._new_op_id(store)
            self._emit(store)
            self._record_write(base_info.var_id)

    def _lower_if(self, stmt: ast.If) -> None:
        region, rv = self._open_region("branch", stmt.line, stmt.end_line)
        self._emit(Instr(Opcode.ENTER, a=region.region_id, line=stmt.line))
        cond = self._lower_expr(stmt.cond)
        then_block = self.func.new_block()
        merge_block = self.func.new_block()
        if stmt.else_body is not None:
            else_block = self.func.new_block()
            self._emit(
                Instr(Opcode.BR, a=cond, b=then_block.label, c=else_block.label)
            )
        else:
            self._emit(
                Instr(Opcode.BR, a=cond, b=then_block.label, c=merge_block.label)
            )
        self.block = then_block
        for inner in stmt.then_body.body:
            self._lower_stmt(inner)
        if self.block.terminator is None:
            self._emit(Instr(Opcode.JMP, a=merge_block.label))
        if stmt.else_body is not None:
            self.block = else_block
            for inner in stmt.else_body.body:
                self._lower_stmt(inner)
            if self.block.terminator is None:
                self._emit(Instr(Opcode.JMP, a=merge_block.label))
        self.block = merge_block
        self._emit(Instr(Opcode.EXIT, a=region.region_id, line=stmt.end_line))
        self._close_region(region, rv)

    def _lower_while(self, stmt: ast.While) -> None:
        region, rv = self._open_region("loop", stmt.line, stmt.end_line)
        region.iter_var = None
        self._emit(Instr(Opcode.ENTER, a=region.region_id, line=stmt.line))
        header = self._jump_to_new_block()
        body_block = self.func.new_block()
        latch_block = self.func.new_block()
        exit_block = self.func.new_block()
        cond = self._lower_expr(stmt.cond)
        self._emit(Instr(Opcode.BR, a=cond, b=body_block.label, c=exit_block.label))
        self._loop_stack.append(_LoopContext(latch_block.label, exit_block.label))
        self.block = body_block
        for inner in stmt.body.body:
            self._lower_stmt(inner)
        if self.block.terminator is None:
            self._emit(Instr(Opcode.JMP, a=latch_block.label))
        self.block = latch_block
        self._emit(Instr(Opcode.ITER, a=region.region_id, line=stmt.line))
        self._emit(Instr(Opcode.JMP, a=header.label))
        self._loop_stack.pop()
        self.block = exit_block
        self._emit(Instr(Opcode.EXIT, a=region.region_id, line=stmt.end_line))
        self._close_region(region, rv)

    def _lower_for(self, stmt: ast.For) -> None:
        region, rv = self._open_region("loop", stmt.line, stmt.end_line)
        # Identify the loop-iteration variable (§3.2.5): the variable the
        # step clause writes, defaulting to the init-clause target.
        iter_var: Optional[int] = None
        for clause in (stmt.step, stmt.init):
            if isinstance(clause, ast.Assign) and isinstance(clause.target, ast.Var):
                iter_var = clause.target.var_id
                break
            if isinstance(clause, ast.VarDecl):
                iter_var = clause.var_id
                break
        region.iter_var = iter_var
        region.iter_var_written_in_body = (
            iter_var is not None and _writes_var(stmt.body, iter_var)
        )

        self._emit(Instr(Opcode.ENTER, a=region.region_id, line=stmt.line))
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        header = self._jump_to_new_block()
        body_block = self.func.new_block()
        latch_block = self.func.new_block()
        exit_block = self.func.new_block()
        if stmt.cond is not None:
            cond = self._lower_expr(stmt.cond)
            self._emit(
                Instr(Opcode.BR, a=cond, b=body_block.label, c=exit_block.label)
            )
        else:
            self._emit(Instr(Opcode.JMP, a=body_block.label))
        self._loop_stack.append(_LoopContext(latch_block.label, exit_block.label))
        self.block = body_block
        for inner in stmt.body.body:
            self._lower_stmt(inner)
        if self.block.terminator is None:
            self._emit(Instr(Opcode.JMP, a=latch_block.label))
        self.block = latch_block
        if stmt.step is not None:
            self._lower_stmt(stmt.step)
        self._emit(Instr(Opcode.ITER, a=region.region_id, line=stmt.line))
        self._emit(Instr(Opcode.JMP, a=header.label))
        self._loop_stack.pop()
        self.block = exit_block
        self._emit(Instr(Opcode.EXIT, a=region.region_id, line=stmt.end_line))
        self._close_region(region, rv)

    # ------------------------------------------------------------------
    # variable access
    # ------------------------------------------------------------------

    def _scalar_memref(self, var_id: int):
        info = self.symtab.variables[var_id]
        if info.kind == "global":
            return ("g", self.module.global_offsets[var_id])
        return ("f", self.func.frame_slots[var_id])

    def _load_scalar(self, var_id: int, name: str, line: int) -> Operand:
        dest = self._new_reg()
        load = Instr(
            Opcode.LOAD,
            dest=dest,
            a=self._scalar_memref(var_id),
            line=line,
            var=name,
            var_id=var_id,
        )
        self._new_op_id(load)
        self._emit(load)
        self._record_read(var_id)
        return ("r", dest)

    def _store_scalar(self, var_id: int, name: str, line: int, value: Operand) -> None:
        store = Instr(
            Opcode.STORE,
            a=self._scalar_memref(var_id),
            b=value,
            line=line,
            var=name,
            var_id=var_id,
        )
        self._new_op_id(store)
        self._emit(store)
        self._record_write(var_id)

    def _array_base_operand(self, var: ast.Var, line: int) -> Operand:
        """Operand holding the absolute base address of an array variable."""
        info = self.symtab.variables[var.var_id]
        if info.kind == "param" and info.is_array:
            param_index = [p.var_id for p in self.func.params].index(info.var_id)
            reg = self.func.param_regs[param_index]
            return ("r", reg)
        if info.kind == "global" and info.is_array:
            return ("i", self.module.global_offsets[info.var_id])
        if info.is_array:  # local array: frame-relative
            dest = self._new_reg()
            self._emit(
                Instr(
                    Opcode.ADDR,
                    dest=dest,
                    a="f",
                    b=self.func.frame_slots[info.var_id],
                    c=("i", 0),
                    line=line,
                )
            )
            return ("r", dest)
        # scalar int used as a pointer (result of alloc())
        return self._load_scalar(info.var_id, info.name, line)

    def _element_memref(self, base: ast.Var, idx: Operand, line: int):
        """Memref for ``base[idx]``; folds constant global indexing."""
        info = self.symtab.variables[base.var_id]
        if (
            info.kind == "global"
            and info.is_array
            and idx[0] == "i"
        ):
            return ("g", self.module.global_offsets[info.var_id] + idx[1])
        base_op = self._array_base_operand(base, line)
        dest = self._new_reg()
        if base_op[0] == "i":
            self._emit(
                Instr(Opcode.ADDR, dest=dest, a="g", b=base_op[1], c=idx, line=line)
            )
        else:
            self._emit(
                Instr(Opcode.ADDR, dest=dest, a="r", b=base_op[1], c=idx, line=line)
            )
        return ("a", dest)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _binop(self, op: str, left: Operand, right: Operand, line: int) -> Operand:
        if left[0] == "i" and right[0] == "i":
            return ("i", BINOPS[op](left[1], right[1]))
        dest = self._new_reg()
        self._emit(Instr(Opcode.BIN, dest=dest, a=op, b=left, c=right, line=line))
        return ("r", dest)

    def _lower_expr(self, expr: ast.Expr, want_value: bool = True) -> Operand:
        if isinstance(expr, ast.Num):
            return ("i", expr.value)
        if isinstance(expr, ast.Var):
            info = self.symtab.variables[expr.var_id]
            if info.is_array or (info.kind == "param" and info.is_array):
                return self._array_base_operand(expr, expr.line)
            return self._load_scalar(expr.var_id, expr.name, expr.line)
        if isinstance(expr, ast.Index):
            info = self.symtab.variables[expr.base.var_id]
            idx = self._lower_expr(expr.index)
            memref = self._element_memref(expr.base, idx, expr.line)
            dest = self._new_reg()
            load = Instr(
                Opcode.LOAD,
                dest=dest,
                a=memref,
                line=expr.line,
                var=info.name,
                var_id=info.var_id,
            )
            self._new_op_id(load)
            self._emit(load)
            self._record_read(info.var_id)
            return ("r", dest)
        if isinstance(expr, ast.BinOp):
            if expr.op in ("&&", "||"):
                return self._lower_shortcircuit(expr)
            left = self._lower_expr(expr.left)
            right = self._lower_expr(expr.right)
            return self._binop(expr.op, left, right, expr.line)
        if isinstance(expr, ast.UnOp):
            operand = self._lower_expr(expr.operand)
            if operand[0] == "i":
                from repro.mir.instructions import UNOPS

                return ("i", UNOPS[expr.op](operand[1]))
            dest = self._new_reg()
            self._emit(
                Instr(Opcode.UN, dest=dest, a=expr.op, b=operand, line=expr.line)
            )
            return ("r", dest)
        if isinstance(expr, ast.Call):
            args = [self._lower_call_arg(arg) for arg in expr.args]
            dest = self._new_reg() if want_value else None
            op = Opcode.CALLB if expr.is_builtin else Opcode.CALL
            self._emit(Instr(op, dest=dest, a=expr.name, b=args, line=expr.line))
            return ("r", dest) if dest is not None else ("i", 0)
        if isinstance(expr, ast.SpawnExpr):
            args = [self._lower_call_arg(arg) for arg in expr.args]
            dest = self._new_reg() if want_value else None
            self._emit(
                Instr(Opcode.SPAWN, dest=dest, a=expr.name, b=args, line=expr.line)
            )
            return ("r", dest) if dest is not None else ("i", 0)
        raise NotImplementedError(type(expr).__name__)  # pragma: no cover

    def _lower_call_arg(self, arg: ast.Expr) -> Operand:
        """Arrays are passed by base address; everything else by value."""
        if isinstance(arg, ast.Var):
            info = self.symtab.variables[arg.var_id]
            if info.is_array:
                return self._array_base_operand(arg, arg.line)
        return self._lower_expr(arg)

    def _lower_shortcircuit(self, expr: ast.BinOp) -> Operand:
        result = self._new_reg()
        left = self._lower_expr(expr.left)
        rhs_block = self.func.new_block()
        short_block = self.func.new_block()
        merge_block = self.func.new_block()
        if expr.op == "&&":
            self._emit(
                Instr(Opcode.BR, a=left, b=rhs_block.label, c=short_block.label)
            )
            short_value = 0
        else:
            self._emit(
                Instr(Opcode.BR, a=left, b=short_block.label, c=rhs_block.label)
            )
            short_value = 1
        self.block = rhs_block
        right = self._lower_expr(expr.right)
        normalized = self._binop("!=", right, ("i", 0), expr.line)
        self._emit(
            Instr(Opcode.BIN, dest=result, a="|", b=normalized, c=("i", 0),
                  line=expr.line)
        )
        self._emit(Instr(Opcode.JMP, a=merge_block.label))
        self.block = short_block
        self._emit(Instr(Opcode.CONST, dest=result, a=short_value, line=expr.line))
        self._emit(Instr(Opcode.JMP, a=merge_block.label))
        self.block = merge_block
        return ("r", result)


def _writes_var(node: Union[ast.Stmt, ast.Block], var_id: int) -> bool:
    """Does any assignment within ``node`` target ``var_id``?"""
    if isinstance(node, ast.Assign):
        target = node.target
        if isinstance(target, ast.Var) and target.var_id == var_id:
            return True
        return False
    if isinstance(node, ast.Block):
        return any(_writes_var(s, var_id) for s in node.body)
    if isinstance(node, ast.If):
        if _writes_var(node.then_body, var_id):
            return True
        return node.else_body is not None and _writes_var(node.else_body, var_id)
    if isinstance(node, ast.While):
        return _writes_var(node.body, var_id)
    if isinstance(node, ast.For):
        return _writes_var(node.body, var_id)
    return False


def lower(program: ast.Program, symtab: SymbolTable, name: str = "module") -> Module:
    """Lower an analysed AST to a finalized Module."""
    return Lowerer(program, symtab, name).lower()


def compile_source(source: str, name: str = "module") -> Module:
    """Parse + analyse + lower MiniC source text in one call."""
    program = parse(source)
    symtab = analyze(program)
    module = lower(program, symtab, name)
    module.source = source
    return module
