"""MIR instruction set.

A single :class:`Instr` class with generic fields keeps the interpreter's
dispatch loop simple and fast (attribute access on slotted objects, no
per-opcode classes).  Operands are small tuples:

* ``('i', value)`` — immediate constant
* ``('r', idx)``   — virtual register ``idx`` of the current frame

Memory references (``load``/``store``) are tuples too:

* ``('g', offset)`` — absolute address ``offset`` (globals segment)
* ``('f', offset)`` — ``frame_base + offset`` (locals)
* ``('a', reg)``    — absolute address held in register ``reg`` (computed
  array-element addresses, heap pointers, array parameters)

Every ``load``/``store`` carries the source line, the variable name, the
variable id, and a globally unique static *memory-operation id* (``op_id``) —
the identity on which the paper's loop-skipping optimization (§2.4) keys its
``lastAddr`` / ``lastStatusRead`` / ``lastStatusWrite`` state.
"""

from __future__ import annotations

from typing import Any, Optional


class Opcode:
    """Opcode name constants (plain strings for cheap dispatch)."""

    CONST = "const"
    BIN = "bin"
    UN = "un"
    LOAD = "load"
    STORE = "store"
    ADDR = "addr"
    BR = "br"
    JMP = "jmp"
    CALL = "call"
    CALLB = "callb"
    RET = "ret"
    ENTER = "enter"  # region entry marker
    EXIT = "exit"  # region exit marker
    ITER = "iter"  # loop latch marker (one executed iteration)
    SPAWN = "spawn"
    JOIN = "join"
    LOCK = "lock"
    UNLOCK = "unlock"
    # parallel fork markers inserted by the parallelize transforms; only the
    # parallelize scheduler (repro.parallelize.scheduler) executes them
    PFORK = "pfork"  # DOALL chunk fork: a=plan-index, b=resume code index
    PTASK = "ptask"  # task-graph fork:  a=plan-index, b=resume code index

    ALL = (
        CONST,
        BIN,
        UN,
        LOAD,
        STORE,
        ADDR,
        BR,
        JMP,
        CALL,
        CALLB,
        RET,
        ENTER,
        EXIT,
        ITER,
        SPAWN,
        JOIN,
        LOCK,
        UNLOCK,
        PFORK,
        PTASK,
    )


class Instr:
    """One MIR instruction.

    Field usage by opcode::

        const  dest=reg           a=value
        bin    dest=reg           a=op-string  b=lhs-operand  c=rhs-operand
        un     dest=reg           a=op-string  b=operand
        load   dest=reg           a=memref                  [line,var,var_id,op_id]
        store                     a=memref     b=src-operand [line,var,var_id,op_id]
        addr   dest=reg           a=space      b=base        c=index-operand
               (space 'g': abs base; 'f': frame-relative; 'r': base in reg b)
        br                        a=cond-operand b=true-target c=false-target
        jmp                       a=target
        call   dest=reg|None      a=func-name  b=[operands]
        callb  dest=reg|None      a=builtin    b=[operands]
        ret                       a=operand|None
        enter/exit/iter           a=region-id
        spawn  dest=reg|None      a=func-name  b=[operands]
        join                      a=operand
        lock/unlock               a=operand
        pfork/ptask               a=plan-index b=resume-code-index

    Branch/jump targets are block labels during construction and are patched
    to linear code indices by :meth:`repro.mir.module.Function.finalize`.
    """

    __slots__ = ("op", "dest", "a", "b", "c", "line", "var", "var_id", "op_id")

    def __init__(
        self,
        op: str,
        dest: Optional[int] = None,
        a: Any = None,
        b: Any = None,
        c: Any = None,
        line: int = 0,
        var: Optional[str] = None,
        var_id: Optional[int] = None,
        op_id: Optional[int] = None,
    ) -> None:
        self.op = op
        self.dest = dest
        self.a = a
        self.b = b
        self.c = c
        self.line = line
        self.var = var
        self.var_id = var_id
        self.op_id = op_id

    def is_memory(self) -> bool:
        """True for instrumented memory operations (load/store)."""
        return self.op == Opcode.LOAD or self.op == Opcode.STORE

    def is_terminator(self) -> bool:
        return self.op in (Opcode.BR, Opcode.JMP, Opcode.RET)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op]
        if self.dest is not None:
            parts.append(f"r{self.dest} <-")
        for field in (self.a, self.b, self.c):
            if field is not None:
                parts.append(repr(field))
        if self.var:
            parts.append(f"[{self.var}@{self.line}]")
        return "<" + " ".join(str(p) for p in parts) + ">"


# Arithmetic implementations shared by the interpreter and constant folding.
# MiniC ints are Python ints; division of two ints truncates like C.
def _div(a, b):
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return -q if (a < 0) != (b < 0) else q
    return a / b


def _mod(a, b):
    if isinstance(a, int) and isinstance(b, int):
        r = abs(a) % abs(b)
        return -r if a < 0 else r
    import math

    return math.fmod(a, b)


BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _div,
    "%": _mod,
    # Python-semantics variants emitted by the Python frontend (repro.frontend):
    # floor division, true division, floored modulo, and exponentiation match
    # CPython exactly so lowered functions compute bit-identical results.
    "//": lambda a, b: a // b,
    "/f": lambda a, b: a / b,
    "%%": lambda a, b: a % b,
    "**": lambda a, b: a**b,
    "<": lambda a, b: 1 if a < b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "==": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
    "<<": lambda a, b: int(a) << int(b),
    ">>": lambda a, b: int(a) >> int(b),
}

UNOPS = {
    "-": lambda a: -a,
    "!": lambda a: 1 if not a else 0,
    "~": lambda a: ~int(a),
}
