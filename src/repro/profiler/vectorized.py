"""Vectorized dependence detection: segmented address-group scans.

The loop detector (:class:`~repro.profiler.serial.SerialProfiler`) walks
every memory event in Python against dict-backed shadow state.  This
module replaces that per-event interpreter with a **batched detection
core** that processes packed event rows with numpy segment scans:

1. incoming :class:`~repro.runtime.events.EventChunk` batches are
   buffered (chunk boundaries carry no detection semantics — unlike VM
   quanta — so fusing chunks into one batch is exact) and each batch's
   memory rows are stable-sorted by ``(addr, position)``: within one
   address the rows keep execution order, so each sorted run is one
   address's timeline;
2. FREE events (variable-lifetime eviction, §2.3.5) are counted per
   address with a merged searchsorted pass; rows of the same address
   with equal *free counts* form one **live epoch** — no eviction
   intervenes — and epoch boundaries cut the dependence chains exactly
   where ``shadow.evict`` would;
3. the last-write predecessor of every row is a segmented cumulative
   maximum over write positions; RAW and WAW sink→source pairs fall out
   directly, and the reads-since-last-write sets (the WAR sources, one
   entry per distinct source line, bounded by
   :data:`~repro.profiler.shadow.MAX_READS_PER_SLOT`) come from grouping
   read rows by ``(write-interval, line)`` with first-occurrence ranking
   replicating the insertion cap;
4. loop carriers are classified by comparing pre-decoded per-signature
   packed ``(region, iteration)`` matrices column-wise — the sentinel
   padding makes depth mismatches self-terminating — with a per-pair
   Python fallback for the rare nests deeper than
   :data:`SIG_DEPTH_CAP`;
5. occurrences are deduplicated with one packed-int64 sort over the
   identity columns and merged into the :class:`DependenceStore` in
   bulk — one dict update per *merged* dependence instead of one per
   event.

Cross-batch correctness comes from a compact :class:`ShadowFrontier`
carried between batches: flat sorted arrays holding, per live address,
the last write and the bounded read set.  Virtual rows synthesized from
the frontier are prepended to each address's timeline, so the in-batch
scans see exactly the state the loop detector's persistent shadow
would.

With ``signature_slots`` the same scans run keyed on ``addr % slots`` —
the paper's Formula-2.1 modulo hash vectorized over the address column —
including the collision counter and the approximate eviction semantics
of :class:`~repro.profiler.shadow.SignatureShadow`.

The resulting store is **bit-identical** to the loop detector's on every
workload (the three-way equivalence matrix in ``tests/test_detect.py``
is the tripwire); ``repro bench --suite detect`` tracks the throughput
ratio.
"""

from __future__ import annotations

from itertools import repeat
from typing import Callable, Iterable, Optional

import numpy as np

from repro.profiler.deps import Dependence, DependenceStore, DepType
from repro.profiler.serial import ControlRecord, ProfileStats, classify_carrier
from repro.profiler.shadow import MAX_READS_PER_SLOT
from repro.runtime.events import (
    COL_ADDR,
    COL_AUX,
    COL_KIND,
    COL_LINE,
    COL_NAME,
    COL_SIG,
    COL_TID,
    COL_TS,
    EventChunk,
    K_BGN,
    K_END,
    K_FREE,
    K_READ,
    K_WRITE,
    StringTable,
)

#: loop-context depth covered by the vectorized signature matrices;
#: deeper nests (rare) classify through the per-pair Python fallback
SIG_DEPTH_CAP = 8

#: bits reserved for the iteration number inside one packed signature
#: cell; regions/iterations beyond the packable range fall back too
_SIG_ITER_BITS = 40

#: events buffered before one segmented-scan pass (detection semantics
#: are chunk-boundary free, so batches amortize the fixed numpy costs)
DEFAULT_BATCH_EVENTS = 1 << 16

#: occurrence type codes, index-aligned with DepType strings
_TYPE_NAMES = (DepType.RAW, DepType.WAR, DepType.WAW)

_EMPTY = np.empty(0, dtype=np.int64)


def _multiarange(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s + c)`` blocks, fully vectorized."""
    total = int(counts.sum())
    if total == 0:
        return _EMPTY
    reps = np.repeat(np.arange(counts.shape[0]), counts)
    offsets = np.cumsum(counts) - counts
    return starts[reps] + np.arange(total) - offsets[reps]


def _bits(arr: np.ndarray, lo: int = 0) -> int:
    """Bit width needed for ``arr``'s maximum (at least ``lo``)."""
    if arr.shape[0] == 0:
        return max(lo, 1)
    return max(int(arr.max()).bit_length(), lo, 1)


def track_control_rows(control, cols, kinds, names) -> None:
    """Fold a batch's BGN/END rows into ``control`` records.

    Module-level so producer-side aggregators (the sharded detection
    parent, which never ships control rows to the workers) can reuse the
    exact segmented reduction the vectorized detector applies; ``cols``
    is any column-major int64 view (``rows.T`` works).
    """
    cmask = (kinds == K_BGN) | (kinds == K_END)
    if not cmask.any():
        return
    c_idx = np.nonzero(cmask)[0]
    creg = cols[COL_ADDR, c_idx]
    # stable region sort: the first row of each segment is the
    # region's earliest occurrence (record-creation semantics)
    order = c_idx[np.argsort(creg, kind="stable")]
    sreg = cols[COL_ADDR, order]
    starts = np.nonzero(
        np.concatenate((np.ones(1, dtype=bool), sreg[1:] != sreg[:-1]))
    )[0]
    skind = kinds[order]
    sline = cols[COL_LINE, order]
    is_bgn = (skind == K_BGN).astype(np.int64)
    is_end = skind == K_END
    end_line = np.where(is_end, sline, -1)
    end_iters = np.where(is_end, cols[COL_AUX, order], 0)
    bgn_counts = np.add.reduceat(is_bgn, starts)
    max_end_line = np.maximum.reduceat(end_line, starts)
    iter_sums = np.add.reduceat(end_iters, starts)
    first = order[starts]
    first_nid = cols[COL_NAME, first]
    first_line = sline[starts]
    for region, nid, fline, execs, eline, iters in zip(
        sreg[starts].tolist(),
        first_nid.tolist(),
        first_line.tolist(),
        bgn_counts.tolist(),
        max_end_line.tolist(),
        iter_sums.tolist(),
    ):
        rec = control.get(region)
        if rec is None:
            rec = control[region] = ControlRecord(
                region, names[nid], fline, fline
            )
        rec.executions += execs
        if eline >= 0:
            rec.end_line = max(rec.end_line, eline)
        rec.total_iterations += iters


class ShadowFrontier:
    """Array-backed cross-batch shadow state.

    One row per live key (address, or slot in signature mode), sorted by
    key: the last write's ``(line, sig, tid, ts, addr)`` — ``line == -1``
    marks a key with pending reads but no write — plus a ragged read set
    (``r_off`` offsets into flat per-field arrays), at most
    :data:`MAX_READS_PER_SLOT` entries per key, mirroring the loop
    shadow's per-line latest-read dict.
    """

    __slots__ = (
        "keys", "w_line", "w_sig", "w_tid", "w_ts", "w_addr",
        "r_off", "r_line", "r_sig", "r_tid", "r_ts",
    )

    def __init__(self) -> None:
        self.keys = _EMPTY
        self.w_line = _EMPTY
        self.w_sig = _EMPTY
        self.w_tid = _EMPTY
        self.w_ts = _EMPTY
        self.w_addr = _EMPTY
        self.r_off = np.zeros(1, dtype=np.int64)
        self.r_line = _EMPTY
        self.r_sig = _EMPTY
        self.r_tid = _EMPTY
        self.r_ts = _EMPTY

    def __len__(self) -> int:
        return self.keys.shape[0]

    def read_counts(self) -> np.ndarray:
        return np.diff(self.r_off)

    def filter(self, keep: np.ndarray) -> None:
        """Drop the entries where ``keep`` is False (bulk eviction)."""
        if keep.all():
            return
        counts = self.read_counts()
        flat = _multiarange(self.r_off[:-1][keep], counts[keep])
        self.keys = self.keys[keep]
        self.w_line = self.w_line[keep]
        self.w_sig = self.w_sig[keep]
        self.w_tid = self.w_tid[keep]
        self.w_ts = self.w_ts[keep]
        self.w_addr = self.w_addr[keep]
        self.r_line = self.r_line[flat]
        self.r_sig = self.r_sig[flat]
        self.r_tid = self.r_tid[flat]
        self.r_ts = self.r_ts[flat]
        self.r_off = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts[keep]))
        )

    def lookup(self, key: int) -> int:
        """Index of ``key`` or -1."""
        i = int(np.searchsorted(self.keys, key))
        if i < self.keys.shape[0] and int(self.keys[i]) == key:
            return i
        return -1

    def memory_bytes(self) -> int:
        scalar = (
            self.keys.nbytes + self.w_line.nbytes + self.w_sig.nbytes
            + self.w_tid.nbytes + self.w_ts.nbytes + self.w_addr.nbytes
        )
        ragged = (
            self.r_off.nbytes + self.r_line.nbytes + self.r_sig.nbytes
            + self.r_tid.nbytes + self.r_ts.nbytes
        )
        return scalar + ragged


class VectorizedProfiler:
    """Batched dependence detection over packed event chunks.

    Drop-in peer of :class:`~repro.profiler.serial.SerialProfiler`
    (same constructor shape, ``stats``/``store``/``control``/
    ``sig_decoder`` surface, chunk-sink call convention) producing a
    bit-identical :class:`DependenceStore`.  ``signature_slots=None``
    keys the frontier on exact addresses (the PerfectShadow semantics);
    an integer keys it on ``addr % slots`` with the SignatureShadow's
    collision counting and approximate eviction.

    Chunks are buffered until ``batch_events`` rows are staged (pass 0
    to detect each chunk immediately); call :meth:`flush` — or
    :meth:`result`, which flushes — before reading ``store``/``stats``/
    ``control`` or the scalar shadow queries.
    """

    def __init__(
        self,
        signature_slots: Optional[int] = None,
        sig_decoder: Optional[Callable[[int], tuple]] = None,
        *,
        store: Optional[DependenceStore] = None,
        lifetime_analysis: bool = True,
        track_control: bool = True,
        batch_events: int = DEFAULT_BATCH_EVENTS,
    ) -> None:
        if signature_slots is not None and signature_slots <= 0:
            raise ValueError("signature must have a positive number of slots")
        self.signature_slots = signature_slots
        self._sig_decoder = sig_decoder or (lambda sig_id: ())
        self.store = store if store is not None else DependenceStore()
        self.lifetime_analysis = lifetime_analysis
        self.track_control = track_control
        self.batch_events = batch_events
        self.stats = ProfileStats()
        self.control: dict[int, ControlRecord] = {}
        self.frontier = ShadowFrontier()
        #: Formula-2.2 hash conflicts observed (signature mode only)
        self.collisions = 0
        #: string table for tuple chunks packed through the legacy codec
        self._strings: Optional[StringTable] = None
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        self._buffer_strings: Optional[StringTable] = None
        self._reset_sig_matrices()

    # -- signature matrices --------------------------------------------

    def _reset_sig_matrices(self) -> None:
        self._sig_n = 0
        self._sig_regs = np.zeros((0, SIG_DEPTH_CAP), dtype=np.int64)
        self._sig_pack = np.zeros((0, SIG_DEPTH_CAP), dtype=np.int64)
        self._sig_deep = np.zeros(0, dtype=bool)

    @property
    def sig_decoder(self):
        return self._sig_decoder

    @sig_decoder.setter
    def sig_decoder(self, fn) -> None:
        self._sig_decoder = fn
        self._reset_sig_matrices()

    def _ensure_sigs(self, max_a: int, max_b: int = -1) -> None:
        max_id = max_a if max_a >= max_b else max_b
        return self._ensure_sigs_to(max_id)

    def _ensure_sigs_to(self, max_id: int) -> None:
        """Decode signature ids up to ``max_id`` into the flat matrices.

        Matrix cells pack ``(region << ITER_BITS) | iteration``; padding
        beyond a signature's depth is -1 in the packed matrix (equal
        padding self-terminates the column compare) and -2 in the region
        matrix (never equal to a real region, so a depth mismatch at the
        first differing column reads as "different loops" — exactly the
        reference scan's stop-at-exhaustion).
        """
        if max_id < self._sig_n:
            return
        cap = self._sig_regs.shape[0]
        if max_id >= cap:
            new_cap = max(2 * cap, max_id + 1, 256)
            regs = np.full((new_cap, SIG_DEPTH_CAP), -2, dtype=np.int64)
            pack = np.full((new_cap, SIG_DEPTH_CAP), -1, dtype=np.int64)
            deep = np.zeros(new_cap, dtype=bool)
            regs[:cap] = self._sig_regs
            pack[:cap] = self._sig_pack
            deep[: self._sig_deep.shape[0]] = self._sig_deep
            self._sig_regs, self._sig_pack = regs, pack
            self._sig_deep = deep
        decode = self._sig_decoder
        start = self._sig_n
        decoded = [decode(sid) for sid in range(start, max_id + 1)]
        counts = np.fromiter(map(len, decoded), np.int64, len(decoded))
        flat = np.array(
            [value for pairs in decoded for pair in pairs for value in pair],
            dtype=np.int64,
        ).reshape(-1, 2)
        sids = np.arange(start, max_id + 1)
        easy = counts <= SIG_DEPTH_CAP
        if flat.shape[0]:
            bad_vals = (
                (flat[:, 0] < 0)
                | (flat[:, 0] >= (1 << (62 - _SIG_ITER_BITS)))
                | (flat[:, 1] < 0)
                | (flat[:, 1] >= (1 << _SIG_ITER_BITS))
            )
            if bad_vals.any():  # pragma: no cover - pathological values
                easy = easy.copy()
                easy[np.repeat(
                    np.arange(len(decoded)), counts
                )[bad_vals]] = False
        self._sig_deep[sids[~easy]] = True
        fill = np.repeat(easy, counts)
        rows_idx = np.repeat(sids, counts)[fill]
        cols_idx = _multiarange(
            np.zeros(len(decoded), dtype=np.int64), counts
        )[fill]
        regions = flat[fill, 0]
        self._sig_regs[rows_idx, cols_idx] = regions
        self._sig_pack[rows_idx, cols_idx] = (
            (regions << _SIG_ITER_BITS) | flat[fill, 1]
        )
        self._sig_n = max_id + 1

    def _classify(self, src_ids: np.ndarray, snk_ids: np.ndarray) -> np.ndarray:
        """Carrier codes (region + 1, or 0 when not loop-carried)."""
        n = src_ids.shape[0]
        code = np.zeros(n, dtype=np.int64)
        if n == 0:
            return code
        # equal ids mean equal loop contexts: never carried; they are
        # the majority (same-iteration dependences), so drop them before
        # touching the matrices
        differs = src_ids != snk_ids
        if not differs.any():
            return code
        cand = np.nonzero(differs)[0]
        # occurrences repeat the same (source, sink) context pair many
        # times (merged WAR sets, rejoined loop exits): classify each
        # distinct pair once and scatter the verdicts back
        pair = (src_ids[cand] << np.int64(32)) | snk_ids[cand]
        p_order = np.argsort(pair)  # unstable: dedup only needs grouping
        sp = pair[p_order]
        p_new = np.ones(sp.shape[0], dtype=bool)
        p_new[1:] = sp[1:] != sp[:-1]
        inv = np.empty(sp.shape[0], dtype=np.int64)
        inv[p_order] = np.cumsum(p_new) - 1
        upair = sp[p_new]
        a = upair >> np.int64(32)
        b = upair & np.int64(0xFFFFFFFF)
        ucode = np.zeros(upair.shape[0], dtype=np.int64)
        self._ensure_sigs(int(a.max()), int(b.max()))
        deep = self._sig_deep
        deep_pair = deep[a] | deep[b]
        any_deep = bool(deep_pair.any())
        if any_deep:
            easy = np.nonzero(~deep_pair)[0]
            ea = a[easy]
            eb = b[easy]
        else:
            easy = None
            ea = a
            eb = b
        # first differing column of the packed (region, iteration) rows:
        # equal padding self-terminates, so no depth mask is needed
        neq = self._sig_pack[ea] != self._sig_pack[eb]
        hit = np.nonzero(neq.any(axis=1))[0]
        if hit.shape[0]:
            dpos = neq[hit].argmax(axis=1)
            regs = self._sig_regs
            ra = regs[ea[hit], dpos]
            rb = regs[eb[hit], dpos]
            carried = ra == rb  # same loop, differing iteration
            rows = hit[carried]
            if easy is not None:
                rows = easy[rows]
            ucode[rows] = ra[carried] + 1
        if any_deep:
            decode = self._sig_decoder
            for i in np.nonzero(deep_pair)[0].tolist():
                carrier = classify_carrier(
                    decode(int(a[i])), decode(int(b[i]))
                )
                if carrier is not None:
                    ucode[i] = carrier + 1
        code[cand] = ucode[inv]
        return code

    # -- chunk ingestion / batching ------------------------------------

    def __call__(self, chunk) -> None:
        self.process_chunk(chunk)

    def process_chunk(self, chunk) -> None:
        """Stage one chunk — columnar (:class:`EventChunk`) or tuples."""
        if not isinstance(chunk, EventChunk):
            chunk = list(chunk)
            if not chunk:
                return
            if self._strings is None:
                self._strings = StringTable()
            chunk = EventChunk.from_tuples(chunk, self._strings)
        rows = chunk.rows
        if rows.shape[0] == 0:
            return
        if self.batch_events <= 0:
            self._run(rows, chunk.strings.values)
            return
        if (
            self._buffer_strings is not None
            and chunk.strings is not self._buffer_strings
        ):
            # a new string table invalidates buffered name ids
            self.flush()
        self._buffer_strings = chunk.strings
        self._buffer.append(rows)
        self._buffered += rows.shape[0]
        if self._buffered >= self.batch_events:
            self.flush()

    def flush(self) -> None:
        """Run the detection core over every buffered chunk."""
        if not self._buffer:
            return
        if len(self._buffer) == 1:
            rows = self._buffer[0]
        else:
            rows = np.concatenate(self._buffer)
        names = self._buffer_strings.values
        self._buffer = []
        self._buffered = 0
        self._buffer_strings = None
        self._run(rows, names)

    # -- free coverage helpers -----------------------------------------

    def _free_cover_keys(
        self, keys: np.ndarray, fbase: np.ndarray, fsize: np.ndarray,
        fpos: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(key_index, free_position) pairs for every covered sorted key."""
        slots = self.signature_slots
        if slots is None:
            lo = np.searchsorted(keys, fbase)
            hi = np.searchsorted(keys, fbase + fsize)
            counts = hi - lo
            return _multiarange(lo, counts), np.repeat(fpos, counts)
        parts_i: list[np.ndarray] = []
        parts_q: list[np.ndarray] = []
        for base, size, pos in zip(
            fbase.tolist(), fsize.tolist(), fpos.tolist()
        ):
            if size >= slots:
                idx = np.arange(keys.shape[0])
            else:
                idx = np.nonzero((keys - base) % slots < size)[0]
            if idx.shape[0]:
                parts_i.append(idx)
                parts_q.append(np.full(idx.shape[0], pos, dtype=np.int64))
        if not parts_i:
            return _EMPTY, _EMPTY
        return np.concatenate(parts_i), np.concatenate(parts_q)

    def _free_cover_mask(
        self, keys: np.ndarray, fbase: np.ndarray, fsize: np.ndarray
    ) -> np.ndarray:
        """Which sorted keys any of the frees covers (order-free evict)."""
        covered = np.zeros(keys.shape[0], dtype=bool)
        slots = self.signature_slots
        if slots is None:
            lo = np.searchsorted(keys, fbase)
            hi = np.searchsorted(keys, fbase + fsize)
            for a, b in zip(lo.tolist(), hi.tolist()):
                if a < b:
                    covered[a:b] = True
        else:
            for base, size in zip(fbase.tolist(), fsize.tolist()):
                if size >= slots:
                    covered[:] = True
                    break
                covered |= (keys - base) % slots < size
        return covered

    # -- control records -----------------------------------------------

    def _track_control(self, cols, kinds, names) -> None:
        track_control_rows(self.control, cols, kinds, names)
    # -- bulk store merge ----------------------------------------------

    def _bulk_merge(
        self, typ, snk_line, src_line, nid, snk_tid, src_tid, code, race,
        names,
    ) -> None:
        """Dedup occurrences on one packed key; one dict op per group."""
        b_line = _bits(snk_line, _bits(src_line))
        b_nid = _bits(nid)
        b_code = _bits(code)
        b_tid = _bits(snk_tid, _bits(src_tid))
        if 2 * b_line + b_nid + b_code + 2 * b_tid + 2 <= 62:
            packed = (
                (((((((snk_line << b_line) | src_line) << b_nid) | nid)
                   << b_code | code) << b_tid | snk_tid) << b_tid
                 | src_tid) << 2 | typ
            )
            # unstable: groups are aggregated, order inside is irrelevant
            order = np.argsort(packed)
            sorted_key = packed[order]
            new_group = np.ones(order.shape[0], dtype=bool)
            new_group[1:] = sorted_key[1:] != sorted_key[:-1]
        else:  # pragma: no cover - gigantic line numbers only
            order = np.lexsort(
                (code, src_tid, snk_tid, nid, src_line, snk_line, typ)
            )
            new_group = np.ones(order.shape[0], dtype=bool)
            new_group[1:] = False
            for arr in (typ, snk_line, src_line, nid, snk_tid, src_tid, code):
                srt = arr[order]
                new_group[1:] |= srt[1:] != srt[:-1]
        starts = np.nonzero(new_group)[0]
        counts = np.diff(np.concatenate((starts, [order.shape[0]])))
        if race.any():
            race_any = np.logical_or.reduceat(race[order], starts).tolist()
        else:
            race_any = repeat(False)
        rep = order[starts]
        deps = self.store._deps
        for kl, ty, sl, nv, kt, st, cd, cnt, rc in zip(
            snk_line[rep].tolist(),
            typ[rep].tolist(),
            src_line[rep].tolist(),
            nid[rep].tolist(),
            snk_tid[rep].tolist(),
            src_tid[rep].tolist(),
            code[rep].tolist(),
            counts.tolist(),
            race_any,
        ):
            carried = cd != 0
            key = (kl, _TYPE_NAMES[ty], sl, names[nv], carried, kt, st)
            dep = deps.get(key)
            if dep is None:
                dep = Dependence(*key, count=0)
                deps[key] = dep
            dep.count += cnt
            if carried:
                dep.carriers.add(cd - 1)
            if rc:
                dep.maybe_race = True

    # -- the segmented detection core ----------------------------------

    def _run(self, rows: np.ndarray, names: list) -> None:
        # column-major copy: every downstream per-column gather is then
        # a contiguous 1D fancy index instead of a strided 2D row copy
        cols = np.empty((rows.shape[1], rows.shape[0]), dtype=np.int64)
        cols[:] = rows.T
        kinds = cols[COL_KIND]
        if self.track_control:
            self._track_control(cols, kinds, names)
        stats = self.stats
        kind_counts = np.bincount(kinds, minlength=K_FREE + 1)
        stats.reads += int(kind_counts[K_READ])
        stats.writes += int(kind_counts[K_WRITE])
        n_free = int(kind_counts[K_FREE]) if self.lifetime_analysis else 0
        stats.evictions += n_free
        mem_idx = np.nonzero(kinds <= K_WRITE)[0]
        m = mem_idx.shape[0]
        frontier = self.frontier
        if n_free:
            f_idx = np.nonzero(kinds == K_FREE)[0]
            fbase = cols[COL_ADDR, f_idx]
            fsize = cols[COL_AUX, f_idx]
        if m == 0:
            # no memory traffic: frees can still evict frontier state
            if n_free and len(frontier):
                frontier.filter(
                    ~self._free_cover_mask(frontier.keys, fbase, fsize)
                )
            return

        addr = cols[COL_ADDR, mem_idx]
        slots = self.signature_slots
        key = addr % slots if slots is not None else addr

        # ---- sort by (key, position); derive per-key segments --------
        order = np.argsort(key, kind="stable")
        s_idx = mem_idx[order]
        s_key = key[order] if slots is not None else cols[COL_ADDR][s_idx]
        new_key = np.ones(m, dtype=bool)
        new_key[1:] = s_key[1:] != s_key[:-1]
        uniq_keys = s_key[new_key]
        nu = uniq_keys.shape[0]

        # ---- frontier lookup + virtual rows --------------------------
        n_virtual = 0
        if len(frontier):
            floc = np.searchsorted(frontier.keys, uniq_keys)
            safe_floc = np.minimum(floc, len(frontier) - 1)
            fhit = frontier.keys[safe_floc] == uniq_keys
            hit_u = np.nonzero(fhit)[0]
            hit_loc = safe_floc[hit_u]
            has_write = frontier.w_line[hit_loc] >= 0
            vw_u = hit_u[has_write]
            vw_loc = hit_loc[has_write]
            r_counts = frontier.read_counts()[hit_loc]
            vr_flat = _multiarange(frontier.r_off[:-1][hit_loc], r_counts)
            vr_u = np.repeat(hit_u, r_counts)
            n_vw = vw_u.shape[0]
            n_vr = vr_u.shape[0]
            n_virtual = n_vw + n_vr
        if n_virtual:
            # combined rows: [virtual writes, virtual reads, real rows]
            # — a stable key sort groups per key with exactly that
            # order, so frontier state precedes the batch's accesses
            c_key = np.concatenate((uniq_keys[vw_u], uniq_keys[vr_u], s_key))
            c_order = np.argsort(c_key, kind="stable")
            cat = np.concatenate
            c_key = c_key[c_order]
            c_pos = cat((
                np.full(n_vw, -2, dtype=np.int64),
                np.full(n_vr, -1, dtype=np.int64),
                s_idx,
            ))[c_order]
            c_line = cat((
                frontier.w_line[vw_loc],
                frontier.r_line[vr_flat],
                cols[COL_LINE, s_idx],
            ))[c_order]
            c_sig = cat((
                frontier.w_sig[vw_loc],
                frontier.r_sig[vr_flat],
                cols[COL_SIG, s_idx],
            ))[c_order]
            c_tid = cat((
                frontier.w_tid[vw_loc],
                frontier.r_tid[vr_flat],
                cols[COL_TID, s_idx],
            ))[c_order]
            c_ts = cat((
                frontier.w_ts[vw_loc],
                frontier.r_ts[vr_flat],
                cols[COL_TS, s_idx],
            ))[c_order]
            c_nid = cat((
                np.zeros(n_virtual, dtype=np.int64),
                cols[COL_NAME, s_idx],
            ))[c_order]
            c_write = cat((
                np.ones(n_vw, dtype=bool),
                np.zeros(n_vr, dtype=bool),
                cols[COL_KIND, s_idx] == K_WRITE,
            ))[c_order]
            c_real = c_pos >= 0
            if slots is not None:
                c_addr = cat((
                    frontier.w_addr[vw_loc],
                    np.zeros(n_vr, dtype=np.int64),
                    cols[COL_ADDR, s_idx],
                ))[c_order]
            else:
                c_addr = c_key
        else:
            c_key = s_key
            c_pos = s_idx
            c_line = cols[COL_LINE, s_idx]
            c_sig = cols[COL_SIG, s_idx]
            c_tid = cols[COL_TID, s_idx]
            c_ts = cols[COL_TS, s_idx]
            c_nid = cols[COL_NAME, s_idx]
            c_write = cols[COL_KIND, s_idx] == K_WRITE
            c_real = None
            c_addr = cols[COL_ADDR, s_idx]
        total = c_key.shape[0]
        first_of_key = np.ones(total, dtype=bool)
        first_of_key[1:] = c_key[1:] != c_key[:-1]
        uidx = np.cumsum(first_of_key) - 1

        # ---- free epochs: count covering frees before every row ------
        cov_u = _EMPTY
        if n_free:
            cov_u, cov_q = self._free_cover_keys(
                uniq_keys, fbase, fsize, f_idx
            )
        if cov_u.shape[0]:
            # merged key space: (key index) << 32 | (position + 2); all
            # virtual rows sit below every free, as they must.  Only the
            # rows of covered keys can see a nonzero count, so the scan
            # runs on that subset (frees usually touch few live keys)
            cov_sorted = np.sort((cov_u << np.int64(32)) | (cov_q + 2))
            covered_key = np.zeros(nu, dtype=bool)
            covered_key[cov_u] = True
            sub = np.nonzero(covered_key[uidx])[0]
            sub_keys = uidx[sub] << np.int64(32)
            sub_cnt = (
                np.searchsorted(cov_sorted, sub_keys | (c_pos[sub] + 2))
                - np.searchsorted(cov_sorted, sub_keys)
            )
            u_range = np.arange(nu + 1, dtype=np.int64) << np.int64(32)
            free_total = np.diff(np.searchsorted(cov_sorted, u_range))
            epochs = True
            if sub_cnt.any():
                fcnt = np.zeros(total, dtype=np.int64)
                fcnt[sub] = sub_cnt
                new_grp = first_of_key.copy()
                new_grp[1:] |= fcnt[1:] != fcnt[:-1]
                grp = np.cumsum(new_grp) - 1
            else:
                # every free lands after its keys' last access: epoch
                # cuts collapse and only end-of-batch survival is left
                fcnt = None
                new_grp = first_of_key
                grp = uidx
        else:
            new_grp = first_of_key
            grp = uidx
            epochs = False

        # ---- live-epoch groups + previous-write chain ----------------
        idx = np.arange(total, dtype=np.int64)
        w_at = np.where(c_write, idx, -1)
        grp_off = grp * np.int64(total + 1)
        incl = np.maximum.accumulate(w_at + grp_off) - grp_off
        prev_w = np.empty(total, dtype=np.int64)
        prev_w[0] = -1
        prev_w[1:] = np.where(new_grp[1:], -1, incl[:-1])
        # write-interval id: the preceding write row, or a per-group
        # sentinel for reads before the group's first write
        interval = np.where(prev_w >= 0, prev_w, total + grp)

        # ---- RAW: every real read against its last write -------------
        read_rows = ~c_write
        if c_real is None:
            raw_snk = np.nonzero(read_rows & (prev_w >= 0))[0]
        else:
            raw_snk = np.nonzero(read_rows & c_real & (prev_w >= 0))[0]
        raw_src = prev_w[raw_snk]

        # ---- read sets per write interval (cap + latest per line) ----
        rd_idx = np.nonzero(read_rows)[0]
        if rd_idx.shape[0]:
            r_int = interval[rd_idx]
            r_line = c_line[rd_idx]
            b_pos = _bits(c_pos[rd_idx] + 2)
            b_line = _bits(r_line)
            # rows arrive position-ordered and interval-grouped, so a
            # stable sort on (interval, line) alone leaves each group
            # position-sorted — and timsort exploits the long runs
            if _bits(r_int) + b_line <= 62:
                rs_order = np.argsort(
                    (r_int << b_line) | r_line, kind="stable"
                )
            else:  # pragma: no cover - enormous batches only
                rs_order = np.lexsort((r_line, r_int))
            rs = rd_idx[rs_order]
            si = r_int[rs_order]
            sl = r_line[rs_order]
            g_new = np.ones(rs.shape[0], dtype=bool)
            g_new[1:] = (si[1:] != si[:-1]) | (sl[1:] != sl[:-1])
            g_first = np.nonzero(g_new)[0]
            g_last = np.empty(g_first.shape[0], dtype=np.int64)
            g_last[:-1] = g_first[1:] - 1
            g_last[-1] = rs.shape[0] - 1
            g_int = si[g_first]
            # insertion order = first occurrence; the cap keeps only the
            # first MAX_READS_PER_SLOT distinct lines of an interval
            # ties are only possible among one interval's frontier
            # groups, which the cap keeps wholesale — unstable is safe
            g_pos = c_pos[rs[g_first]] + 2
            g_order = np.argsort((g_int << b_pos) | g_pos)
            gi = g_int[g_order]
            gi_new = np.ones(gi.shape[0], dtype=bool)
            gi_new[1:] = gi[1:] != gi[:-1]
            gi_starts = np.nonzero(gi_new)[0]
            rank = (
                np.arange(gi.shape[0])
                - gi_starts[np.cumsum(gi_new) - 1]
            )
            kept_mask = rank < MAX_READS_PER_SLOT
            kept_int = gi[kept_mask]
            kept_row = rs[g_last][g_order][kept_mask]
        else:
            kept_int = _EMPTY
            kept_row = _EMPTY

        # ---- real writes: INIT / WAR fan-out / WAW -------------------
        if c_real is None:
            wr_rows = np.nonzero(c_write)[0]
        else:
            wr_rows = np.nonzero(c_write & c_real)[0]
        wr_prev = prev_w[wr_rows]
        init_rows = wr_rows[wr_prev < 0]
        if init_rows.shape[0]:
            self.store.init_lines.update(
                np.unique(c_line[init_rows]).tolist()
            )
        dep_w = wr_rows[wr_prev >= 0]
        dep_prev = wr_prev[wr_prev >= 0]
        if slots is not None and dep_w.shape[0]:
            self.collisions += int(
                (c_addr[dep_w] != c_addr[dep_prev]).sum()
            )
        lo = np.searchsorted(kept_int, dep_prev, side="left")
        hi = np.searchsorted(kept_int, dep_prev, side="right")
        n_war = hi - lo
        war_snk = np.repeat(dep_w, n_war)
        war_src = kept_row[_multiarange(lo, n_war)]
        waw_mask = n_war == 0
        waw_snk = dep_w[waw_mask]
        waw_src = dep_prev[waw_mask]

        # ---- occurrence assembly, carriers, bulk merge ---------------
        snk = np.concatenate((raw_snk, war_snk, waw_snk))
        built = snk.shape[0]
        if built:
            src = np.concatenate((raw_src, war_src, waw_src))
            typ = np.zeros(built, dtype=np.int64)
            typ[raw_snk.shape[0]: raw_snk.shape[0] + war_snk.shape[0]] = 1
            typ[raw_snk.shape[0] + war_snk.shape[0]:] = 2
            code = self._classify(c_sig[src], c_sig[snk])
            race = c_ts[src] > c_ts[snk]
            self._bulk_merge(
                typ, c_line[snk], c_line[src], c_nid[snk], c_tid[snk],
                c_tid[src], code, race, names,
            )
            stats.deps_built += built
            self.store.raw_occurrences += built

        # ---- frontier update -----------------------------------------
        last_of_key = np.empty(total, dtype=bool)
        last_of_key[:-1] = first_of_key[1:]
        last_of_key[-1] = True
        last_rows = idx[last_of_key]
        state_w = incl[last_rows]
        if epochs:
            if fcnt is None:
                survive = free_total == 0
            else:
                survive = free_total == fcnt[last_rows]
            touched = np.nonzero(survive)[0]
            state_int = np.where(
                state_w >= 0, state_w, total + grp[last_rows]
            )
            t_w = state_w[touched]
        else:
            survive = None
            touched = np.arange(nu)
            state_int = np.where(state_w >= 0, state_w, total + grp[last_rows])
            t_w = state_w
        safe_w = np.maximum(t_w, 0)
        has_w = t_w >= 0
        new_w_line = np.where(has_w, c_line[safe_w], -1)
        new_w_sig = np.where(has_w, c_sig[safe_w], 0)
        new_w_tid = np.where(has_w, c_tid[safe_w], 0)
        new_w_ts = np.where(has_w, c_ts[safe_w], 0)
        new_w_addr = np.where(has_w, c_addr[safe_w], 0)
        # the surviving read set: kept groups of each key's final interval
        if kept_row.shape[0]:
            k_u = uidx[kept_row]
            live_g = state_int[k_u] == kept_int
            if survive is not None:
                live_g &= survive[k_u]
            live_rows = kept_row[live_g]
            live_u = k_u[live_g]
            r_order = np.argsort(live_u, kind="stable")
            live_rows = live_rows[r_order]
            new_r_counts = np.bincount(live_u, minlength=nu)[touched]
        else:
            live_rows = _EMPTY
            new_r_counts = np.zeros(touched.shape[0], dtype=np.int64)

        # old entries survive when untouched and not covered by a free
        if len(frontier):
            old_loc = np.searchsorted(uniq_keys, frontier.keys)
            safe_old = np.minimum(old_loc, nu - 1)
            keep_old = uniq_keys[safe_old] != frontier.keys
            if n_free:
                keep_old &= ~self._free_cover_mask(
                    frontier.keys, fbase, fsize
                )
            n_old = int(keep_old.sum())
        else:
            keep_old = np.zeros(0, dtype=bool)
            n_old = 0

        out = ShadowFrontier()
        if n_old == 0:
            # common fast path: the frontier is rebuilt from this batch
            out.keys = uniq_keys[touched]
            out.w_line = new_w_line
            out.w_sig = new_w_sig
            out.w_tid = new_w_tid
            out.w_ts = new_w_ts
            out.w_addr = new_w_addr
            out.r_off = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(new_r_counts))
            )
            out.r_line = c_line[live_rows]
            out.r_sig = c_sig[live_rows]
            out.r_tid = c_tid[live_rows]
            out.r_ts = c_ts[live_rows]
        else:
            old_counts = frontier.read_counts()[keep_old]
            old_flat = _multiarange(frontier.r_off[:-1][keep_old], old_counts)
            all_keys = np.concatenate(
                (frontier.keys[keep_old], uniq_keys[touched])
            )
            merge_order = np.argsort(all_keys, kind="stable")

            def merged(old_vals, new_vals):
                return np.concatenate((old_vals, new_vals))[merge_order]

            out.keys = all_keys[merge_order]
            out.w_line = merged(frontier.w_line[keep_old], new_w_line)
            out.w_sig = merged(frontier.w_sig[keep_old], new_w_sig)
            out.w_tid = merged(frontier.w_tid[keep_old], new_w_tid)
            out.w_ts = merged(frontier.w_ts[keep_old], new_w_ts)
            out.w_addr = merged(frontier.w_addr[keep_old], new_w_addr)
            counts_cat = np.concatenate((old_counts, new_r_counts))
            counts_all = counts_cat[merge_order]
            out.r_off = np.concatenate(
                (np.zeros(1, dtype=np.int64), np.cumsum(counts_all))
            )
            # flat reads in concat order, then permuted entry-block-wise
            flat_line = np.concatenate(
                (frontier.r_line[old_flat], c_line[live_rows])
            )
            flat_sig = np.concatenate(
                (frontier.r_sig[old_flat], c_sig[live_rows])
            )
            flat_tid = np.concatenate(
                (frontier.r_tid[old_flat], c_tid[live_rows])
            )
            flat_ts = np.concatenate(
                (frontier.r_ts[old_flat], c_ts[live_rows])
            )
            src_off = np.concatenate((
                np.zeros(1, dtype=np.int64),
                np.cumsum(counts_cat),
            ))
            gather = _multiarange(
                src_off[:-1][merge_order], counts_all
            )
            out.r_line = flat_line[gather]
            out.r_sig = flat_sig[gather]
            out.r_tid = flat_tid[gather]
            out.r_ts = flat_ts[gather]
        self.frontier = out

    # -- scalar shadow queries (parallel redistribution, debugging) ----

    def _key_of(self, addr: int) -> int:
        slots = self.signature_slots
        return addr % slots if slots is not None else addr

    def last_write(self, addr: int) -> Optional[tuple]:
        i = self.frontier.lookup(self._key_of(addr))
        if i < 0 or int(self.frontier.w_line[i]) < 0:
            return None
        fr = self.frontier
        return (
            int(fr.w_line[i]), int(fr.w_sig[i]), int(fr.w_tid[i]),
            int(fr.w_ts[i]),
        )

    def reads_since_write(self, addr: int) -> list[tuple]:
        fr = self.frontier
        i = fr.lookup(self._key_of(addr))
        if i < 0:
            return []
        lo, hi = int(fr.r_off[i]), int(fr.r_off[i + 1])
        return [
            (
                int(fr.r_line[j]), int(fr.r_sig[j]), int(fr.r_tid[j]),
                int(fr.r_ts[j]),
            )
            for j in range(lo, hi)
        ]

    def pop_address_state(self, addr: int):
        """Remove and return ``(last_write, reads)`` for one address."""
        self.flush()
        state = (self.last_write(addr), self.reads_since_write(addr))
        i = self.frontier.lookup(self._key_of(addr))
        if i >= 0:
            keep = np.ones(len(self.frontier), dtype=bool)
            keep[i] = False
            self.frontier.filter(keep)
        return state

    def put_address_state(self, addr: int, state) -> None:
        """Install ``(last_write, reads)`` for one address (state move)."""
        self.flush()
        lw, reads = state
        if lw is None and not reads:
            return
        key = self._key_of(addr)
        fr = self.frontier
        i = fr.lookup(key)
        if i >= 0:
            keep = np.ones(len(fr), dtype=bool)
            keep[i] = False
            fr.filter(keep)
        pos = int(np.searchsorted(fr.keys, key))
        line, sig, tid, ts = lw if lw is not None else (-1, 0, 0, 0)
        fr.keys = np.insert(fr.keys, pos, key)
        fr.w_line = np.insert(fr.w_line, pos, line)
        fr.w_sig = np.insert(fr.w_sig, pos, sig)
        fr.w_tid = np.insert(fr.w_tid, pos, tid)
        fr.w_ts = np.insert(fr.w_ts, pos, ts)
        fr.w_addr = np.insert(fr.w_addr, pos, addr)
        reads = reads[:MAX_READS_PER_SLOT]
        flat_pos = int(fr.r_off[pos])
        fr.r_off = np.concatenate((
            fr.r_off[: pos + 1],
            fr.r_off[pos:] + len(reads),
        ))
        for field, col in (
            ("r_line", 0), ("r_sig", 1), ("r_tid", 2), ("r_ts", 3)
        ):
            arr = getattr(fr, field)
            vals = np.array([r[col] for r in reads], dtype=np.int64)
            setattr(
                fr, field,
                np.concatenate((arr[:flat_pos], vals, arr[flat_pos:])),
            )

    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        sig_bytes = (
            self._sig_regs.nbytes + self._sig_pack.nbytes
            + self._sig_deep.nbytes
        )
        buffered = sum(block.nbytes for block in self._buffer)
        return (
            self.frontier.memory_bytes() + sig_bytes + buffered
            + self.store.memory_bytes()
        )

    def result(self) -> DependenceStore:
        self.flush()
        return self.store


def profile_events_vectorized(
    events: Iterable[tuple],
    sig_decoder: Callable[[int], tuple],
    **kwargs,
) -> VectorizedProfiler:
    """Profile an already-recorded event iterable (convenience driver)."""
    profiler = VectorizedProfiler(sig_decoder=sig_decoder, **kwargs)
    profiler.process_chunk(events)
    profiler.flush()
    return profiler
