"""The serial data-dependence profiling algorithm (Algorithm 2, extended).

Consumes instrumentation event chunks and builds merged dependences:

* read  — RAW against the last write of the address;
* write — WARs against every read since the last write, WAW when the
  previous write had no intervening read (consecutive writes, §2.5.2),
  INIT when the address was never written;
* ALLOC/FREE — variable-lifetime analysis (§2.3.5): dead blocks are evicted
  from the shadow so reused stack/heap addresses do not fabricate
  dependences;
* BGN/END/ITER — control-structure records (Fig. 2.1's ``BGN loop`` /
  ``END loop <iterations>`` lines) and loop-context bookkeeping;
* timestamps — an access recorded with a timestamp older than the shadow
  state while unprotected by locks flags a potential data race (§2.3.4).

Loop-carried classification decodes the interned loop-context signatures two
accesses carried and finds the outermost loop whose iteration numbers
differ — that loop is recorded as the dependence's *carrier*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.profiler.deps import DependenceStore, DepType
from repro.profiler.shadow import PerfectShadow, SignatureShadow
from repro.runtime.events import (
    EV_ALLOC,
    EV_BGN,
    EV_END,
    EV_FENTRY,
    EV_FEXIT,
    EV_FREE,
    EV_ITER,
    EV_READ,
    EV_WRITE,
)


def classify_carrier(src_sig: tuple, snk_sig: tuple) -> Optional[int]:
    """Outermost common loop whose iteration numbers differ, or None.

    Signatures are ``((region_id, iteration), ...)`` outermost-first.  The
    scan stops at the first structural mismatch (different loops at the same
    depth): beyond it the accesses are in different loop bodies and deeper
    positions say nothing about carrying.
    """
    for (r1, i1), (r2, i2) in zip(src_sig, snk_sig):
        if r1 != r2:
            return None
        if i1 != i2:
            return r1
    return None


@dataclass
class ControlRecord:
    """Aggregated control-structure info for one static region."""

    region_id: int
    kind: str
    start_line: int
    end_line: int
    executions: int = 0
    total_iterations: int = 0

    def to_dict(self) -> dict:
        return {
            "region_id": self.region_id,
            "kind": self.kind,
            "start_line": self.start_line,
            "end_line": self.end_line,
            "executions": self.executions,
            "total_iterations": self.total_iterations,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ControlRecord":
        return cls(**data)


@dataclass
class ProfileStats:
    """Workload counters used by the performance figures."""

    reads: int = 0
    writes: int = 0
    deps_built: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


class SerialProfiler:
    """Single-consumer profiling of an event stream.

    ``shadow`` is either shadow implementation; ``sig_decoder`` maps interned
    loop-context ids back to signature tuples (``VM.loop_signature``).
    """

    def __init__(
        self,
        shadow=None,
        sig_decoder: Optional[Callable[[int], tuple]] = None,
        *,
        store: Optional[DependenceStore] = None,
        lifetime_analysis: bool = True,
        track_control: bool = True,
    ) -> None:
        self.shadow = shadow if shadow is not None else PerfectShadow()
        self.sig_decoder = sig_decoder or (lambda sig_id: ())
        self.store = store if store is not None else DependenceStore()
        self.lifetime_analysis = lifetime_analysis
        self.track_control = track_control
        self.stats = ProfileStats()
        self.control: dict[int, ControlRecord] = {}

    # ------------------------------------------------------------------

    def __call__(self, chunk: list) -> None:
        self.process_chunk(chunk)

    def process_chunk(self, chunk: Iterable[tuple]) -> None:
        shadow = self.shadow
        store = self.store
        decode = self.sig_decoder
        stats = self.stats
        last_write = shadow.last_write
        reads_since = shadow.reads_since_write
        record_read = shadow.record_read
        record_write = shadow.record_write

        for ev in chunk:
            kind = ev[0]
            if kind == EV_READ:
                addr = ev[1]
                line = ev[2]
                var = ev[3]
                tid = ev[5]
                ts = ev[6]
                ctx = ev[7]
                stats.reads += 1
                lw = last_write(addr)
                if lw is not None:
                    carrier = classify_carrier(decode(lw[1]), decode(ctx))
                    race = lw[3] > ts
                    store.add(
                        line,
                        DepType.RAW,
                        lw[0],
                        var,
                        loop_carried=carrier is not None,
                        carrier=carrier,
                        sink_tid=tid,
                        source_tid=lw[2],
                        maybe_race=race,
                    )
                    stats.deps_built += 1
                record_read(addr, line, ctx, tid, ts)
            elif kind == EV_WRITE:
                addr = ev[1]
                line = ev[2]
                var = ev[3]
                tid = ev[5]
                ts = ev[6]
                ctx = ev[7]
                stats.writes += 1
                lw = last_write(addr)
                if lw is None:
                    store.add_init(line)
                else:
                    snk_sig = decode(ctx)
                    pending_reads = reads_since(addr)
                    if pending_reads:
                        for rd in pending_reads:
                            carrier = classify_carrier(decode(rd[1]), snk_sig)
                            race = rd[3] > ts
                            store.add(
                                line,
                                DepType.WAR,
                                rd[0],
                                var,
                                loop_carried=carrier is not None,
                                carrier=carrier,
                                sink_tid=tid,
                                source_tid=rd[2],
                                maybe_race=race,
                            )
                            stats.deps_built += 1
                    else:
                        carrier = classify_carrier(decode(lw[1]), snk_sig)
                        race = lw[3] > ts
                        store.add(
                            line,
                            DepType.WAW,
                            lw[0],
                            var,
                            loop_carried=carrier is not None,
                            carrier=carrier,
                            sink_tid=tid,
                            source_tid=lw[2],
                            maybe_race=race,
                        )
                        stats.deps_built += 1
                record_write(addr, line, ctx, tid, ts)
            elif kind == EV_FREE:
                if self.lifetime_analysis:
                    shadow.evict(ev[1], ev[2])
                    stats.evictions += 1
            elif kind == EV_BGN:
                if self.track_control:
                    rec = self.control.get(ev[1])
                    if rec is None:
                        rec = ControlRecord(ev[1], ev[2], ev[3], ev[3])
                        self.control[ev[1]] = rec
                    rec.executions += 1
            elif kind == EV_END:
                if self.track_control:
                    rec = self.control.get(ev[1])
                    if rec is None:
                        rec = ControlRecord(ev[1], ev[2], ev[3], ev[3])
                        self.control[ev[1]] = rec
                    rec.end_line = max(rec.end_line, ev[3])
                    rec.total_iterations += ev[6]
            # ALLOC / LOCK / UNLOCK / FENTRY / FEXIT / ITER / SPAWN /
            # JOINED need no shadow action here (PETBuilder and the race
            # jitter model consume them separately).

    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        return self.shadow.memory_bytes() + self.store.memory_bytes()

    def result(self) -> DependenceStore:
        return self.store


# ---------------------------------------------------------------------------
# convenience drivers
# ---------------------------------------------------------------------------


def profile_events(
    events: Iterable[tuple],
    sig_decoder: Callable[[int], tuple],
    *,
    shadow=None,
    **kwargs,
) -> SerialProfiler:
    """Profile an already-recorded event iterable."""
    profiler = SerialProfiler(shadow, sig_decoder, **kwargs)
    profiler.process_chunk(events)
    return profiler


def profile_source(
    source: str,
    *,
    signature_slots: Optional[int] = None,
    entry: str = "main",
    **vm_kwargs,
):
    """Compile, run, and profile MiniC source online (streaming chunks).

    Returns ``(profiler, vm, return_value)``.  ``signature_slots=None``
    selects the exact PerfectShadow baseline.
    """
    from repro.mir.lowering import compile_source
    from repro.runtime.interpreter import VM

    module = compile_source(source)
    shadow = (
        PerfectShadow()
        if signature_slots is None
        else SignatureShadow(signature_slots)
    )
    profiler = SerialProfiler(shadow)
    vm = VM(module, profiler, **vm_kwargs)
    profiler.sig_decoder = vm.loop_signature
    result = vm.run(entry)
    return profiler, vm, result
