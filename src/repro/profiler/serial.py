"""The serial data-dependence profiling algorithm (Algorithm 2, extended).

Consumes instrumentation event chunks and builds merged dependences:

* read  — RAW against the last write of the address;
* write — WARs against every read since the last write, WAW when the
  previous write had no intervening read (consecutive writes, §2.5.2),
  INIT when the address was never written;
* ALLOC/FREE — variable-lifetime analysis (§2.3.5): dead blocks are evicted
  from the shadow so reused stack/heap addresses do not fabricate
  dependences;
* BGN/END/ITER — control-structure records (Fig. 2.1's ``BGN loop`` /
  ``END loop <iterations>`` lines) and loop-context bookkeeping;
* timestamps — an access recorded with a timestamp older than the shadow
  state while unprotected by locks flags a potential data race (§2.3.4).

Loop-carried classification decodes the interned loop-context signatures two
accesses carried and finds the outermost loop whose iteration numbers
differ — that loop is recorded as the dependence's *carrier*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

import numpy as np

from repro.profiler.deps import Dependence, DependenceStore, DepType
from repro.profiler.shadow import MAX_READS_PER_SLOT, PerfectShadow, SignatureShadow
from repro.runtime.events import (
    COL_ADDR,
    COL_AUX,
    COL_KIND,
    COL_LINE,
    COL_NAME,
    COL_SIG,
    COL_TID,
    COL_TS,
    EV_ALLOC,
    EV_BGN,
    EV_END,
    EV_FENTRY,
    EV_FEXIT,
    EV_FREE,
    EV_ITER,
    EV_READ,
    EV_WRITE,
    EventChunk,
    K_BGN,
    K_END,
    K_FREE,
    K_READ,
    K_WRITE,
)


def classify_carrier(src_sig: tuple, snk_sig: tuple) -> Optional[int]:
    """Outermost common loop whose iteration numbers differ, or None.

    Signatures are ``((region_id, iteration), ...)`` outermost-first.  The
    scan stops at the first structural mismatch (different loops at the same
    depth): beyond it the accesses are in different loop bodies and deeper
    positions say nothing about carrying.
    """
    for (r1, i1), (r2, i2) in zip(src_sig, snk_sig):
        if r1 != r2:
            return None
        if i1 != i2:
            return r1
    return None


@dataclass
class ControlRecord:
    """Aggregated control-structure info for one static region."""

    region_id: int
    kind: str
    start_line: int
    end_line: int
    executions: int = 0
    total_iterations: int = 0

    def to_dict(self) -> dict:
        return {
            "region_id": self.region_id,
            "kind": self.kind,
            "start_line": self.start_line,
            "end_line": self.end_line,
            "executions": self.executions,
            "total_iterations": self.total_iterations,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ControlRecord":
        return cls(**data)


@dataclass
class ProfileStats:
    """Workload counters used by the performance figures."""

    reads: int = 0
    writes: int = 0
    deps_built: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes


class SerialProfiler:
    """Single-consumer profiling of an event stream.

    ``shadow`` is either shadow implementation; ``sig_decoder`` maps interned
    loop-context ids back to signature tuples (``VM.loop_signature``).
    """

    def __init__(
        self,
        shadow=None,
        sig_decoder: Optional[Callable[[int], tuple]] = None,
        *,
        store: Optional[DependenceStore] = None,
        lifetime_analysis: bool = True,
        track_control: bool = True,
    ) -> None:
        self.shadow = shadow if shadow is not None else PerfectShadow()
        self._sig_decoder = sig_decoder or (lambda sig_id: ())
        self.store = store if store is not None else DependenceStore()
        self.lifetime_analysis = lifetime_analysis
        self.track_control = track_control
        self.stats = ProfileStats()
        self.control: dict[int, ControlRecord] = {}
        #: sig id -> int-only (regions, iterations, depth) decoded columns
        self._sig_cache: dict[int, tuple] = {}
        #: interned region-shape tuples (shape equality as identity)
        self._shape_intern: dict[tuple, tuple] = {}
        #: int occurrence key -> Dependence (see _process_columnar)
        self._dep_memo: dict[int, Dependence] = {}

    @property
    def sig_decoder(self):
        return self._sig_decoder

    @sig_decoder.setter
    def sig_decoder(self, fn) -> None:
        self._sig_decoder = fn
        self._sig_cache.clear()
        self._shape_intern.clear()
        self._dep_memo.clear()

    # ------------------------------------------------------------------

    def __call__(self, chunk) -> None:
        self.process_chunk(chunk)

    def process_chunk(self, chunk) -> None:
        """Profile one chunk — columnar (:class:`EventChunk`) or tuples."""
        if isinstance(chunk, EventChunk):
            self._process_columnar(chunk)
        else:
            self._process_tuples(chunk)

    def _process_tuples(self, chunk: Iterable[tuple]) -> None:
        shadow = self.shadow
        store = self.store
        decode = self.sig_decoder
        stats = self.stats
        last_write = shadow.last_write
        reads_since = shadow.reads_since_write
        record_read = shadow.record_read
        record_write = shadow.record_write

        for ev in chunk:
            kind = ev[0]
            if kind == EV_READ:
                addr = ev[1]
                line = ev[2]
                var = ev[3]
                tid = ev[5]
                ts = ev[6]
                ctx = ev[7]
                stats.reads += 1
                lw = last_write(addr)
                if lw is not None:
                    carrier = classify_carrier(decode(lw[1]), decode(ctx))
                    race = lw[3] > ts
                    store.add(
                        line,
                        DepType.RAW,
                        lw[0],
                        var,
                        loop_carried=carrier is not None,
                        carrier=carrier,
                        sink_tid=tid,
                        source_tid=lw[2],
                        maybe_race=race,
                    )
                    stats.deps_built += 1
                record_read(addr, line, ctx, tid, ts)
            elif kind == EV_WRITE:
                addr = ev[1]
                line = ev[2]
                var = ev[3]
                tid = ev[5]
                ts = ev[6]
                ctx = ev[7]
                stats.writes += 1
                lw = last_write(addr)
                if lw is None:
                    store.add_init(line)
                else:
                    snk_sig = decode(ctx)
                    pending_reads = reads_since(addr)
                    if pending_reads:
                        for rd in pending_reads:
                            carrier = classify_carrier(decode(rd[1]), snk_sig)
                            race = rd[3] > ts
                            store.add(
                                line,
                                DepType.WAR,
                                rd[0],
                                var,
                                loop_carried=carrier is not None,
                                carrier=carrier,
                                sink_tid=tid,
                                source_tid=rd[2],
                                maybe_race=race,
                            )
                            stats.deps_built += 1
                    else:
                        carrier = classify_carrier(decode(lw[1]), snk_sig)
                        race = lw[3] > ts
                        store.add(
                            line,
                            DepType.WAW,
                            lw[0],
                            var,
                            loop_carried=carrier is not None,
                            carrier=carrier,
                            sink_tid=tid,
                            source_tid=lw[2],
                            maybe_race=race,
                        )
                        stats.deps_built += 1
                record_write(addr, line, ctx, tid, ts)
            elif kind == EV_FREE:
                if self.lifetime_analysis:
                    shadow.evict(ev[1], ev[2])
                    stats.evictions += 1
            elif kind == EV_BGN:
                if self.track_control:
                    rec = self.control.get(ev[1])
                    if rec is None:
                        rec = ControlRecord(ev[1], ev[2], ev[3], ev[3])
                        self.control[ev[1]] = rec
                    rec.executions += 1
            elif kind == EV_END:
                if self.track_control:
                    rec = self.control.get(ev[1])
                    if rec is None:
                        rec = ControlRecord(ev[1], ev[2], ev[3], ev[3])
                        self.control[ev[1]] = rec
                    rec.end_line = max(rec.end_line, ev[3])
                    rec.total_iterations += ev[6]
            # ALLOC / LOCK / UNLOCK / FENTRY / FEXIT / ITER / SPAWN /
            # JOINED need no shadow action here (PETBuilder and the race
            # jitter model consume them separately).

    # ------------------------------------------------------------------
    # columnar fast path
    # ------------------------------------------------------------------

    def _process_columnar(self, chunk: EventChunk) -> None:
        """Vectorized-mask + tight-loop profiling of a packed chunk.

        Kind counting, the memory/control masks and the static half of the
        occurrence keys are vectorized; column extraction happens once per
        chunk (``ndarray.tolist`` is a bulk C conversion) so the per-event
        loop runs over plain ints with zero tuple indexing.  For the
        :class:`PerfectShadow` the shadow update is inlined (no per-event
        method calls); other shadows go through the regular shadow
        interface.

        The loop memoizes everything the tuple path recomputes from
        scratch — each memo is a pure shortcut, so the resulting store is
        bit-identical:

        * equal interned signature ids mean equal loop contexts, so
          ``src_sig == snk_sig`` short-circuits carrier classification to
          "not carried" without any decoding; other pairs run an int-only
          prefix scan over per-id cached ``(regions, iterations)`` columns
          (cross-iteration id *pairs* never repeat, so only per-id caching
          helps).  Region tuples are interned, making the common
          same-nest case an ``is`` check with the depth-1/2 scans
          unrolled.
        * an occurrence memo: a dependence's merge identity ``(sink_line,
          type, source_line, var, loop_carried, sink_tid, source_tid)``
          plus its carrier is fully determined by the small ints
          ``(op_id, source_line, source_tid, sink_tid, carrier, type)``
          (``op_id`` fixes the sink line and variable name).  Packed into
          one int key — sink half vectorized per chunk, source half
          precomputed in the shadow entry — repeat occurrences, the
          overwhelming majority in loops, reduce to one int-dict hit plus
          a count increment.  The layout leaves 22 bits for source lines,
          14 for carrier region ids and 7 per thread id (the VM hard-caps
          threads at 64); ``op_id`` sits above bit 52 and is unbounded —
          chunks whose op ids exceed the int64-safe 11 bits compose their
          keys with arbitrary-precision Python ints instead of the
          vectorized path, so keys never alias.

        The inlined perfect-shadow path extends the shadow entry tuples
        with two cached fields — ``(line, ctx, tid, ts, sig_cols,
        src_key)`` — consumers must treat entries as "first four fields
        fixed, rest private".  One profiler instance must not switch chunk
        formats mid-run (the engine never does).
        """
        rows = chunk.rows
        n = rows.shape[0]
        if n == 0:
            return
        kinds = rows[:, COL_KIND]
        n_reads = int((kinds == K_READ).sum())
        n_writes = int((kinds == K_WRITE).sum())
        stats = self.stats
        stats.reads += n_reads
        stats.writes += n_writes
        klist = kinds.tolist()
        addrs = rows[:, COL_ADDR].tolist()
        lines = rows[:, COL_LINE].tolist()
        nids = rows[:, COL_NAME].tolist()
        aux = rows[:, COL_AUX].tolist()
        tids = rows[:, COL_TID].tolist()
        tss = rows[:, COL_TS].tolist()
        sigs = rows[:, COL_SIG].tolist()
        # Static (sink-side) half of the occurrence keys.  The vectorized
        # int64 composition is only valid while op_id fits the 11 bits
        # above the source-line field; larger modules fall back to
        # arbitrary-precision Python ints (op_id is then unbounded — the
        # memo key simply grows past 63 bits instead of aliasing).
        mem_mask = kinds <= K_WRITE
        op_max = (
            int(rows[mem_mask, COL_AUX].max()) if mem_mask.any() else 0
        )
        if op_max < (1 << 11):
            base = (
                (rows[:, COL_AUX] << np.int64(52))
                | (rows[:, COL_TID] << np.int64(2))
            ).tolist()
        else:
            base = [(op << 52) | (tid << 2) for op, tid in zip(aux, tids)]
        # source-side key half a future dependence of this event will use
        srckeys = (
            (rows[:, COL_LINE] << np.int64(30))
            | (rows[:, COL_TID] << np.int64(9))
        ).tolist()
        names = chunk.strings.values
        store = self.store
        shadow = self.shadow
        if type(shadow) is PerfectShadow:
            self._columnar_perfect(
                klist, addrs, lines, nids, aux, tids, tss, sigs, base,
                srckeys, names, store, shadow,
            )
        else:
            self._columnar_generic(
                klist, addrs, lines, nids, aux, tids, tss, sigs, base,
                names, store, shadow,
            )

    def _sig_columns(self, sig_id: int) -> tuple:
        """Decode a signature id to int-only ``(regions, iters, depth)``.

        The regions tuple is interned so signatures of the same loop nest
        share one object and shape equality becomes an ``is`` check.
        """
        pairs = self._sig_decoder(sig_id)
        regions = tuple(p[0] for p in pairs)
        shape = self._shape_intern.get(regions)
        if shape is None:
            self._shape_intern[regions] = shape = regions
        cols = (shape, tuple(p[1] for p in pairs), len(pairs))
        self._sig_cache[sig_id] = cols
        return cols

    def _merge_dep(
        self, memo_key, dep_type, sink_line, source_line, var, code,
        sink_tid, source_tid,
    ):
        """Occurrence-memo miss: full legacy-keyed merge, then index it.

        ``code`` arrives pre-shifted into key position (carrier region + 1,
        shifted left 16; 0 = not carried).
        """
        carried = code != 0
        key = (sink_line, dep_type, source_line, var, carried, sink_tid,
               source_tid)
        deps = self.store._deps
        dep = deps.get(key)
        if dep is None:
            dep = Dependence(
                sink_line, dep_type, source_line, var, carried, sink_tid,
                source_tid, count=0,
            )
            deps[key] = dep
        if carried:
            dep.carriers.add((code >> 16) - 1)
        self._dep_memo[memo_key] = dep
        return dep

    def _columnar_perfect(
        self, klist, addrs, lines, nids, aux, tids, tss, sigs, base,
        srckeys, names, store, shadow,
    ) -> None:
        stats = self.stats
        write = shadow.write
        reads = shadow.reads
        init_add = store.init_lines.add
        sc = self._sig_cache
        memo = self._dep_memo
        merge = self._merge_dep
        sig_cols = self._sig_columns
        built = 0
        last_ctx = -1
        bcols = None
        idx = -1
        for k, addr, line, tid, ts, ctx in zip(
            klist, addrs, lines, tids, tss, sigs
        ):
            idx += 1
            if k == K_READ:
                lw = write.get(addr)
                if lw is not None:
                    lsig = lw[1]
                    if lsig == ctx:
                        code = 0
                    else:
                        ra, ia, da = lw[4]
                        if ctx != last_ctx:
                            bcols = sc.get(ctx)
                            if bcols is None:
                                bcols = sig_cols(ctx)
                            last_ctx = ctx
                        rb, ib, db = bcols
                        if ra is rb:
                            if da == 1:
                                code = 0 if ia[0] == ib[0] else (ra[0] + 1) << 16
                            elif da == 2:
                                if ia[0] != ib[0]:
                                    code = (ra[0] + 1) << 16
                                elif ia[1] != ib[1]:
                                    code = (ra[1] + 1) << 16
                                else:
                                    code = 0
                            else:
                                code = 0
                                for d in range(da):
                                    if ia[d] != ib[d]:
                                        code = (ra[d] + 1) << 16
                                        break
                        else:
                            code = 0
                            for d in range(da if da < db else db):
                                r = ra[d]
                                if r != rb[d]:
                                    break
                                if ia[d] != ib[d]:
                                    code = (r + 1) << 16
                                    break
                    mk = base[idx] | lw[5] | code
                    dep = memo.get(mk)
                    if dep is None:
                        dep = merge(mk, "RAW", line, lw[0], names[nids[idx]],
                                    code, tid, lw[2])
                    dep.count += 1
                    if lw[3] > ts:
                        dep.maybe_race = True
                    built += 1
                entry = reads.get(addr)
                if entry is None:
                    if ctx != last_ctx:
                        bcols = sc.get(ctx)
                        if bcols is None:
                            bcols = sig_cols(ctx)
                        last_ctx = ctx
                    reads[addr] = {
                        line: (line, ctx, tid, ts, bcols, srckeys[idx])
                    }
                elif line in entry or len(entry) < MAX_READS_PER_SLOT:
                    if ctx != last_ctx:
                        bcols = sc.get(ctx)
                        if bcols is None:
                            bcols = sig_cols(ctx)
                        last_ctx = ctx
                    entry[line] = (line, ctx, tid, ts, bcols, srckeys[idx])
            elif k == K_WRITE:
                lw = write.get(addr)
                if lw is None:
                    init_add(line)
                else:
                    entry = reads.get(addr)
                    if entry:
                        var = names[nids[idx]]
                        mk_base = base[idx] | 1
                        if ctx != last_ctx:
                            bcols = sc.get(ctx)
                            if bcols is None:
                                bcols = sig_cols(ctx)
                            last_ctx = ctx
                        rb, ib, db = bcols
                        for rd in entry.values():
                            rsig = rd[1]
                            if rsig == ctx:
                                code = 0
                            else:
                                ra, ia, da = rd[4]
                                if ra is rb:
                                    if da == 1:
                                        code = (0 if ia[0] == ib[0]
                                                else (ra[0] + 1) << 16)
                                    elif da == 2:
                                        if ia[0] != ib[0]:
                                            code = (ra[0] + 1) << 16
                                        elif ia[1] != ib[1]:
                                            code = (ra[1] + 1) << 16
                                        else:
                                            code = 0
                                    else:
                                        code = 0
                                        for d in range(da):
                                            if ia[d] != ib[d]:
                                                code = (ra[d] + 1) << 16
                                                break
                                else:
                                    code = 0
                                    for d in range(da if da < db else db):
                                        r = ra[d]
                                        if r != rb[d]:
                                            break
                                        if ia[d] != ib[d]:
                                            code = (r + 1) << 16
                                            break
                            mk = mk_base | rd[5] | code
                            dep = memo.get(mk)
                            if dep is None:
                                dep = merge(mk, "WAR", line, rd[0], var,
                                            code, tid, rd[2])
                            dep.count += 1
                            if rd[3] > ts:
                                dep.maybe_race = True
                            built += 1
                    else:
                        lsig = lw[1]
                        if lsig == ctx:
                            code = 0
                        else:
                            ra, ia, da = lw[4]
                            if ctx != last_ctx:
                                bcols = sc.get(ctx)
                                if bcols is None:
                                    bcols = sig_cols(ctx)
                                last_ctx = ctx
                            rb, ib, db = bcols
                            if ra is rb:
                                if da == 1:
                                    code = 0 if ia[0] == ib[0] else (ra[0] + 1) << 16
                                elif da == 2:
                                    if ia[0] != ib[0]:
                                        code = (ra[0] + 1) << 16
                                    elif ia[1] != ib[1]:
                                        code = (ra[1] + 1) << 16
                                    else:
                                        code = 0
                                else:
                                    code = 0
                                    for d in range(da):
                                        if ia[d] != ib[d]:
                                            code = (ra[d] + 1) << 16
                                            break
                            else:
                                code = 0
                                for d in range(da if da < db else db):
                                    r = ra[d]
                                    if r != rb[d]:
                                        break
                                    if ia[d] != ib[d]:
                                        code = (r + 1) << 16
                                        break
                        mk = base[idx] | lw[5] | code | 2
                        dep = memo.get(mk)
                        if dep is None:
                            dep = merge(mk, "WAW", line, lw[0], names[nids[idx]],
                                        code, tid, lw[2])
                        dep.count += 1
                        if lw[3] > ts:
                            dep.maybe_race = True
                        built += 1
                if ctx != last_ctx:
                    bcols = sc.get(ctx)
                    if bcols is None:
                        bcols = sig_cols(ctx)
                    last_ctx = ctx
                write[addr] = (line, ctx, tid, ts, bcols, srckeys[idx])
                reads.pop(addr, None)
            elif k == K_FREE:
                if self.lifetime_analysis:
                    shadow.evict(addr, aux[idx])
                    stats.evictions += 1
            elif k == K_BGN:
                if self.track_control:
                    rec = self.control.get(addr)
                    if rec is None:
                        rec = ControlRecord(addr, names[nids[idx]], line, line)
                        self.control[addr] = rec
                    rec.executions += 1
            elif k == K_END:
                if self.track_control:
                    rec = self.control.get(addr)
                    if rec is None:
                        rec = ControlRecord(addr, names[nids[idx]], line, line)
                        self.control[addr] = rec
                    rec.end_line = max(rec.end_line, line)
                    rec.total_iterations += aux[idx]
        stats.deps_built += built
        store.raw_occurrences += built

    def _columnar_generic(
        self, klist, addrs, lines, nids, aux, tids, tss, sigs, base,
        names, store, shadow,
    ) -> None:
        """Columnar loop over the shadow *interface* (signature shadows).

        Same memos as the perfect-shadow fast path, but entries stay in
        the shadow's own 4-field layout, so source-side signature columns
        come from the per-id cache instead of the entry.
        """
        stats = self.stats
        last_write = shadow.last_write
        reads_since = shadow.reads_since_write
        record_read = shadow.record_read
        record_write = shadow.record_write
        init_add = store.init_lines.add
        sc = self._sig_cache
        memo = self._dep_memo
        merge = self._merge_dep
        sig_cols = self._sig_columns
        built = 0
        last_ctx = -1
        bcols = None
        idx = -1
        for k, addr, line, nid, tid, ts, ctx in zip(
            klist, addrs, lines, nids, tids, tss, sigs
        ):
            idx += 1
            if k == K_READ:
                lw = last_write(addr)
                if lw is not None:
                    lsig = lw[1]
                    if lsig == ctx:
                        code = 0
                    else:
                        a = sc.get(lsig)
                        if a is None:
                            a = sig_cols(lsig)
                        if ctx != last_ctx:
                            bcols = sc.get(ctx)
                            if bcols is None:
                                bcols = sig_cols(ctx)
                            last_ctx = ctx
                        ra, ia, da = a
                        rb, ib, db = bcols
                        code = 0
                        for d in range(da if da < db else db):
                            r = ra[d]
                            if r != rb[d]:
                                break
                            if ia[d] != ib[d]:
                                code = (r + 1) << 16
                                break
                    mk = (base[idx] | (lw[0] << 30) | code
                          | (lw[2] << 9))
                    dep = memo.get(mk)
                    if dep is None:
                        dep = merge(mk, "RAW", line, lw[0], names[nid],
                                    code, tid, lw[2])
                    dep.count += 1
                    if lw[3] > ts:
                        dep.maybe_race = True
                    built += 1
                record_read(addr, line, ctx, tid, ts)
            elif k == K_WRITE:
                lw = last_write(addr)
                if lw is None:
                    init_add(line)
                else:
                    pending = reads_since(addr)
                    if pending:
                        var = names[nid]
                        mk_base = base[idx] | 1
                        if ctx != last_ctx:
                            bcols = sc.get(ctx)
                            if bcols is None:
                                bcols = sig_cols(ctx)
                            last_ctx = ctx
                        rb, ib, db = bcols
                        for rd in pending:
                            rsig = rd[1]
                            if rsig == ctx:
                                code = 0
                            else:
                                a = sc.get(rsig)
                                if a is None:
                                    a = sig_cols(rsig)
                                ra, ia, da = a
                                code = 0
                                for d in range(da if da < db else db):
                                    r = ra[d]
                                    if r != rb[d]:
                                        break
                                    if ia[d] != ib[d]:
                                        code = (r + 1) << 16
                                        break
                            mk = (mk_base | (rd[0] << 30) | code
                                  | (rd[2] << 9))
                            dep = memo.get(mk)
                            if dep is None:
                                dep = merge(mk, "WAR", line, rd[0], var,
                                            code, tid, rd[2])
                            dep.count += 1
                            if rd[3] > ts:
                                dep.maybe_race = True
                            built += 1
                    else:
                        lsig = lw[1]
                        if lsig == ctx:
                            code = 0
                        else:
                            a = sc.get(lsig)
                            if a is None:
                                a = sig_cols(lsig)
                            if ctx != last_ctx:
                                bcols = sc.get(ctx)
                                if bcols is None:
                                    bcols = sig_cols(ctx)
                                last_ctx = ctx
                            ra, ia, da = a
                            rb, ib, db = bcols
                            code = 0
                            for d in range(da if da < db else db):
                                r = ra[d]
                                if r != rb[d]:
                                    break
                                if ia[d] != ib[d]:
                                    code = (r + 1) << 16
                                    break
                        mk = (base[idx] | (lw[0] << 30) | code
                              | (lw[2] << 9) | 2)
                        dep = memo.get(mk)
                        if dep is None:
                            dep = merge(mk, "WAW", line, lw[0], names[nid],
                                        code, tid, lw[2])
                        dep.count += 1
                        if lw[3] > ts:
                            dep.maybe_race = True
                        built += 1
                record_write(addr, line, ctx, tid, ts)
            elif k == K_FREE:
                if self.lifetime_analysis:
                    shadow.evict(addr, aux[idx])
                    stats.evictions += 1
            elif k == K_BGN:
                if self.track_control:
                    rec = self.control.get(addr)
                    if rec is None:
                        rec = ControlRecord(addr, names[nid], line, line)
                        self.control[addr] = rec
                    rec.executions += 1
            elif k == K_END:
                if self.track_control:
                    rec = self.control.get(addr)
                    if rec is None:
                        rec = ControlRecord(addr, names[nid], line, line)
                        self.control[addr] = rec
                    rec.end_line = max(rec.end_line, line)
                    rec.total_iterations += aux[idx]
        stats.deps_built += built
        store.raw_occurrences += built

    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        return self.shadow.memory_bytes() + self.store.memory_bytes()

    def result(self) -> DependenceStore:
        return self.store


# ---------------------------------------------------------------------------
# convenience drivers
# ---------------------------------------------------------------------------


def profile_events(
    events: Iterable[tuple],
    sig_decoder: Callable[[int], tuple],
    *,
    shadow=None,
    **kwargs,
) -> SerialProfiler:
    """Profile an already-recorded event iterable."""
    profiler = SerialProfiler(shadow, sig_decoder, **kwargs)
    profiler.process_chunk(events)
    return profiler


def profile_source(
    source: str,
    *,
    signature_slots: Optional[int] = None,
    entry: str = "main",
    **vm_kwargs,
):
    """Compile, run, and profile MiniC source online (streaming chunks).

    Returns ``(profiler, vm, return_value)``.  ``signature_slots=None``
    selects the exact PerfectShadow baseline.
    """
    from repro.mir.lowering import compile_source
    from repro.runtime.interpreter import VM

    module = compile_source(source)
    shadow = (
        PerfectShadow()
        if signature_slots is None
        else SignatureShadow(signature_slots)
    )
    profiler = SerialProfiler(shadow)
    vm = VM(module, profiler, **vm_kwargs)
    profiler.sig_decoder = vm.loop_signature
    result = vm.run(entry)
    return profiler, vm, result
