"""Shadow-memory implementations.

Two variants, as in the paper's evaluation:

* :class:`PerfectShadow` — "perfect signature": a table where every address
  has its own entry; no hash collisions, hence no false positives/negatives.
  This is the accuracy baseline of Table 2.6 and the 100 %-accuracy option
  of §2.3.7 (slower, more memory).

* :class:`SignatureShadow` — fixed-size state with a modulo hash (§2.3.2).
  A slot stores the access status of *whichever* addresses hash into it;
  collisions create false dependences instead of growing memory.  State is
  bounded by ``slots`` regardless of how many addresses the program touches.

Per address/slot both store the last write's ``(line, ctx, tid, ts)`` and
the set of reads *since that write* (one entry per distinct source line,
bounded).  The read set is what makes the profiler produce every WAR a
write closes over (Table 2.2 lists ``WAR 3<-1``, ``3<-2`` *and* ``3<-3`` for
the Figure 2.7 loop), and its emptiness is what restricts WAW dependences to
*consecutive* writes, as §2.5.2 states.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: cap on distinct read lines remembered per address/slot between writes
MAX_READS_PER_SLOT = 16


class PerfectShadow:
    """Exact per-address access status (dict-backed)."""

    __slots__ = ("write", "reads")

    #: a perfect signature never aliases two addresses (API parity with
    #: :class:`SignatureShadow`)
    collisions = 0

    def __init__(self) -> None:
        #: addr -> (line, ctx, tid, ts) of the last write
        self.write: dict[int, tuple] = {}
        #: addr -> {line: (line, ctx, tid, ts)} reads since the last write
        self.reads: dict[int, dict[int, tuple]] = {}

    def last_write(self, addr: int) -> Optional[tuple]:
        return self.write.get(addr)

    def reads_since_write(self, addr: int) -> list[tuple]:
        entry = self.reads.get(addr)
        return list(entry.values()) if entry else []

    def record_read(self, addr: int, line: int, ctx: int, tid: int, ts: int) -> None:
        entry = self.reads.get(addr)
        if entry is None:
            self.reads[addr] = {line: (line, ctx, tid, ts)}
        elif len(entry) < MAX_READS_PER_SLOT or line in entry:
            entry[line] = (line, ctx, tid, ts)

    def record_write(self, addr: int, line: int, ctx: int, tid: int, ts: int) -> None:
        self.write[addr] = (line, ctx, tid, ts)
        self.reads.pop(addr, None)

    def evict(self, base: int, size: int) -> None:
        """Variable-lifetime eviction: drop status of a dead block.

        Small blocks (stack frames) walk the range; blocks larger than
        the tracked state (big array lifetimes) filter the dicts in bulk
        instead — eviction cost is then bounded by the *live* set, never
        by the byte size of the freed block.
        """
        write = self.write
        reads = self.reads
        if size > 2 * (len(write) + len(reads)):
            end = base + size
            survivors = {
                addr: entry
                for addr, entry in write.items()
                if not base <= addr < end
            }
            # in-place: callers (the columnar fast path) hold these
            # dicts in locals, so the identity must not change
            write.clear()
            write.update(survivors)
            survivors = {
                addr: entry
                for addr, entry in reads.items()
                if not base <= addr < end
            }
            reads.clear()
            reads.update(survivors)
            return
        for addr in range(base, base + size):
            write.pop(addr, None)
            reads.pop(addr, None)

    def memory_bytes(self) -> int:
        # dict entry ≈ 104 bytes + value tuple ≈ 88
        n_reads = sum(len(e) for e in self.reads.values())
        return 192 * len(self.write) + 192 * max(n_reads, len(self.reads))

    @property
    def n_tracked(self) -> int:
        return len(self.write.keys() | self.reads.keys())


class SignatureShadow:
    """Fixed-size signature with modulo hashing (§2.3.2).

    Matches the paper's design decisions: a single hash function (keeps
    element removal for lifetime analysis simple), fixed-length state so
    "memory consumption can be adjusted as needed", and approximate status
    (colliding addresses share a slot, creating occasional false
    dependences instead of extra memory).
    """

    __slots__ = (
        "slots", "w_line", "w_ctx", "w_tid", "w_ts", "w_addr", "reads",
        "collisions",
    )

    def __init__(self, slots: int) -> None:
        if slots <= 0:
            raise ValueError("signature must have a positive number of slots")
        self.slots = slots
        self.w_line = np.zeros(slots, dtype=np.int64)
        self.w_ctx = np.zeros(slots, dtype=np.int64)
        self.w_tid = np.zeros(slots, dtype=np.int64)
        self.w_ts = np.zeros(slots, dtype=np.int64)
        #: address of the last writer per slot, to observe collisions
        self.w_addr = np.zeros(slots, dtype=np.int64)
        #: slot -> {line: (line, ctx, tid, ts)}; only occupied slots present,
        #: bounded by `slots` entries of <= MAX_READS_PER_SLOT lines
        self.reads: dict[int, dict[int, tuple]] = {}
        #: writes that landed on a slot still owned by a *different*
        #: address — the observable count of Formula 2.2's hash conflicts
        self.collisions = 0

    # line == 0 marks an empty write slot (source lines are 1-based)

    def last_write(self, addr: int) -> Optional[tuple]:
        i = addr % self.slots
        line = self.w_line[i]
        if line == 0:
            return None
        return (int(line), int(self.w_ctx[i]), int(self.w_tid[i]), int(self.w_ts[i]))

    def reads_since_write(self, addr: int) -> list[tuple]:
        entry = self.reads.get(addr % self.slots)
        return list(entry.values()) if entry else []

    def record_read(self, addr: int, line: int, ctx: int, tid: int, ts: int) -> None:
        i = addr % self.slots
        entry = self.reads.get(i)
        if entry is None:
            self.reads[i] = {line: (line, ctx, tid, ts)}
        elif len(entry) < MAX_READS_PER_SLOT or line in entry:
            entry[line] = (line, ctx, tid, ts)

    def record_write(self, addr: int, line: int, ctx: int, tid: int, ts: int) -> None:
        i = addr % self.slots
        if self.w_line[i] != 0 and self.w_addr[i] != addr:
            self.collisions += 1
        self.w_addr[i] = addr
        self.w_line[i] = line
        self.w_ctx[i] = ctx
        self.w_tid[i] = tid
        self.w_ts[i] = ts
        self.reads.pop(i, None)

    def evict(self, base: int, size: int) -> None:
        """Clear the slots of a dead block.  With collisions this may also
        clear status of colliding live addresses — the approximation the
        paper accepts in exchange for bounded memory."""
        slots = self.slots
        if size >= slots:
            self.w_line[:] = 0
            self.reads.clear()
            return
        for addr in range(base, base + size):
            i = addr % slots
            self.w_line[i] = 0
            self.reads.pop(i, None)

    def memory_bytes(self) -> int:
        arrays = (
            self.w_line.nbytes + self.w_ctx.nbytes + self.w_tid.nbytes
            + self.w_ts.nbytes + self.w_addr.nbytes
        )
        n_reads = sum(len(e) for e in self.reads.values())
        return arrays + 192 * max(n_reads, len(self.reads))

    @staticmethod
    def expected_false_positive_rate(slots: int, n_addresses: int) -> float:
        """Formula 2.2: P_fp = 1 - (1 - 1/m)^n."""
        return 1.0 - (1.0 - 1.0 / slots) ** n_addresses
