"""Pluggable profiler backends behind one registry.

The profiler grew a matrix of execution strategies — serial vs. parallel
consumption, perfect vs. signature shadow memory, §2.4 skipping on or off —
that callers previously wired by hand (pick a shadow, wrap a skipping
filter, remember which attribute carries the control records).
:class:`ProfilerBackend` unifies them: a backend is a VM chunk sink with a
``finish()`` that returns one :class:`BackendResult`, and the registry maps
the names exposed by ``DiscoveryConfig.backend`` / ``repro discover
--backend`` onto constructors.

Built-in names:

``serial``
    :class:`~repro.profiler.serial.SerialProfiler`; ``signature_slots``
    selects the shadow, ``skip_loops`` wraps the §2.4 filter.
``signature``
    serial with a :class:`~repro.profiler.shadow.SignatureShadow`
    (``signature_slots`` defaults to :data:`DEFAULT_SIGNATURE_SLOTS`).
``skipping``
    serial with the skipping filter forced on.
``parallel``
    the §2.3.3 producer/consumer profiler (``n_workers`` shards,
    vectorized ``addr % W`` partitioning on columnar chunks).

Register custom backends with :func:`register_backend`::

    @register_backend("tracing")
    def _make(options):
        return MyTracingBackend(**options)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable

from repro.profiler.deps import DependenceStore
from repro.profiler.parallel import ParallelProfiler
from repro.profiler.serial import ControlRecord, SerialProfiler
from repro.profiler.shadow import PerfectShadow, SignatureShadow
from repro.profiler.sharded import ShardedDetector
from repro.profiler.skipping import SkippingProfiler
from repro.profiler.vectorized import VectorizedProfiler

#: signature size used when the ``signature`` backend is selected without
#: an explicit ``signature_slots``
DEFAULT_SIGNATURE_SLOTS = 1 << 16


@dataclass
class BackendResult:
    """What every backend hands back from :meth:`ProfilerBackend.finish`."""

    store: DependenceStore
    control: dict[int, ControlRecord] = field(default_factory=dict)
    stats: dict = field(default_factory=dict)
    #: backend-specific extras (skip stats, parallel report, ...)
    extras: dict = field(default_factory=dict)


@runtime_checkable
class ProfilerBackend(Protocol):
    """A VM chunk sink that can be finished into a :class:`BackendResult`.

    ``sig_decoder`` must be assignable after construction (the VM that
    owns the loop-signature interning is built after the backend).
    """

    name: str

    def __call__(self, chunk) -> None: ...

    def finish(self) -> BackendResult: ...

    def memory_bytes(self) -> int: ...


class SerialBackend:
    """Serial profiling: one consumer, optional signature + skipping.

    ``detect`` selects the detection core: ``"vectorized"`` (the
    segmented-scan core of :mod:`repro.profiler.vectorized`, the
    default), ``"loop"`` (the per-event reference walk), or
    ``"sharded"`` (the multi-process address-sharded core of
    :mod:`repro.profiler.sharded`; ``detect_workers`` worker
    processes, optional ``detect_sampling`` lossy mode).  All exact
    cores build bit-identical stores; the §2.4 skipping filter is an
    inherently per-event state machine, so ``skip_loops`` always runs
    the loop core underneath.
    """

    def __init__(
        self,
        *,
        signature_slots: Optional[int] = None,
        skip_loops: bool = False,
        sig_decoder=None,
        lifetime_analysis: bool = True,
        detect: str = "vectorized",
        detect_workers: int = 4,
        detect_sampling: Optional[float] = None,
        resilience: Optional[dict] = None,
        fault_plan: Optional[dict] = None,
        name: str = "serial",
    ) -> None:
        if detect not in ("loop", "vectorized", "sharded"):
            raise ValueError(
                f"unknown detection core {detect!r} "
                "(expected 'loop', 'vectorized', or 'sharded')"
            )
        if skip_loops:
            detect = "loop"
        self.name = name
        self.detect = detect
        self.detect_workers = detect_workers
        self.detect_sampling = detect_sampling
        if detect == "sharded":
            self.profiler = ShardedDetector(
                signature_slots, sig_decoder,
                n_shards=detect_workers,
                sampling=detect_sampling,
                lifetime_analysis=lifetime_analysis,
                policy=resilience,
                faults=fault_plan,
            )
        elif resilience or fault_plan is not None:
            raise ValueError(
                "resilience / fault_plan options apply to the sharded "
                "detection core only"
            )
        elif detect == "vectorized":
            self.profiler = VectorizedProfiler(
                signature_slots, sig_decoder,
                lifetime_analysis=lifetime_analysis,
            )
        else:
            shadow = (
                PerfectShadow()
                if signature_slots is None
                else SignatureShadow(signature_slots)
            )
            self.profiler = SerialProfiler(
                shadow, sig_decoder, lifetime_analysis=lifetime_analysis
            )
        self.sink = (
            SkippingProfiler(self.profiler) if skip_loops else self.profiler
        )
        self.skip_loops = skip_loops
        self.detect_seconds = 0.0
        self.detect_events = 0
        self._tracer = None
        self._batches = None
        self._batch_events = None

    @property
    def sig_decoder(self):
        return self.profiler.sig_decoder

    @sig_decoder.setter
    def sig_decoder(self, fn) -> None:
        self.sink.sig_decoder = fn

    def attach_obs(self, tracer, metrics) -> None:
        """Adopt the engine's observability bundle (obs on only).

        A sharded profiler inherits both so the detector can span slab
        shipments, absorb worker span buffers, and merge worker metrics.
        """
        if tracer is not None and tracer.enabled:
            self._tracer = tracer
        if metrics is not None:
            self._batches = metrics.counter(
                "detect.batches", "event chunks fed to the detection core"
            )
            self._batch_events = metrics.histogram(
                "detect.batch_events", "events per detection chunk"
            )
        if isinstance(self.profiler, ShardedDetector):
            self.profiler.attach_obs(tracer, metrics)

    def __call__(self, chunk) -> None:
        t0 = time.perf_counter()
        if self._tracer is not None:
            with self._tracer.span(
                "detect.batch", "detect", n_events=len(chunk)
            ):
                self.sink(chunk)
        else:
            self.sink(chunk)
        self.detect_seconds += time.perf_counter() - t0
        self.detect_events += len(chunk)
        if self._batches is not None:
            self._batches.inc()
            self._batch_events.observe(len(chunk))

    def finish(self) -> BackendResult:
        profiler = self.profiler
        if isinstance(profiler, ShardedDetector):
            # joins the workers and merges shard stores + frontiers;
            # billed as detection time (the workers were scanning)
            t0 = time.perf_counter()
            profiler.finalize()
            self.detect_seconds += time.perf_counter() - t0
            collisions = profiler.collisions
        elif isinstance(profiler, VectorizedProfiler):
            t0 = time.perf_counter()
            profiler.flush()
            self.detect_seconds += time.perf_counter() - t0
            collisions = profiler.collisions
        else:
            collisions = profiler.shadow.collisions
        stats = {
            "backend": self.name,
            "detect": self.detect,
            "detect_seconds": self.detect_seconds,
            "detect_events_per_sec": (
                self.detect_events / self.detect_seconds
                if self.detect_seconds > 0
                else 0.0
            ),
            "reads": profiler.stats.reads,
            "writes": profiler.stats.writes,
            "accesses": profiler.stats.accesses,
            "deps": len(profiler.store),
            "raw_occurrences": profiler.store.raw_occurrences,
            "evictions": profiler.stats.evictions,
            "shadow_collisions": collisions,
        }
        if isinstance(profiler, ShardedDetector):
            stats["detect_workers"] = profiler.n_shards
            stats["shipped_events"] = profiler.shipped_events
            if profiler.sampler is not None:
                stats["detect_sampling"] = profiler.sampler.rate
                stats["sampled_events"] = profiler.sampler.kept_events
        extras: dict = {}
        if self.skip_loops:
            extras["skip_stats"] = self.sink.stats
            stats["skipped"] = self.sink.stats.skipped
        return BackendResult(
            store=profiler.store,
            control=profiler.control,
            stats=stats,
            extras=extras,
        )

    def memory_bytes(self) -> int:
        return self.sink.memory_bytes()


class ParallelBackend:
    """Sharded profiling (§2.3.3) behind the unified interface."""

    def __init__(
        self,
        *,
        signature_slots: Optional[int] = None,
        skip_loops: bool = False,
        sig_decoder=None,
        n_workers: int = 8,
        queue_kind: str = "spsc",
        mode: str = "simulated",
        lifetime_analysis: bool = True,
        detect: str = "vectorized",
        name: str = "parallel",
    ) -> None:
        if skip_loops:
            # the skipping filter runs producer-side, before sharding
            raise ValueError(
                "skip_loops is not supported by the parallel backend yet; "
                "wrap the serial backend instead"
            )
        self.name = name
        self.detect = detect
        self.profiler = ParallelProfiler(
            n_workers,
            signature_slots=signature_slots,
            sig_decoder=sig_decoder,
            queue_kind=queue_kind,
            mode=mode,
            lifetime_analysis=lifetime_analysis,
            detect=detect,
        )
        self.detect_seconds = 0.0
        self.detect_events = 0
        self._result: Optional[BackendResult] = None
        self._tracer = None
        self._batches = None
        self._batch_events = None

    @property
    def sig_decoder(self):
        return self.profiler.sig_decoder

    @sig_decoder.setter
    def sig_decoder(self, fn) -> None:
        self.profiler.sig_decoder = fn

    def attach_obs(self, tracer, metrics) -> None:
        if tracer is not None and tracer.enabled:
            self._tracer = tracer
        if metrics is not None:
            self._batches = metrics.counter(
                "detect.batches", "event chunks fed to the detection core"
            )
            self._batch_events = metrics.histogram(
                "detect.batch_events", "events per detection chunk"
            )

    def __call__(self, chunk) -> None:
        t0 = time.perf_counter()
        if self._tracer is not None:
            with self._tracer.span(
                "detect.batch", "detect", n_events=len(chunk)
            ):
                self.profiler.process_chunk(chunk)
        else:
            self.profiler.process_chunk(chunk)
        self.detect_seconds += time.perf_counter() - t0
        self.detect_events += len(chunk)
        if self._batches is not None:
            self._batches.inc()
            self._batch_events.observe(len(chunk))

    def finish(self) -> BackendResult:
        if self._result is None:
            t0 = time.perf_counter()
            store = self.profiler.finish()
            finish_wall = time.perf_counter() - t0
            report = self.profiler.report
            # finish() drains the vectorized workers' staged batches —
            # detection work; only the final map merge is merge time
            self.detect_seconds += max(
                0.0, finish_wall - report.merge_seconds
            )
            reads = sum(w.stats.reads for w in self.profiler.workers)
            writes = sum(w.stats.writes for w in self.profiler.workers)
            self._result = BackendResult(
                store=store,
                control=self.profiler.control,
                stats={
                    "backend": self.name,
                    "detect": self.detect,
                    "detect_seconds": self.detect_seconds,
                    "detect_events_per_sec": (
                        self.detect_events / self.detect_seconds
                        if self.detect_seconds > 0
                        else 0.0
                    ),
                    "reads": reads,
                    "writes": writes,
                    "accesses": reads + writes,
                    "deps": len(store),
                    "raw_occurrences": store.raw_occurrences,
                    "n_workers": report.n_workers,
                    "load_imbalance": report.load_imbalance,
                    "shadow_collisions": sum(
                        w.collisions
                        if isinstance(w, VectorizedProfiler)
                        else w.shadow.collisions
                        for w in self.profiler.workers
                    ),
                },
                extras={"report": report},
            )
        return self._result

    def memory_bytes(self) -> int:
        return self.profiler.memory_bytes()


#: backend name -> factory(options dict) -> ProfilerBackend
BACKENDS: dict[str, Callable[..., ProfilerBackend]] = {}


def register_backend(name: str):
    """Decorator registering a backend factory under ``name``."""

    def register(factory: Callable[..., ProfilerBackend]):
        BACKENDS[name] = factory
        return factory

    return register


@register_backend("serial")
def _serial(**options) -> SerialBackend:
    return SerialBackend(name="serial", **options)


@register_backend("signature")
def _signature(**options) -> SerialBackend:
    options.setdefault("signature_slots", DEFAULT_SIGNATURE_SLOTS)
    return SerialBackend(name="signature", **options)


@register_backend("skipping")
def _skipping(**options) -> SerialBackend:
    options["skip_loops"] = True
    return SerialBackend(name="skipping", **options)


@register_backend("parallel")
def _parallel(**options) -> ParallelBackend:
    return ParallelBackend(name="parallel", **options)


def make_backend(name: str, **options) -> ProfilerBackend:
    """Instantiate a registered backend.

    Unknown options are rejected by the backend constructor, keeping
    config typos loud.
    """
    factory = BACKENDS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown profiler backend {name!r} "
            f"(registered: {', '.join(sorted(BACKENDS))})"
        )
    return factory(**options)
