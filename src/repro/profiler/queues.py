"""Queue implementations for the parallel profiling pipeline (§2.3.3).

Three variants mirror the paper's design space:

* :class:`LockedQueue` — the baseline: a deque guarded by a mutex on both
  ends (the "lock-based" profiler of Fig. 2.9).
* :class:`SPSCQueue` — single-producer single-consumer ring buffer.  The
  paper's lock-free design narrows synchronisation to release/acquire pairs
  on head/tail indices; under CPython the GIL provides exactly that
  visibility for int stores, so the structure is a faithful analogue: no
  mutex is ever taken, producer touches only ``tail``, consumer only
  ``head``.
* :class:`MPSCQueue` — multiple-producer single-consumer linked list of
  fixed arrays (Fig. 2.5): producers claim array indices with an atomic
  fetch-and-add (``itertools.count``, which is GIL-atomic in CPython, plays
  the hardware fetch-and-add) and a new node is appended when one fills up.

All queues carry *chunks* (lists of events), not single events.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Optional

#: sentinel that tells a consumer the stream is complete
DONE = object()


def _item_bytes(item: Any) -> int:
    """Best-effort resident size of one queued chunk."""
    if item is None or item is DONE:
        return 0
    nbytes = getattr(item, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    try:
        return 64 * len(item)  # legacy tuple chunks: ~64 bytes/event
    except TypeError:
        return 64


class LockedQueue:
    """Mutex-guarded FIFO — the lock-based baseline."""

    def __init__(self, capacity: int = 1 << 16) -> None:
        self._items: deque = deque()
        self._lock = threading.Lock()
        self.capacity = capacity
        self.pushes = 0
        self.pops = 0

    def push(self, item: Any) -> None:
        while True:
            with self._lock:
                if len(self._items) < self.capacity:
                    self._items.append(item)
                    self.pushes += 1
                    return
            time.sleep(0)

    def pop(self, block: bool = True) -> Any:
        while True:
            with self._lock:
                if self._items:
                    self.pops += 1
                    return self._items.popleft()
            if not block:
                return None
            time.sleep(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def pending_nbytes(self) -> int:
        """Resident bytes of the queued-but-unconsumed chunks."""
        with self._lock:
            return sum(_item_bytes(item) for item in self._items)


class SPSCQueue:
    """Lock-free-style single-producer single-consumer ring buffer.

    Producer writes ``_buf[tail]`` then publishes by advancing ``_tail``;
    consumer reads ``_buf[head]`` then advances ``_head``.  As long as
    ``tail != head`` there is at least one element to dequeue — the
    invariant §2.3.3 relies on.
    """

    def __init__(self, capacity: int = 4096) -> None:
        # one slot is sacrificed to distinguish full from empty
        self._cap = capacity + 1
        self._buf: list = [None] * self._cap
        self._head = 0  # consumer index
        self._tail = 0  # producer index
        self.pushes = 0
        self.pops = 0

    def push(self, item: Any) -> None:
        cap = self._cap
        nxt = (self._tail + 1) % cap
        while nxt == self._head:  # full: spin (backpressure)
            time.sleep(0)
        self._buf[self._tail] = item
        self._tail = nxt  # publish
        self.pushes += 1

    def try_push(self, item: Any) -> bool:
        cap = self._cap
        nxt = (self._tail + 1) % cap
        if nxt == self._head:
            return False
        self._buf[self._tail] = item
        self._tail = nxt
        self.pushes += 1
        return True

    def pop(self, block: bool = True) -> Any:
        cap = self._cap
        while self._head == self._tail:  # empty
            if not block:
                return None
            time.sleep(0)
        item = self._buf[self._head]
        self._buf[self._head] = None
        self._head = (self._head + 1) % cap
        self.pops += 1
        return item

    def __len__(self) -> int:
        return (self._tail - self._head) % self._cap

    def pending_nbytes(self) -> int:
        """Resident bytes of the queued-but-unconsumed chunks.

        Best-effort snapshot: head/tail are read once; a concurrent
        consumer can only shrink the window, never corrupt it.
        """
        head, tail, cap = self._head, self._tail, self._cap
        total = 0
        while head != tail:
            total += _item_bytes(self._buf[head])
            head = (head + 1) % cap
        return total


class _MPSCNode:
    __slots__ = ("array", "claimed", "filled", "next")

    def __init__(self, size: int) -> None:
        self.array: list = [None] * size
        #: per-slot published flag (producers fill out of order)
        self.filled: list = [False] * size
        self.claimed = itertools.count()  # atomic fetch-and-add
        self.next: Optional[_MPSCNode] = None


class MPSCQueue:
    """Multiple-producer single-consumer queue: linked list of arrays.

    Producers ``fetch_and_add`` an index into the tail node's array; the
    producer that claims the last index appends a fresh node.  The single
    consumer walks nodes in order, waiting for each slot's published flag.
    """

    def __init__(self, node_size: int = 256) -> None:
        self.node_size = node_size
        self._head = _MPSCNode(node_size)
        self._tail = self._head
        self._head_pos = 0
        self._tail_lock = threading.Lock()  # only for node append, rare
        self.pushes = 0
        self.pops = 0

    def push(self, item: Any) -> None:
        while True:
            node = self._tail
            idx = next(node.claimed)  # atomic under the GIL
            if idx < self.node_size:
                node.array[idx] = item
                node.filled[idx] = True  # publish
                self.pushes += 1
                return
            # node exhausted: one producer appends the next node
            with self._tail_lock:
                if self._tail is node:
                    new = _MPSCNode(self.node_size)
                    node.next = new
                    self._tail = new
            # retry on the new tail

    def pop(self, block: bool = True) -> Any:
        while True:
            node = self._head
            pos = self._head_pos
            if pos >= self.node_size:
                if node.next is None:
                    if not block:
                        return None
                    time.sleep(0)
                    continue
                self._head = node.next
                self._head_pos = 0
                continue
            if node.filled[pos]:
                item = node.array[pos]
                node.array[pos] = None
                self._head_pos = pos + 1
                self.pops += 1
                return item
            # slot not yet published (or nothing pushed yet)
            if not block:
                return None
            time.sleep(0)

    def __len__(self) -> int:  # approximate
        return max(0, self.pushes - self.pops)

    def pending_nbytes(self) -> int:
        """Resident bytes of the queued-but-unconsumed chunks (snapshot)."""
        total = 0
        node, pos = self._head, self._head_pos
        while node is not None:
            for i in range(pos, self.node_size):
                if node.filled[i]:
                    total += _item_bytes(node.array[i])
            node, pos = node.next, 0
        return total


def make_queue(kind: str, capacity: int = 4096):
    """Factory: ``kind`` in {'locked', 'spsc', 'mpsc'}."""
    if kind == "locked":
        return LockedQueue(capacity)
    if kind == "spsc":
        return SPSCQueue(capacity)
    if kind == "mpsc":
        return MPSCQueue(min(capacity, 1024))
    raise ValueError(f"unknown queue kind {kind!r}")
