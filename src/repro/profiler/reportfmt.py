"""The profiler's text report format (Fig. 2.1 / Fig. 2.3).

One line per sink, aggregated::

    1:60 BGN loop
    1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}
    1:74 END loop 1200

``NOM`` marks ordinary source lines; ``BGN``/``END`` delimit control
regions, with the executed iteration count after ``END loop``.  For
multi-threaded programs sinks/sources carry thread ids
(``4:58|2 NOM {WAR 4:77|2|iter}``); we emit file id 1 throughout (one
translation unit per run).
"""

from __future__ import annotations

import re
from typing import Iterable, Optional

from repro.profiler.deps import Dependence, DependenceStore
from repro.profiler.serial import ControlRecord


def format_report(
    store: DependenceStore,
    control: Optional[dict[int, ControlRecord]] = None,
    *,
    with_tid: bool = False,
    file_id: int = 1,
) -> str:
    """Render a dependence store (+ control records) to report text."""
    begin_lines: dict[int, list[ControlRecord]] = {}
    end_lines: dict[int, list[ControlRecord]] = {}
    if control:
        for rec in control.values():
            if rec.kind == "func":
                continue
            begin_lines.setdefault(rec.start_line, []).append(rec)
            end_lines.setdefault(rec.end_line, []).append(rec)

    by_sink: dict[tuple, list[Dependence]] = {}
    for dep in store.all():
        sink_key = (dep.sink_line, dep.sink_tid if with_tid else 0)
        by_sink.setdefault(sink_key, []).append(dep)
    init_only = {
        (line, 0) for line in store.init_lines
    } - set(by_sink.keys())
    all_lines = sorted(
        set(by_sink.keys())
        | init_only
        | {(l, 0) for l in begin_lines}
        | {(l, 0) for l in end_lines}
    )

    out: list[str] = []
    for line, tid in all_lines:
        for rec in begin_lines.get(line, []) if tid == 0 else []:
            out.append(f"{file_id}:{line} BGN {rec.kind}")
        deps = by_sink.get((line, tid), [])
        entries = [d.format(with_tid=with_tid) for d in deps]
        if line in store.init_lines:
            entries.append("{INIT *}")
        if entries:
            sink = f"{file_id}:{line}|{tid}" if with_tid else f"{file_id}:{line}"
            out.append(f"{sink} NOM " + " ".join(entries))
        for rec in end_lines.get(line, []) if tid == 0 else []:
            suffix = f" {rec.total_iterations}" if rec.kind == "loop" else ""
            out.append(f"{file_id}:{line} END {rec.kind}{suffix}")
    return "\n".join(out) + ("\n" if out else "")


_DEP_RE = re.compile(
    r"\{(RAW|WAR|WAW) (\d+):(\d+)(?:\|(\d+))?\|([A-Za-z_][A-Za-z_0-9]*)\}"
)
_INIT_RE = re.compile(r"\{INIT \*\}")
_SINK_RE = re.compile(r"^(\d+):(\d+)(?:\|(\d+))? NOM")
_BGN_RE = re.compile(r"^(\d+):(\d+) BGN (\w+)")
_END_RE = re.compile(r"^(\d+):(\d+) END (\w+)(?: (\d+))?")


def parse_report(text: str) -> tuple[DependenceStore, dict[int, ControlRecord]]:
    """Parse report text back into a store + control records.

    Inverse of :func:`format_report` up to merge counts (counts become 1)
    and loop-carried flags (not serialised in the paper's format).
    """
    store = DependenceStore()
    control: dict[int, ControlRecord] = {}
    next_region = 1
    open_regions: list[ControlRecord] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        m = _BGN_RE.match(line)
        if m:
            rec = ControlRecord(next_region, m.group(3), int(m.group(2)),
                                int(m.group(2)))
            rec.executions = 1
            control[next_region] = rec
            open_regions.append(rec)
            next_region += 1
            continue
        m = _END_RE.match(line)
        if m:
            if open_regions:
                rec = open_regions.pop()
                rec.end_line = int(m.group(2))
                if m.group(4):
                    rec.total_iterations = int(m.group(4))
            continue
        m = _SINK_RE.match(line)
        if not m:
            continue
        sink_line = int(m.group(2))
        sink_tid = int(m.group(3)) if m.group(3) else 0
        for dep_m in _DEP_RE.finditer(line):
            dep_type, _file, src_line, src_tid, var = dep_m.groups()
            store.add(
                sink_line,
                dep_type,
                int(src_line),
                var,
                sink_tid=sink_tid,
                source_tid=int(src_tid) if src_tid else 0,
            )
        if _INIT_RE.search(line):
            store.add_init(sink_line)
    return store, control
