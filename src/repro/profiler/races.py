"""Modeling the access-vs-push reordering of multi-threaded targets (§2.3.4).

In the real system, a thread's memory access and the ``push_read`` /
``push_write`` call that reports it are separate instructions; unless both
sit in the same lock region, the scheduler may interleave another thread's
access between them, so the profiler can receive accesses *out of order*
(Fig. 2.4b) — detectable as a timestamp inversion, which both marks the
dependence and exposes a potential data race.

Our VM emits events atomically with the access, so the hazard cannot arise
naturally.  :class:`DeferredSink` reintroduces it faithfully: every thread's
events are held in a per-thread buffer and released a bounded number of that
thread's *own* subsequent events later — **except** while the thread holds a
lock, in which case its events are released exactly at ``unlock``
(mirroring Fig. 2.4c, where the push is inside the lock region).  Cross-
thread order is therefore scrambled for unprotected accesses only, exactly
the paper's model.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.runtime.events import (
    EV_LOCK,
    EV_READ,
    EV_UNLOCK,
    EV_WRITE,
    EventChunk,
)


class DeferredSink:
    """Chunk-sink adapter adding bounded per-thread delivery delay."""

    def __init__(
        self,
        inner: Callable[[list], None],
        *,
        window: int = 4,
        seed: int = 7,
        chunk_size: int = 4096,
    ) -> None:
        self.inner = inner
        self.window = window
        self.rng = random.Random(seed)
        self.chunk_size = chunk_size
        #: per-thread pending events with their release deadline
        self._pending: dict[int, list[tuple[int, tuple]]] = {}
        #: per-thread count of events seen (the release clock)
        self._seen: dict[int, int] = {}
        #: per-thread held-lock depth
        self._locks: dict[int, int] = {}
        self._out: list = []

    def __call__(self, chunk) -> None:
        # packed chunks scramble per event too — iterate the legacy view
        if isinstance(chunk, EventChunk):
            chunk = chunk.to_tuples()
        for ev in chunk:
            self._feed(ev)
        self._drain_ready()

    def _feed(self, ev: tuple) -> None:
        kind = ev[0]
        if kind == EV_READ or kind == EV_WRITE:
            tid = ev[5]
        elif kind in (EV_LOCK, EV_UNLOCK):
            tid = ev[2]
        else:
            tid = None

        if tid is None:
            self._out.append(ev)
            return

        seen = self._seen.get(tid, 0) + 1
        self._seen[tid] = seen
        pending = self._pending.setdefault(tid, [])

        if kind == EV_LOCK:
            self._locks[tid] = self._locks.get(tid, 0) + 1
            pending.append((seen, ev))
            return
        if kind == EV_UNLOCK:
            self._locks[tid] = max(0, self._locks.get(tid, 0) - 1)
            pending.append((seen, ev))
            if self._locks[tid] == 0:
                # release the whole lock region atomically (Fig. 2.4c)
                self._out.extend(e for _, e in pending)
                pending.clear()
            return

        if self._locks.get(tid, 0) > 0:
            pending.append((seen, ev))  # held until unlock
        else:
            delay = self.rng.randint(0, self.window)
            pending.append((seen + delay, ev))
        # release matured events in order
        while pending and pending[0][0] <= seen and self._locks.get(tid, 0) == 0:
            self._out.append(pending.pop(0)[1])

    def _drain_ready(self) -> None:
        if len(self._out) >= self.chunk_size:
            self.inner(self._out)
            self._out = []

    def finish(self) -> None:
        """Flush all pending events (end of program)."""
        for tid, pending in self._pending.items():
            self._out.extend(e for _, e in pending)
            pending.clear()
        if self._out:
            self.inner(self._out)
            self._out = []
