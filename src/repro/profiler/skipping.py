"""Skipping repeatedly-executed memory operations in loops (§2.4).

Every static memory operation ``op`` keeps three state variables —
``lastAddr``, ``lastStatusRead``, ``lastStatusWrite``.  A dynamic memory
instruction translated from ``op`` may be *skipped* (no dependence storage
is touched) when both necessary conditions hold:

* condition on ``addr``  (§2.4.1):  ``addr == lastAddr[op]``
* condition on ``accessInfo`` (§2.4.2): the address's current access status
  (the memory operations of the last read and the last write that touched
  it) equals the status recorded when ``op`` was last profiled.

Together they are sufficient: the operation was profiled before, on the
same address, and the address's status has not changed since — re-profiling
would only rebuild dependences that runtime merging collapses anyway.

The *special case* at the end of §2.4.3 — ``currentWrite == statusWrite ==
lastStatusWrite`` (and symmetrically for reads) — allows skipping without
even updating the status shadow; it is counted separately and can be
disabled for the ablation bench.

Statistics reproduce Table 2.7 (how many instructions that lead to a
dependence were skipped, split by read/write) and Fig. 2.13 (distribution
of skipped instructions by the dependence type they would have created).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.profiler.serial import SerialProfiler
from repro.runtime.events import EV_FREE, EV_READ, EV_WRITE, EventChunk


@dataclass
class SkipStats:
    """Counters for Table 2.7 / Fig. 2.13."""

    reads_leading_to_dep: int = 0
    writes_leading_to_dep: int = 0
    reads_skipped: int = 0
    writes_skipped: int = 0
    #: skipped instructions by the dependence type they would create
    raw_skips: int = 0
    war_skips: int = 0
    waw_skips: int = 0
    #: §2.4.3 special case: skipped without a status update
    pure_skips: int = 0
    processed: int = 0
    skipped: int = 0

    @property
    def read_skip_percent(self) -> float:
        if not self.reads_leading_to_dep:
            return 0.0
        return 100.0 * self.reads_skipped / self.reads_leading_to_dep

    @property
    def write_skip_percent(self) -> float:
        if not self.writes_leading_to_dep:
            return 0.0
        return 100.0 * self.writes_skipped / self.writes_leading_to_dep

    @property
    def total_skip_percent(self) -> float:
        total = self.reads_leading_to_dep + self.writes_leading_to_dep
        if not total:
            return 0.0
        return 100.0 * (self.reads_skipped + self.writes_skipped) / total

    def skip_distribution(self) -> dict[str, float]:
        """Fig. 2.13: percentage of skipped instructions per dep type."""
        total = self.raw_skips + self.war_skips + self.waw_skips
        if not total:
            return {"RAW": 0.0, "WAR": 0.0, "WAW": 0.0}
        return {
            "RAW": 100.0 * self.raw_skips / total,
            "WAR": 100.0 * self.war_skips / total,
            "WAW": 100.0 * self.waw_skips / total,
        }


class SkippingProfiler:
    """Wraps a :class:`SerialProfiler`, filtering skippable instructions.

    Acts as a VM chunk sink.  Non-memory events pass straight through (the
    inner profiler still performs lifetime analysis and control tracking).
    """

    def __init__(
        self,
        inner: Optional[SerialProfiler] = None,
        *,
        enable_special_case: bool = True,
    ) -> None:
        self.inner = inner if inner is not None else SerialProfiler()
        self.enable_special_case = enable_special_case
        self.stats = SkipStats()
        #: op_id -> last address profiled
        self._last_addr: dict[int, int] = {}
        #: op_id -> (statusRead, statusWrite) observed at last profile time
        self._last_status: dict[int, tuple] = {}
        #: addr -> [statusRead_op, statusWrite_op, read_since_write_flag]
        #: (-1 = never accessed; op ids are >= 0)
        self._status: dict[int, list] = {}

    # proxy conveniences -------------------------------------------------

    @property
    def store(self):
        return self.inner.store

    @property
    def sig_decoder(self):
        return self.inner.sig_decoder

    @sig_decoder.setter
    def sig_decoder(self, fn) -> None:
        self.inner.sig_decoder = fn

    @property
    def control(self):
        return self.inner.control

    # ------------------------------------------------------------------

    def __call__(self, chunk) -> None:
        self.process_chunk(chunk)

    def process_chunk(self, chunk) -> None:
        # The skipping filter is inherently per-event (its state machine
        # keys on single instructions), so packed chunks are consumed
        # through the legacy tuple view; the surviving events forward to
        # the inner profiler as tuple chunks either way.
        if isinstance(chunk, EventChunk):
            chunk = chunk.to_tuples()
        forward: list = []
        stats = self.stats
        status_map = self._status
        last_addr = self._last_addr
        last_status = self._last_status
        special = self.enable_special_case
        # On a skip, the dependence storage is not touched but the shadow
        # memory IS still updated "for ensuring the consistency between the
        # instruction stream and the access status" (§2.4.3).  Shadow
        # updates must stay in program order relative to profiled events,
        # so the forward buffer is flushed before any direct shadow access.
        shadow = self.inner.shadow
        inner_process = self.inner.process_chunk
        decode = self.inner.sig_decoder
        from repro.profiler.serial import classify_carrier

        for ev in chunk:
            kind = ev[0]
            if kind == EV_READ:
                addr = ev[1]
                op = ev[4]
                entry = status_map.get(addr)
                if entry is None:
                    entry = [-1, -1, False]
                    status_map[addr] = entry
                leads_to_dep = entry[1] != -1  # a write exists -> RAW
                if leads_to_dep:
                    stats.reads_leading_to_dep += 1
                # The RAW a read would build is (line, lw.line, carried?):
                # the carried bit is part of the status, or a skipped
                # occurrence could hide a flag variant never built before.
                # Computed only when the cheap address condition holds.
                if last_addr.get(op) == addr:
                    if forward:
                        inner_process(forward)
                        forward = []
                    lw = shadow.last_write(addr)
                    if lw is None:
                        carried_bit = False
                    elif lw[1] == ev[7]:
                        carried_bit = False  # identical loop context
                    else:
                        carried_bit = classify_carrier(
                            decode(lw[1]), decode(ev[7])
                        ) is not None
                    status = (entry[0], entry[1], carried_bit)
                    if last_status.get(op) == status:
                        stats.skipped += 1
                        if leads_to_dep:
                            stats.reads_skipped += 1
                            stats.raw_skips += 1
                        if special and entry[0] == op:
                            # §2.4.3 special case: the op-status cannot
                            # change.  (Our dependence shadow keeps a read
                            # *set* that writes clear, so unlike the paper's
                            # single-value status it is still refreshed.)
                            stats.pure_skips += 1
                        else:
                            entry[0] = op
                        shadow.record_read(addr, ev[2], ev[7], ev[5], ev[6])
                        entry[2] = True
                        continue
                    stats.processed += 1
                    last_addr[op] = addr
                    last_status[op] = status
                    entry[0] = op
                    entry[2] = True
                    forward.append(ev)
                else:
                    stats.processed += 1
                    last_addr[op] = addr
                    last_status[op] = None  # force status rebuild next time
                    entry[0] = op
                    entry[2] = True
                    forward.append(ev)
            elif kind == EV_WRITE:
                addr = ev[1]
                op = ev[4]
                entry = status_map.get(addr)
                if entry is None:
                    entry = [-1, -1, False]
                    status_map[addr] = entry
                # dependence the write would create: WAR when reads happened
                # since the last write, else WAW when a write exists
                if entry[2] and entry[0] != -1:
                    would = "WAR"
                elif entry[1] != -1:
                    would = "WAW"
                else:
                    would = None
                if would is not None:
                    stats.writes_leading_to_dep += 1
                # For writes the status must determine the full would-be
                # dependence set: which WAR sources (read lines + carried
                # bits) it would close, or the WAW carried bit.  This
                # extends the paper's two-value status — our records are
                # richer (read sets, per-occurrence carried flags), so two
                # fields alone are not a sufficient skip condition.
                if last_addr.get(op) == addr:
                    if forward:
                        inner_process(forward)
                        forward = []
                    snk_sig = None
                    pending = shadow.reads_since_write(addr)
                    if pending:
                        parts = []
                        for rd in pending:
                            if rd[1] == ev[7]:
                                parts.append((rd[0], False))
                            else:
                                if snk_sig is None:
                                    snk_sig = decode(ev[7])
                                parts.append(
                                    (rd[0],
                                     classify_carrier(decode(rd[1]), snk_sig)
                                     is not None)
                                )
                        would_set = frozenset(parts)
                    else:
                        lw = shadow.last_write(addr)
                        if lw is None:
                            would_set = None
                        elif lw[1] == ev[7]:
                            would_set = (lw[0], False)
                        else:
                            would_set = (
                                lw[0],
                                classify_carrier(decode(lw[1]),
                                                 decode(ev[7])) is not None,
                            )
                    status = (entry[0], entry[1], entry[2], would_set)
                    if last_status.get(op) == status:
                        stats.skipped += 1
                        if would == "WAR":
                            stats.writes_skipped += 1
                            stats.war_skips += 1
                        elif would == "WAW":
                            stats.writes_skipped += 1
                            stats.waw_skips += 1
                        if special and entry[1] == op:
                            stats.pure_skips += 1
                        else:
                            entry[1] = op
                        shadow.record_write(addr, ev[2], ev[7], ev[5], ev[6])
                        entry[2] = False
                        continue
                    stats.processed += 1
                    last_addr[op] = addr
                    last_status[op] = status
                    entry[1] = op
                    entry[2] = False
                    forward.append(ev)
                else:
                    stats.processed += 1
                    last_addr[op] = addr
                    last_status[op] = None
                    entry[1] = op
                    entry[2] = False
                    forward.append(ev)
            else:
                if kind == EV_FREE:
                    base, size = ev[1], ev[2]
                    if size > 2 * len(status_map):
                        end = base + size
                        status_map = self._status = {
                            addr: entry
                            for addr, entry in status_map.items()
                            if not base <= addr < end
                        }
                    else:
                        for dead in range(base, base + size):
                            status_map.pop(dead, None)
                forward.append(ev)
        if forward:
            inner_process(forward)

    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Inner profiler + the skipping state (§2.4: one word lastAddr +
        two words lastStatus per op, plus the op-status shadow)."""
        per_op = 16
        return (
            self.inner.memory_bytes()
            + per_op * len(self._last_addr)
            + 120 * len(self._status)
        )
