"""The parallel data-dependence profiler (§2.3.3).

Architecture (Fig. 2.2): the producer — the thread executing the target
program — collects memory accesses in chunks and pushes each chunk to the
queue of the worker that owns its addresses; workers consume chunks, run the
serial profiling algorithm on their address shard, and store dependences in
thread-local maps that are merged at the end.

* Sharding: ``worker = addr % W`` (Formula 2.1), overridden for hot
  addresses by the redistribution map (higher priority than the modulo
  function, as in the paper).
* Load balancing: per-address access counts are kept; every
  ``redistribute_every`` chunks the top-ten hottest addresses are spread
  evenly over workers, moving their signature state along.
* Queues: lock-free-style SPSC by default, mutex-based as the Fig. 2.9
  "lock-based" baseline, MPSC (Fig. 2.5) for multi-producer setups.

Two execution modes:

* ``threaded`` — real Python worker threads consuming from the queues.
  Faithful architecture, measurable wall clock; CPython's GIL serialises
  the pure-Python workers, so wall-clock *speedup* is not reproducible on
  this substrate (documented substitution in DESIGN.md).
* ``simulated`` — deterministic in-line execution that tallies per-worker
  work units; :func:`modeled_times` turns the tallies plus calibrated
  per-event costs into the pipeline-model wall times the performance
  figures report (producer/consumer overlap: wall = max(producer, slowest
  worker) + merge).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.profiler.deps import DependenceStore
from repro.profiler.queues import DONE, make_queue
from repro.profiler.serial import ControlRecord, SerialProfiler
from repro.profiler.shadow import PerfectShadow, SignatureShadow
from repro.profiler.vectorized import (
    DEFAULT_BATCH_EVENTS,
    VectorizedProfiler,
)
from repro.runtime.events import (
    COL_ADDR,
    COL_AUX,
    COL_KIND,
    COL_LINE,
    COL_NAME,
    EV_BGN,
    EV_END,
    EV_FREE,
    EV_READ,
    EV_WRITE,
    EventChunk,
    K_BGN,
    K_END,
    K_FREE,
    K_WRITE,
)


@dataclass
class ParallelReport:
    """Execution report of one parallel profiling run."""

    n_workers: int
    queue_kind: str
    produced_events: int = 0
    produced_chunks: int = 0
    work_units: list[int] = field(default_factory=list)
    redistributions: int = 0
    merge_seconds: float = 0.0
    wall_seconds: float = 0.0
    memory_bytes: int = 0

    @property
    def max_worker_load(self) -> int:
        return max(self.work_units) if self.work_units else 0

    @property
    def load_imbalance(self) -> float:
        """max/mean worker load — 1.0 is perfectly balanced."""
        if not self.work_units or sum(self.work_units) == 0:
            return 1.0
        mean = sum(self.work_units) / len(self.work_units)
        return max(self.work_units) / mean if mean else 1.0


class ParallelProfiler:
    """Producer/consumer profiler; acts as a VM chunk sink."""

    def __init__(
        self,
        n_workers: int = 8,
        *,
        signature_slots: Optional[int] = None,
        sig_decoder: Optional[Callable[[int], tuple]] = None,
        queue_kind: str = "spsc",
        mode: str = "simulated",
        redistribute_every: int = 50_000,
        queue_capacity: int = 1 << 12,
        lifetime_analysis: bool = True,
        detect: str = "vectorized",
    ) -> None:
        if n_workers <= 0:
            raise ValueError("need at least one worker")
        if mode not in ("simulated", "threaded"):
            raise ValueError(f"unknown mode {mode!r}")
        if detect not in ("loop", "vectorized"):
            raise ValueError(
                f"unknown detection core {detect!r} "
                "(expected 'loop' or 'vectorized')"
            )
        self.n_workers = n_workers
        self.mode = mode
        self.queue_kind = queue_kind
        self.detect = detect
        self.redistribute_every = redistribute_every
        self._sig_decoder = sig_decoder or (lambda s: ())

        def _shadow():
            if signature_slots is None:
                return PerfectShadow()
            return SignatureShadow(signature_slots)

        def _worker():
            if detect == "vectorized":
                return VectorizedProfiler(
                    signature_slots,
                    self._sig_decoder,
                    lifetime_analysis=lifetime_analysis,
                    track_control=False,
                    # threaded mode: the producer must never flush a
                    # worker's staged batches while its thread consumes
                    # (rebalance state moves), so workers detect each
                    # shard immediately instead of batching
                    batch_events=(
                        DEFAULT_BATCH_EVENTS if mode == "simulated" else 0
                    ),
                )
            return SerialProfiler(
                _shadow(),
                self._sig_decoder,
                lifetime_analysis=lifetime_analysis,
                track_control=False,
            )

        self.workers = [_worker() for _ in range(n_workers)]
        self.report = ParallelReport(n_workers, queue_kind,
                                     work_units=[0] * n_workers)
        self.control: dict[int, ControlRecord] = {}

        self._override: dict[int, int] = {}
        self._access_counts: dict[int, int] = {}
        self._chunks_since_rebalance = 0
        self._started = time.perf_counter()

        self._queues = None
        self._threads: list[threading.Thread] = []
        if mode == "threaded":
            self._queues = [
                make_queue(queue_kind, queue_capacity) for _ in range(n_workers)
            ]
            for w in range(n_workers):
                thread = threading.Thread(
                    target=self._worker_loop, args=(w,), daemon=True
                )
                thread.start()
                self._threads.append(thread)

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    @property
    def sig_decoder(self):
        return self._sig_decoder

    @sig_decoder.setter
    def sig_decoder(self, fn) -> None:
        self._sig_decoder = fn
        for worker in self.workers:
            worker.sig_decoder = fn

    def __call__(self, chunk) -> None:
        self.process_chunk(chunk)

    def process_chunk(self, chunk) -> None:
        if isinstance(chunk, EventChunk):
            self._process_columnar(chunk)
        else:
            self._process_tuples(chunk)

    def _process_columnar(self, chunk: EventChunk) -> None:
        """Vectorized sharding of a packed chunk (Formula 2.1 on a column).

        ``addr % W`` runs over the whole address column at once; the
        redistribution overrides — a handful of hot addresses — are then
        patched in with one boolean mask each.  Each worker receives its
        shard as a sub-:class:`EventChunk` (order preserved, string table
        shared), with the chunk's FREE events appended to every non-empty
        shard exactly like the tuple path broadcasts them.  Workers then
        profile their shards through the columnar fast path.
        """
        rows = chunk.rows
        n_workers = self.n_workers
        kinds = rows[:, COL_KIND]
        mem_mask = kinds <= K_WRITE
        mem = rows[mem_mask]
        n_mem = mem.shape[0]
        free_rows = None
        other_mask_any = n_mem != rows.shape[0]
        if other_mask_any:
            free_rows = rows[kinds == K_FREE]
            if free_rows.shape[0] == 0:
                free_rows = None
            # control records (BGN/END aggregate in the producer)
            ctrl_idx = np.nonzero((kinds == K_BGN) | (kinds == K_END))[0]
            if ctrl_idx.shape[0]:
                names = chunk.strings.values
                for row in rows[ctrl_idx].tolist():
                    rec = self.control.get(row[COL_ADDR])
                    if rec is None:
                        rec = ControlRecord(
                            row[COL_ADDR], names[row[COL_NAME]],
                            row[COL_LINE], row[COL_LINE],
                        )
                        self.control[row[COL_ADDR]] = rec
                    if row[COL_KIND] == K_BGN:
                        rec.executions += 1
                    else:
                        rec.end_line = max(rec.end_line, row[COL_LINE])
                        rec.total_iterations += row[COL_AUX]
        workers = None
        if n_mem:
            addrs = mem[:, COL_ADDR]
            workers = addrs % n_workers
            for addr, worker in self._override.items():
                workers[addrs == addr] = worker
            # per-address access counts for the load balancer, vectorized
            uniq, counts = np.unique(addrs, return_counts=True)
            access_counts = self._access_counts
            for addr, count in zip(uniq.tolist(), counts.tolist()):
                access_counts[addr] = access_counts.get(addr, 0) + count
            self.report.produced_events += n_mem
        if n_mem or free_rows is not None:
            strings = chunk.strings
            for w in range(n_workers):
                shard = mem[workers == w] if n_mem else mem
                if free_rows is not None:
                    if shard.shape[0]:
                        shard = np.concatenate((shard, free_rows))
                    else:
                        shard = free_rows
                if shard.shape[0]:
                    self._dispatch(w, EventChunk(shard, strings))
        self.report.produced_chunks += 1
        self._chunks_since_rebalance += 1
        if self._chunks_since_rebalance >= self.redistribute_every:
            self._rebalance()
            self._chunks_since_rebalance = 0

    def _process_tuples(self, chunk: list) -> None:
        n_workers = self.n_workers
        override = self._override
        counts = self._access_counts
        parts: list[list] = [[] for _ in range(n_workers)]
        broadcast: list = []
        for ev in chunk:
            kind = ev[0]
            if kind == EV_READ or kind == EV_WRITE:
                addr = ev[1]
                worker = override.get(addr)
                if worker is None:
                    worker = addr % n_workers
                parts[worker].append(ev)
                counts[addr] = counts.get(addr, 0) + 1
                self.report.produced_events += 1
            elif kind == EV_FREE:
                broadcast.append(ev)
            elif kind == EV_BGN:
                rec = self.control.get(ev[1])
                if rec is None:
                    rec = ControlRecord(ev[1], ev[2], ev[3], ev[3])
                    self.control[ev[1]] = rec
                rec.executions += 1
            elif kind == EV_END:
                rec = self.control.get(ev[1])
                if rec is None:
                    rec = ControlRecord(ev[1], ev[2], ev[3], ev[3])
                    self.control[ev[1]] = rec
                rec.end_line = max(rec.end_line, ev[3])
                rec.total_iterations += ev[6]
        for w in range(n_workers):
            part = parts[w]
            if broadcast:
                part.extend(broadcast)
            if part:
                self._dispatch(w, part)
        self.report.produced_chunks += 1
        self._chunks_since_rebalance += 1
        if self._chunks_since_rebalance >= self.redistribute_every:
            self._rebalance()
            self._chunks_since_rebalance = 0

    def _dispatch(self, worker: int, part: list) -> None:
        if self.mode == "simulated":
            self.workers[worker].process_chunk(part)
            self.report.work_units[worker] += len(part)
        else:
            self._queues[worker].push(part)

    def _worker_loop(self, worker: int) -> None:
        queue = self._queues[worker]
        profiler = self.workers[worker]
        while True:
            part = queue.pop()
            if part is DONE:
                return
            profiler.process_chunk(part)
            self.report.work_units[worker] += len(part)

    # ------------------------------------------------------------------
    # hot-address redistribution (§2.3.3 "Load balancing")
    # ------------------------------------------------------------------

    def _rebalance(self, top_n: int = 10) -> None:
        counts = self._access_counts
        if not counts:
            return
        if self.mode == "simulated":
            # vectorized workers stage chunks; state moves need the
            # frontier current (threaded workers run unbatched, and
            # flushing them from the producer would race their thread)
            for worker in self.workers:
                if isinstance(worker, VectorizedProfiler):
                    worker.flush()
        hottest = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)[:top_n]
        n_workers = self.n_workers
        for rank, (addr, _count) in enumerate(hottest):
            current = self._override.get(addr, addr % n_workers)
            desired = rank % n_workers
            if current == desired:
                continue
            if self.mode == "threaded":
                # A state move is only safe when the old worker's queue has
                # drained the address's pending accesses; the paper pauses
                # redistribution similarly.  We skip the move under load.
                if len(self._queues[current]) > 0:
                    continue
            self._move_address(addr, current, desired)
            self._override[addr] = desired
            self.report.redistributions += 1

    def _move_address(self, addr: int, src: int, dst: int) -> None:
        """Move an address's signature state between workers.

        Only the first four entry fields are the shadow interface; the
        columnar fast path may append private cached fields (see
        ``SerialProfiler._process_columnar``), which a move drops — the
        receiving worker rebuilds them lazily.
        """
        src_prof = self.workers[src]
        dst_prof = self.workers[dst]
        if isinstance(src_prof, VectorizedProfiler):
            # frontier-to-frontier move: pop the address's array-backed
            # state wholesale and install it on the receiving worker
            dst_prof.put_address_state(addr, src_prof.pop_address_state(addr))
            return
        src_shadow = src_prof.shadow
        dst_shadow = dst_prof.shadow
        if (
            type(src_shadow) is PerfectShadow
            and type(dst_shadow) is PerfectShadow
        ):
            # wholesale entry move keeps any private cached fields intact
            lw = src_shadow.write.get(addr)
            if lw is not None:
                dst_shadow.write[addr] = lw
            entry = src_shadow.reads.get(addr)
            if entry:
                dst_shadow.reads[addr] = dict(entry)
        else:
            lw = src_shadow.last_write(addr)
            if lw is not None:
                dst_shadow.record_write(addr, *lw[:4])
            for rd in src_shadow.reads_since_write(addr):
                dst_shadow.record_read(addr, *rd[:4])
        src_shadow.evict(addr, 1)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    def finish(self) -> DependenceStore:
        """Drain queues, join workers, merge thread-local maps (§2.3.3)."""
        if self.mode == "threaded":
            for queue in self._queues:
                queue.push(DONE)
            for thread in self._threads:
                thread.join()
        # drain staged batches first: that is detection work, not merge
        # work, and the pipeline model bills it to the workers
        for worker in self.workers:
            if isinstance(worker, VectorizedProfiler):
                worker.flush()
        merge_start = time.perf_counter()
        merged = DependenceStore()
        for worker in self.workers:
            merged.merge_from(worker.store)
        self.report.merge_seconds = time.perf_counter() - merge_start
        self.report.wall_seconds = time.perf_counter() - self._started
        self.report.memory_bytes = self.memory_bytes()
        return merged

    def memory_bytes(self) -> int:
        """Full profiler footprint: workers + queues + balancing state.

        Worker ``memory_bytes`` already covers their shadow frontier,
        staged batches, and partial stores; this adds everything the
        producer side holds — chunks sitting in the shard queues
        (threaded mode), the address-override map from rebalancing, the
        access-count map, and the aggregated control records — so
        rebalancing decisions and bench reports see the real footprint.
        """
        total = sum(w.memory_bytes() for w in self.workers)
        if self._queues is not None:
            total += sum(q.pending_nbytes() for q in self._queues)
        # load-balancing maps: ~104 bytes per dict slot (int keys/values)
        total += 104 * len(self._access_counts)
        total += 104 * len(self._override)
        # aggregated control records (producer side owns them)
        total += 200 * len(self.control)
        return total


# ---------------------------------------------------------------------------
# pipeline cost model (the substitution documented in DESIGN.md)
# ---------------------------------------------------------------------------


@dataclass
class CostModel:
    """Calibrated per-operation costs, seconds.

    ``c_proc``  — consumer cost per memory event (shadow update + dep build)
    ``c_push``  — producer cost per event (collect + shard + count)
    ``c_queue`` — per-chunk queue transfer cost for the chosen queue kind
    ``c_lock_queue`` — same for the mutex-based queue
    """

    c_proc: float
    c_push: float
    c_queue: float
    c_lock_queue: float


def calibrate_costs(n_probe: int = 200_000) -> CostModel:
    """Micro-measure the per-event costs on this machine."""
    from repro.profiler.queues import LockedQueue, SPSCQueue

    events = [
        (EV_READ if i % 3 else EV_WRITE, i % 4096, 10 + i % 50, "v", i % 97, 0, i, 0)
        for i in range(n_probe)
    ]
    profiler = SerialProfiler(PerfectShadow(), lambda s: ())
    t0 = time.perf_counter()
    profiler.process_chunk(events)
    c_proc = (time.perf_counter() - t0) / n_probe

    t0 = time.perf_counter()
    parts: list[list] = [[] for _ in range(8)]
    counts: dict[int, int] = {}
    for ev in events:
        addr = ev[1]
        parts[addr % 8].append(ev)
        counts[addr] = counts.get(addr, 0) + 1
    c_push = (time.perf_counter() - t0) / n_probe

    chunk = events[:4096]
    n_chunks = 200
    spsc = SPSCQueue(capacity=n_chunks + 1)
    t0 = time.perf_counter()
    for _ in range(n_chunks):
        spsc.push(chunk)
    for _ in range(n_chunks):
        spsc.pop()
    c_queue = (time.perf_counter() - t0) / n_chunks

    locked = LockedQueue()
    t0 = time.perf_counter()
    for _ in range(n_chunks):
        locked.push(chunk)
    for _ in range(n_chunks):
        locked.pop()
    c_lock_queue = (time.perf_counter() - t0) / n_chunks

    return CostModel(c_proc, c_push, c_queue, c_lock_queue)


def modeled_times(
    report: ParallelReport,
    costs: CostModel,
    native_seconds: float,
    *,
    lock_based: bool = False,
) -> dict[str, float]:
    """Pipeline-model wall time for a run summarised by ``report``.

    Producer and consumers overlap; the wall time is the slower of the two
    stages plus the final merge:

        producer = native + N_events * c_push + chunks * c_queue
        worker_w = work_w * c_proc + chunks_w * c_queue
        wall     = max(producer, max_w worker_w) + merge
    """
    c_queue = costs.c_lock_queue if lock_based else costs.c_queue
    producer = (
        native_seconds
        + report.produced_events * costs.c_push
        + report.produced_chunks * c_queue
    )
    # chunks are split per worker; approximate per-worker chunk count by
    # produced_chunks (each source chunk fans out at most one per worker)
    slowest_worker = 0.0
    for work in report.work_units:
        worker_time = work * costs.c_proc + report.produced_chunks * c_queue / max(
            1, report.n_workers
        )
        slowest_worker = max(slowest_worker, worker_time)
    wall = max(producer, slowest_worker) + report.merge_seconds
    return {
        "producer_seconds": producer,
        "slowest_worker_seconds": slowest_worker,
        "wall_seconds": wall,
        "slowdown": wall / native_seconds if native_seconds > 0 else float("inf"),
    }
