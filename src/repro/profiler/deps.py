"""Data-dependence records and the runtime merging store.

A dependence is the paper's triple ``<sink, type, source>`` plus attributes
(variable name, thread ids, inter-iteration tag).  Identity for runtime
merging (§2.3.5) is *exactly* the triple plus all attributes: two dependences
are identical iff every element matches; merged records keep an occurrence
count and the set of loops that carried them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


class DepType:
    """Dependence type tags (string constants, as in the report format)."""

    RAW = "RAW"
    WAR = "WAR"
    WAW = "WAW"
    INIT = "INIT"
    ALL = (RAW, WAR, WAW)


#: identity tuple: (sink_line, type, source_line, var, loop_carried,
#:                  sink_tid, source_tid)
#: NOTE: the columnar fast path mirrors this identity (and the
#: count/carriers/maybe_race merge semantics of :meth:`DependenceStore.add`)
#: in ``repro.profiler.serial.SerialProfiler._merge_dep`` — change both
#: together; the tuple/columnar equivalence tests in tests/test_pipeline.py
#: are the tripwire.
DepKey = tuple


@dataclass(slots=True)
class Dependence:
    """One merged data dependence."""

    sink_line: int
    type: str
    source_line: int
    var: str
    loop_carried: bool = False
    sink_tid: int = 0
    source_tid: int = 0
    count: int = 1
    #: loop region ids that carried this dependence (outermost differing
    #: iteration position per occurrence)
    carriers: set = field(default_factory=set)
    #: True when the recorded order was not protected by mutual exclusion
    #: and a timestamp inversion was observed (§2.3.4 — potential data race)
    maybe_race: bool = False

    @property
    def key(self) -> DepKey:
        return (
            self.sink_line,
            self.type,
            self.source_line,
            self.var,
            self.loop_carried,
            self.sink_tid,
            self.source_tid,
        )

    def format(self, with_tid: bool = False) -> str:
        """Render as ``{RAW 1:59|temp1}`` (Fig. 2.1) or with thread ids as
        ``{RAW 4:58|3|iter}`` (Fig. 2.3)."""
        if with_tid:
            return f"{{{self.type} 1:{self.source_line}|{self.source_tid}|{self.var}}}"
        return f"{{{self.type} 1:{self.source_line}|{self.var}}}"

    def to_dict(self) -> dict:
        """Stable JSON-serializable form (sets become sorted lists)."""
        return {
            "sink_line": self.sink_line,
            "type": self.type,
            "source_line": self.source_line,
            "var": self.var,
            "loop_carried": self.loop_carried,
            "sink_tid": self.sink_tid,
            "source_tid": self.source_tid,
            "count": self.count,
            "carriers": sorted(self.carriers),
            "maybe_race": self.maybe_race,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Dependence":
        return cls(
            sink_line=data["sink_line"],
            type=data["type"],
            source_line=data["source_line"],
            var=data["var"],
            loop_carried=data["loop_carried"],
            sink_tid=data["sink_tid"],
            source_tid=data["source_tid"],
            count=data["count"],
            carriers=set(data["carriers"]),
            maybe_race=data["maybe_race"],
        )


class DependenceStore:
    """Merged dependence set with per-sink aggregation (§2.3.5).

    Also records INIT sinks (first writes) and counts raw (pre-merge)
    dependence occurrences so the merging factor of the paper can be
    reported.
    """

    def __init__(self) -> None:
        self._deps: dict[DepKey, Dependence] = {}
        #: sink lines that contain a first-write (the ``{INIT *}`` entries)
        self.init_lines: set[int] = set()
        self.raw_occurrences = 0

    # -- building ------------------------------------------------------------

    def add(
        self,
        sink_line: int,
        dep_type: str,
        source_line: int,
        var: str,
        *,
        loop_carried: bool = False,
        carrier: Optional[int] = None,
        sink_tid: int = 0,
        source_tid: int = 0,
        maybe_race: bool = False,
    ) -> Dependence:
        self.raw_occurrences += 1
        key = (
            sink_line,
            dep_type,
            source_line,
            var,
            loop_carried,
            sink_tid,
            source_tid,
        )
        dep = self._deps.get(key)
        if dep is None:
            dep = Dependence(
                sink_line,
                dep_type,
                source_line,
                var,
                loop_carried,
                sink_tid,
                source_tid,
                count=0,
            )
            self._deps[key] = dep
        dep.count += 1
        if carrier is not None:
            dep.carriers.add(carrier)
        if maybe_race:
            dep.maybe_race = True
        return dep

    def add_init(self, sink_line: int) -> None:
        self.init_lines.add(sink_line)

    def merge_from(self, other: "DependenceStore") -> None:
        """Fold another store into this one (used when joining the parallel
        profiler's thread-local maps — the 'global map' merge of §2.3.3)."""
        for key, dep in other._deps.items():
            mine = self._deps.get(key)
            if mine is None:
                self._deps[key] = Dependence(
                    dep.sink_line,
                    dep.type,
                    dep.source_line,
                    dep.var,
                    dep.loop_carried,
                    dep.sink_tid,
                    dep.source_tid,
                    count=dep.count,
                    carriers=set(dep.carriers),
                    maybe_race=dep.maybe_race,
                )
            else:
                mine.count += dep.count
                mine.carriers |= dep.carriers
                mine.maybe_race |= dep.maybe_race
        self.init_lines |= other.init_lines
        self.raw_occurrences += other.raw_occurrences

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._deps)

    def __iter__(self):
        return iter(self._deps.values())

    def all(self) -> list[Dependence]:
        # the full identity tuple: ordering must not depend on dict
        # insertion order (the loop and vectorized detectors discover
        # merged dependences in different orders) or on None-vs-str vars
        return sorted(
            self._deps.values(),
            key=lambda d: (
                d.sink_line,
                d.type,
                d.source_line,
                d.var is not None,
                d.var or "",
                d.loop_carried,
                d.sink_tid,
                d.source_tid,
            ),
        )

    def by_sink(self) -> dict[int, list[Dependence]]:
        out: dict[int, list[Dependence]] = {}
        for dep in self.all():
            out.setdefault(dep.sink_line, []).append(dep)
        return out

    def of_type(self, dep_type: str) -> list[Dependence]:
        return [d for d in self.all() if d.type == dep_type]

    def keys(self) -> set[DepKey]:
        return set(self._deps.keys())

    def raw_for_loop(self, loop_region_id: int) -> list[Dependence]:
        """RAW dependences carried by a given loop — the parallelism
        blockers DOALL detection inspects."""
        return [
            d
            for d in self._deps.values()
            if d.type == DepType.RAW and loop_region_id in d.carriers
        ]

    def carried_by(self, loop_region_id: int) -> list[Dependence]:
        return [d for d in self._deps.values() if loop_region_id in d.carriers]

    def involving_var(self, var: str) -> list[Dependence]:
        return [d for d in self.all() if d.var == var]

    def to_dict(self) -> dict:
        """Stable JSON-serializable form of the merged store."""
        return {
            "deps": [d.to_dict() for d in self.all()],
            "init_lines": sorted(self.init_lines),
            "raw_occurrences": self.raw_occurrences,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DependenceStore":
        store = cls()
        for entry in data["deps"]:
            dep = Dependence.from_dict(entry)
            store._deps[dep.key] = dep
        store.init_lines = set(data["init_lines"])
        store.raw_occurrences = data["raw_occurrences"]
        return store

    def memory_bytes(self) -> int:
        """Rough resident size of the merged map (for the memory figures)."""
        # dict entry ≈ 104 bytes + key tuple ≈ 120 + record ≈ 200
        return 424 * len(self._deps) + 64 * len(self.init_lines)


def compare_dependences(
    measured: Iterable[Dependence], baseline: Iterable[Dependence]
) -> tuple[float, float, int, int]:
    """False-positive / false-negative rates of ``measured`` against an
    exact ``baseline`` (Table 2.6 metric).

    Returns ``(fpr, fnr, n_measured, n_baseline)`` with rates in percent.
    Comparison identity is the merged-dependence key.
    """
    measured_keys = {d.key for d in measured}
    baseline_keys = {d.key for d in baseline}
    n_measured = len(measured_keys)
    n_baseline = len(baseline_keys)
    false_pos = len(measured_keys - baseline_keys)
    false_neg = len(baseline_keys - measured_keys)
    fpr = 100.0 * false_pos / n_measured if n_measured else 0.0
    fnr = 100.0 * false_neg / n_baseline if n_baseline else 0.0
    return fpr, fnr, n_measured, n_baseline


def store_accuracy(
    candidate: DependenceStore, reference: DependenceStore
) -> dict:
    """Precision/recall of ``candidate`` against an exact ``reference``.

    The accuracy gate for lossy detection (sampling + signature slots):
    identity is the full dependence key, so a dependence that survives
    sampling but lands on the wrong line/var/carrier counts against
    precision rather than silently matching.  Empty-vs-empty scores
    perfect (a workload with no dependences is reproduced exactly).
    """
    cand = candidate.keys()
    ref = reference.keys()
    inter = len(cand & ref)
    precision = inter / len(cand) if cand else 1.0
    recall = inter / len(ref) if ref else 1.0
    return {
        "precision": precision,
        "recall": recall,
        "n_candidate": len(cand),
        "n_reference": len(ref),
        "false_deps": len(cand - ref),
        "missed_deps": len(ref - cand),
    }
