"""Deterministic synthetic event streams for detection-scale benchmarks.

A 10⁸-event input recorded through the VM would cost minutes of
interpreter time per bench rep; the detection layers only see packed
int64 rows, so the scale leg of ``BENCH_detect`` drives them with a
generator that materializes one chunk at a time — peak memory stays a
single chunk plus detector state no matter the trace length, which is
exactly the out-of-core property the bench gates on.

The stream models one hot loop with a realistic dependence mix:

* array ``A`` (``working_set`` cells): iteration ``i`` writes
  ``A[i & mask]`` and reads the ``A[(i-1..i-3) & mask]`` stencil — a
  loop-carried RAW one iteration apart, WAR/WAW as indices recycle,
  and *repeat* reads per write interval (each cell is read three
  times after its write), the traffic class the sampling mode thins;
* array ``B``: a splitmix64-hashed gather/scatter — scattered-address
  traffic with occasional same-cell collisions;
* scalar ``acc``: read twice then written every iteration — carried
  RAW/WAW and an intra-iteration WAR on one address every worker must
  contend with (it shows sharding's worst case: one shard owns the
  hot cell).

Everything is a pure function of the iteration index — no RNG state,
no wall clock — so any two runs (and any sharding of one run) see
byte-identical rows.  Loop signatures use a single region (id 1) with
the iteration number recycled mod ``max_iters`` to bound the interned
table; :attr:`SyntheticStream.sig_decoder` is the matching decoder.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.events import (
    COL_ADDR,
    COL_AUX,
    COL_KIND,
    COL_LINE,
    COL_NAME,
    COL_SIG,
    COL_TS,
    EventChunk,
    K_BGN,
    K_END,
    K_READ,
    K_WRITE,
    N_COLS,
    StringTable,
)

_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xBF58476D1CE4E5B9)
_MIX_C = np.uint64(0x94D049BB133111EB)

#: events emitted per synthetic loop iteration
OPS_PER_ITER = 9

_REGION = 1
_A_BASE = 1 << 32
_B_BASE = 2 << 32
_ACC_ADDR = 3 << 32


def _mix(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer — the stream's only source of 'randomness'."""
    x = x.astype(np.uint64) * _MIX_A
    x ^= x >> np.uint64(30)
    x *= _MIX_B
    x ^= x >> np.uint64(27)
    x *= _MIX_C
    x ^= x >> np.uint64(31)
    return x


class SyntheticStream:
    """Re-iterable chunked event stream of ``~n_events`` packed rows.

    ``iter_chunks()`` yields :class:`EventChunk`\\ s of at most
    ``chunk_events`` rows; iterate it as many times as needed (bench
    reps, exact-vs-sampled comparisons) — every pass is identical.
    """

    def __init__(
        self,
        n_events: int,
        *,
        working_set: int = 1 << 20,
        b_cells: int = 1 << 16,
        max_iters: int = 1 << 16,
        chunk_events: int = 3 << 17,
    ) -> None:
        if working_set & (working_set - 1) or b_cells & (b_cells - 1):
            raise ValueError("working_set and b_cells must be powers of two")
        self.n_iters = max(1, n_events // OPS_PER_ITER)
        #: exact row count a full pass yields (incl. BGN/END framing)
        self.n_events = self.n_iters * OPS_PER_ITER + 2
        self.working_set = working_set
        self.b_cells = b_cells
        self.max_iters = max_iters
        self.chunk_iters = max(1, chunk_events // OPS_PER_ITER)
        self.strings = StringTable()
        self._nid = {
            name: self.strings.intern(name)
            for name in ("loop", "A", "B", "acc")
        }

    def sig_decoder(self, sig_id: int) -> tuple:
        """Loop-signature decoder matching the emitted sig ids."""
        if sig_id == 0:
            return ()
        return ((_REGION, sig_id - 1),)

    @property
    def max_sig_id(self) -> int:
        return min(self.n_iters, self.max_iters)

    def _iter_block(self, start: int, stop: int, ts_base: int) -> np.ndarray:
        iters = np.arange(start, stop, dtype=np.int64)
        n = iters.shape[0]
        buf = np.zeros((n, OPS_PER_ITER, N_COLS), dtype=np.int64)
        sig = 1 + iters % self.max_iters
        buf[:, :, COL_SIG] = sig[:, None]
        buf[:, :, COL_TS] = (
            ts_base + np.arange(n * OPS_PER_ITER, dtype=np.int64)
        ).reshape(n, OPS_PER_ITER)
        a_mask = self.working_set - 1
        b_idx = (_mix(iters) & np.uint64(self.b_cells - 1)).astype(np.int64)
        nid = self._nid
        ops = (
            (K_READ, _A_BASE + ((iters - 1) & a_mask), 10, nid["A"]),
            (K_READ, _A_BASE + ((iters - 2) & a_mask), 11, nid["A"]),
            (K_READ, _A_BASE + ((iters - 3) & a_mask), 12, nid["A"]),
            (K_WRITE, _A_BASE + (iters & a_mask), 13, nid["A"]),
            (K_READ, _B_BASE + b_idx, 14, nid["B"]),
            (K_WRITE, _B_BASE + b_idx, 15, nid["B"]),
            (K_READ, _ACC_ADDR, 16, nid["acc"]),
            (K_READ, _ACC_ADDR, 17, nid["acc"]),
            (K_WRITE, _ACC_ADDR, 18, nid["acc"]),
        )
        for slot, (kind, addr, line, name) in enumerate(ops):
            buf[:, slot, COL_KIND] = kind
            buf[:, slot, COL_ADDR] = addr
            buf[:, slot, COL_LINE] = line
            buf[:, slot, COL_NAME] = name
        return buf.reshape(-1, N_COLS)

    def iter_chunks(self):
        bgn = np.zeros((1, N_COLS), dtype=np.int64)
        bgn[0, COL_KIND] = K_BGN
        bgn[0, COL_ADDR] = _REGION
        bgn[0, COL_LINE] = 9
        bgn[0, COL_NAME] = self._nid["loop"]
        pending = [bgn]
        ts = 1
        for start in range(0, self.n_iters, self.chunk_iters):
            stop = min(start + self.chunk_iters, self.n_iters)
            block = self._iter_block(start, stop, ts)
            ts += block.shape[0]
            pending.append(block)
            if stop == self.n_iters:
                end = np.zeros((1, N_COLS), dtype=np.int64)
                end[0, COL_KIND] = K_END
                end[0, COL_ADDR] = _REGION
                end[0, COL_LINE] = 19
                end[0, COL_AUX] = self.n_iters
                end[0, COL_TS] = ts
                pending.append(end)
            yield EventChunk(
                np.concatenate(pending) if len(pending) > 1 else pending[0],
                self.strings,
            )
            pending = []
