"""Sharded multi-process detection: out-of-core dependence analysis.

The vectorized detector (:mod:`repro.profiler.vectorized`) removed the
per-event Python interpreter from detection, but one process still runs
every segmented scan under the GIL — the scalability ceiling §2.3.3
attacks with address sharding.  This module lifts that design across
*process* boundaries:

* the parent partitions incoming event rows by ``addr % n_shards`` —
  the same Formula-2.1 partition :class:`ParallelProfiler` uses — with
  FREE events broadcast to every shard (lifetime eviction must reach
  every worker holding state for a freed range);
* each shard's rows travel through ``multiprocessing.shared_memory``
  slabs: the parent blits packed ``(n, N_COLS)`` int64 rows into a
  pooled slab and publishes ``("rows", slab, n, ...)`` to every worker;
  a worker copies out its shard with one boolean gather and acks the
  slab for reuse.  No event data is ever pickled;
* spilled raw-``.npy`` segments (``SpillingTraceSink(compress=False)``)
  skip the slabs entirely: workers ``np.load(..., mmap_mode="r")`` the
  segment and gather their shard straight out of the page cache;
* every worker runs the unmodified vectorized segment scans over its
  shard; at :meth:`ShardedDetector.finalize` the per-shard
  :class:`DependenceStore`\\ s are streamed into one store
  (:meth:`DependenceStore.merge_from`, the §2.3.5 runtime merge — its
  ``to_dict`` ordering is merge-order independent) and the per-shard
  :class:`ShadowFrontier`\\ s are merged with one sorted gather
  (:func:`merge_frontiers`; ``addr % n_shards`` makes the key sets
  disjoint, so the merge is a permutation).

Because each address's full timeline lands in exactly one worker and
frees reach all of them, the exact mode (perfect shadow) is
**bit-identical** to the single-process vectorized detector — same
store, control records, and stats; the frontier matches up to the
intra-key ordering of ragged read sets, which is batch-boundary
dependent even in the serial detector (:func:`canonical_frontier`
normalizes it).  The registry-wide sweep in ``tests/test_detect.py``
is the tripwire.  With
``signature_slots`` set, per-shard hashing loses the cross-shard slot
collisions the serial signature shadow would see (the same documented
approximation §2.3.3 accepts).

The interned tables ride along incrementally: the loop-signature
decoder and the string table are unpicklable/monotonic, so the parent
ships only the *suffix* of newly interned entries with each slab
message and every worker grows a local mirror — a few tuples per
message instead of event data.

**Sampling mode** (``sampling=rate``) is the accuracy-gated lossy path:
the parent forwards every write / control / FREE row but only a
deterministic hash-selected fraction of the reads — stratified per
``(loop signature, line, tid)`` so the first read of every access
context in every loop iteration always ships (see
:class:`ShardSampler` for why that asymmetry preserves precision).
``repro bench --suite detect`` measures the resulting precision/recall
against the exact store (:func:`repro.profiler.deps.store_accuracy`)
and gates on it.

**Supervision** (``policy=RetryPolicy(...)``): every dispatched batch is
journaled to disk, worker messages carry a per-shard generation tag, and
the blocking waits poll with liveness checks instead of hanging on the
queue.  A dead or hung worker is recovered by replaying *only its shard's
partition* from the journal — ``addr % n_shards`` keeps shard state
disjoint, so a re-run + re-merge is bit-identical — escalating
retry shard → restart pool → degrade to in-process serial vectorized
detection (warn + ``resilience.degraded`` metric) rather than raising.
Without a policy the detector keeps the legacy contract: any worker
failure raises :class:`ShardedDetectionError`.  See docs/RESILIENCE.md.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue as queue_mod
import tempfile
import time
import traceback
import warnings
from multiprocessing import shared_memory
from typing import Callable, Optional, Union

import numpy as np

from repro.resilience import FaultPlan, RetryPolicy, WorkerFaultInjector

from repro.profiler.deps import DependenceStore
from repro.profiler.serial import ControlRecord, ProfileStats
from repro.profiler.vectorized import (
    ShadowFrontier,
    VectorizedProfiler,
    _multiarange,
    track_control_rows,
)
from repro.runtime.events import (
    COL_ADDR,
    COL_KIND,
    COL_LINE,
    COL_NAME,
    COL_SIG,
    COL_TID,
    COL_TS,
    EventChunk,
    K_BGN,
    K_END,
    K_FREE,
    K_READ,
    K_WRITE,
    N_COLS,
    StringTable,
)

#: worker processes when ``detect_workers`` is not given
DEFAULT_SHARD_WORKERS = 4

#: rows per shared-memory slab (and the parent's staging batch): 128k
#: rows x 9 int64 columns = 9 MiB per slab, amortizing the per-message
#: fixed costs while keeping the slab pool bounded
DEFAULT_SLAB_ROWS = 1 << 17

#: signature size sampling-mode workers key their frontier on when a
#: bounded-memory shadow is requested via ``sampling_slots``
DEFAULT_SAMPLING_SLOTS = 1 << 20

_EMPTY = np.empty(0, dtype=np.int64)

#: per-process run counter: slab names become ``repro<pid>d<run>s<i>``
#: so a leak scan of /dev/shm can anchor on one run's prefix
_RUN_SEQ = itertools.count()

# splitmix64 finalizer constants (deterministic event-sampling hash)
_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xBF58476D1CE4E5B9)
_MIX_C = np.uint64(0x94D049BB133111EB)


class ShardedDetectionError(RuntimeError):
    """A worker process failed; carries the remote traceback.

    When the run had observability on, the failing worker ships what it
    had alongside the traceback: ``worker_metrics`` is its
    metrics-registry snapshot and ``worker_spans`` its span-lane bundle
    (:meth:`repro.obs.trace.Tracer.ship` format) — so a crashed shard
    still reports what it was doing.  Both stay ``None`` when obs was
    off or the failure predates instrumentation.
    """

    def __init__(
        self,
        message: str,
        *,
        shard: Optional[int] = None,
        worker_metrics: Optional[dict] = None,
        worker_spans: Optional[list] = None,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.worker_metrics = worker_metrics
        self.worker_spans = worker_spans


# ---------------------------------------------------------------------------
# sharding + frontier merging (shared by workers and the in-process tests)
# ---------------------------------------------------------------------------


def shard_mask(rows: np.ndarray, n_shards: int, shard: int) -> np.ndarray:
    """Which rows shard ``shard`` consumes.

    Memory rows partition by ``addr % n_shards`` (Formula 2.1); FREE
    rows broadcast to every shard — eviction must reach each worker
    whose address range a freed block overlaps, exactly like
    :meth:`ParallelProfiler._process_columnar`.
    """
    kinds = rows[:, COL_KIND]
    mem = kinds <= K_WRITE
    mine = mem & (rows[:, COL_ADDR] % n_shards == shard)
    return mine | (kinds == K_FREE)


def split_rows(rows: np.ndarray, n_shards: int) -> list[np.ndarray]:
    """Per-shard row subsets, order preserved within each shard."""
    return [rows[shard_mask(rows, n_shards, s)] for s in range(n_shards)]


def multi_shard_mask(
    rows: np.ndarray, n_shards: int, shards: np.ndarray
) -> np.ndarray:
    """Rows a *union* of shards consumes (degraded-mode partition).

    The union of shard classes is itself a valid partition class under
    the same ``addr % n_shards`` argument — one profiler over the
    combined rows produces exactly the merge of the per-shard results —
    so serial fallback can replay all incomplete shards in one pass.
    """
    kinds = rows[:, COL_KIND]
    mem = kinds <= K_WRITE
    mine = mem & np.isin(rows[:, COL_ADDR] % n_shards, shards)
    return mine | (kinds == K_FREE)


def merge_frontiers(frontiers) -> ShadowFrontier:
    """Merge per-shard frontiers into one sorted frontier.

    ``addr % n_shards`` partitions the key space, so the inputs' key
    sets are disjoint (exact mode) and the merge is a permutation: one
    stable sort over the concatenated keys, scalar columns gathered
    directly, the ragged read sets re-gathered entry-block-wise with
    the same offset arithmetic the in-batch frontier rebuild uses.
    Associativity/commutativity — any merge order yields bit-identical
    arrays — follows from the sort; ``tests/test_sharded.py`` checks it
    property-style.
    """
    parts = [f for f in frontiers if len(f)]
    out = ShadowFrontier()
    if not parts:
        return out
    if len(parts) == 1:
        src = parts[0]
        for slot in ShadowFrontier.__slots__:
            setattr(out, slot, getattr(src, slot).copy())
        return out
    all_keys = np.concatenate([f.keys for f in parts])
    order = np.argsort(all_keys, kind="stable")
    out.keys = all_keys[order]
    for slot in ("w_line", "w_sig", "w_tid", "w_ts", "w_addr"):
        out_col = np.concatenate([getattr(f, slot) for f in parts])
        setattr(out, slot, out_col[order])
    counts = np.concatenate([f.read_counts() for f in parts])[order]
    out.r_off = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(counts))
    )
    # per-entry source offsets into the concatenated flat read arrays
    bases = np.cumsum([0] + [f.r_line.shape[0] for f in parts[:-1]])
    src_starts = np.concatenate(
        [f.r_off[:-1] + base for f, base in zip(parts, bases)]
    )
    gather = _multiarange(src_starts[order], counts)
    for slot in ("r_line", "r_sig", "r_tid", "r_ts"):
        flat = np.concatenate([getattr(f, slot) for f in parts])
        setattr(out, slot, flat[gather])
    return out


def canonical_frontier(frontier: ShadowFrontier) -> ShadowFrontier:
    """Copy with each key's read set in canonical order.

    The order *within* one key's ragged read set depends on where batch
    boundaries fell (true of the serial vectorized detector too — it is
    not part of the detector contract; the set contents are).  Sorting
    each read block by ``(line, sig, tid, ts)`` makes frontiers from
    different batchings / shardings directly comparable.
    """
    out = ShadowFrontier()
    for slot in ShadowFrontier.__slots__:
        setattr(out, slot, getattr(frontier, slot).copy())
    counts = out.read_counts()
    entry = np.repeat(np.arange(counts.shape[0]), counts)
    order = np.lexsort((out.r_ts, out.r_tid, out.r_sig, out.r_line, entry))
    for slot in ("r_line", "r_sig", "r_tid", "r_ts"):
        setattr(out, slot, getattr(out, slot)[order])
    return out


def _frontier_arrays(frontier: ShadowFrontier) -> dict:
    """Picklable array bundle (the worker->parent frontier transport)."""
    return {slot: getattr(frontier, slot) for slot in ShadowFrontier.__slots__}


def _frontier_from_arrays(arrays: dict) -> ShadowFrontier:
    frontier = ShadowFrontier()
    for slot, arr in arrays.items():
        setattr(frontier, slot, arr)
    return frontier


# ---------------------------------------------------------------------------
# the worker process
# ---------------------------------------------------------------------------


def _worker_obs_payload(tracer, registry) -> dict:
    """The observability fields a worker ships home (possibly empty)."""
    payload: dict = {}
    if registry is not None:
        payload["metrics"] = registry.snapshot()
    if tracer is not None and tracer.enabled:
        payload["spans"] = tracer.ship()
    return payload


def _shard_worker(
    shard: int,
    n_shards: int,
    slab_names: list,
    slab_rows: int,
    task_q,
    result_q,
    signature_slots: Optional[int],
    lifetime_analysis: bool,
    obs_mode: str = "off",
    gen: int = 0,
    heartbeat: bool = False,
    fault_events: Optional[list] = None,
) -> None:
    """Worker main: consume slab/segment messages, detect one shard.

    Module-level (not a closure) so the spawn start method can pickle
    it; the interned tables arrive as incremental suffixes and grow
    local mirrors — ``sig_table[sid]`` plays the parent's unpicklable
    ``vm.loop_signature`` closure.

    With ``obs_mode`` on, the worker keeps its own tracer / metrics
    registry and ships them in the final ``done`` payload (or alongside
    the traceback on failure) — one span per consumed message, counters
    for rows seen/kept, and the peak RSS this process reached.

    Every message back to the parent carries ``gen``, the attempt
    generation this worker was spawned at — the supervisor discards
    stale-generation messages from workers it has already replaced.
    With ``heartbeat`` on (supervised runs) the worker reports a
    liveness ``("hb", shard, gen)`` on receipt of every task message,
    before any processing, so the parent can tell hung from slow.
    ``fault_events`` carries this attempt's slice of a test-only
    :class:`~repro.resilience.FaultPlan`; production runs pass None.
    """
    slabs = []
    tracer = registry = None
    faults = WorkerFaultInjector(fault_events or [])
    batch = 0
    try:
        if obs_mode != "off":
            from repro.obs import MetricsRegistry, Tracer

            registry = MetricsRegistry()
            tracer = Tracer(
                enabled=(obs_mode == "trace"),
                process_label=f"detect.shard{shard}",
            )
        slabs = [
            shared_memory.SharedMemory(name=name) for name in slab_names
        ]
        views = [
            np.ndarray((slab_rows, N_COLS), dtype=np.int64, buffer=s.buf)
            for s in slabs
        ]
        sig_table: list[tuple] = [()]
        strings = StringTable()
        profiler = VectorizedProfiler(
            signature_slots,
            lambda sid: sig_table[sid],
            lifetime_analysis=lifetime_analysis,
            track_control=False,
        )
        while True:
            msg = task_q.get()
            kind = msg[0]
            if kind == "finish":
                break
            # faults fire before any queue traffic: an injected kill
            # must not die holding the result queue's write lock (a
            # poisoned lock silences every worker — the pool-restart
            # rung rebuilds the queue to recover from the real thing)
            drop_ack = faults.on_message(batch) if faults else False
            batch += 1
            if heartbeat:
                result_q.put(("hb", shard, gen))
            if tracer is not None and tracer.enabled:
                tracer.begin("shard.batch", "detect")
            if kind == "rows":
                _, idx, n, names_sfx, sigs_sfx = msg
                rows = views[idx][:n]
                mine = rows[shard_mask(rows, n_shards, shard)]
                # the gather above copied out of the slab: ack first so
                # the parent can refill it while this shard detects
                if not drop_ack:
                    result_q.put(("ack", idx, shard, gen))
                seen = n
            else:  # "npy": mmap a raw spill segment, zero staging copy
                _, path, names_sfx, sigs_sfx = msg
                seg = np.load(path, mmap_mode="r")
                seen = seg.shape[0]
                mine = seg[shard_mask(seg, n_shards, shard)]
                del seg
            if names_sfx:
                # ids align by construction: the parent ships each
                # interned value exactly once, in id order
                strings.values.extend(names_sfx)
            if sigs_sfx:
                sig_table.extend(sigs_sfx)
            if mine.shape[0]:
                profiler.process_chunk(EventChunk(mine, strings))
            if registry is not None:
                registry.counter(
                    "batches", "messages this shard consumed"
                ).inc()
                registry.counter(
                    "rows_seen", "rows offered to this shard"
                ).inc(int(seen))
                registry.counter(
                    "rows_processed", "rows this shard detected on"
                ).inc(int(mine.shape[0]))
            if tracer is not None and tracer.enabled:
                tracer.end()
        if tracer is not None and tracer.enabled:
            tracer.begin("shard.finalize", "detect")
        profiler.flush()
        if tracer is not None and tracer.enabled:
            tracer.end()
        if registry is not None:
            registry.counter(
                "deps_built", "dependences built by this shard"
            ).inc(profiler.stats.deps_built)
            registry.gauge(
                "frontier_keys", "live shadow-frontier addresses"
            ).set(len(profiler.frontier))
            registry.gauge(
                "memory_bytes", "detector-resident bytes"
            ).set(profiler.memory_bytes())
            try:
                import resource

                registry.gauge(
                    "peak_rss_kb", "peak resident set of this worker"
                ).set(
                    resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                )
            except ImportError:  # pragma: no cover - non-POSIX
                pass
        payload = {
            "store": profiler.store,
            "frontier": _frontier_arrays(profiler.frontier),
            "deps_built": profiler.stats.deps_built,
            "collisions": profiler.collisions,
            "memory_bytes": profiler.memory_bytes(),
        }
        payload.update(_worker_obs_payload(tracer, registry))
        if faults:
            payload = faults.on_done(payload)
        result_q.put(("done", shard, gen, payload))
    except BaseException:  # pragma: no cover - exercised via error test
        result_q.put((
            "error",
            shard,
            gen,
            traceback.format_exc(),
            _worker_obs_payload(tracer, registry),
        ))
    finally:
        for slab in slabs:
            slab.close()


# ---------------------------------------------------------------------------
# the replay journal
# ---------------------------------------------------------------------------


class _ReplayJournal:
    """Disk journal of every dispatched batch, in dispatch order.

    Supervised runs journal each slab piece (post-sampler, so replays
    never re-flip sampling coins) as a raw ``.npy`` file; broadcast
    spill segments journal by their existing path with no copy.  A
    restarted shard worker replays the whole journal as ``("npy", ...)``
    messages — its ``addr % n_shards`` gather re-derives exactly the
    partition the failed attempt held, with no slab/ack bookkeeping.
    """

    def __init__(self) -> None:
        self._dir = tempfile.mkdtemp(prefix="repro-journal-")
        self._seq = 0
        self.entries: list[str] = []
        self._owned: list[str] = []

    def record_rows(self, rows: np.ndarray) -> None:
        path = os.path.join(self._dir, f"batch{self._seq:06d}.npy")
        self._seq += 1
        np.save(path, rows)
        self.entries.append(path)
        self._owned.append(path)

    def record_segment(self, path: str) -> None:
        self.entries.append(path)

    def close(self) -> None:
        for path in self._owned:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass
        try:
            os.rmdir(self._dir)
        except OSError:  # pragma: no cover - non-empty/missing
            pass
        self._owned = []
        self.entries = []


# ---------------------------------------------------------------------------
# the accuracy-gated sampler
# ---------------------------------------------------------------------------


#: slots of the sampler's last-kind read guard (uint32 each, 32 MiB):
#: a slot eviction by a colliding address only forces an extra keep,
#: and the 31-bit tag makes trusting a stale state — the one failure
#: that could fabricate a WAW — a ~2^-54 per-pair event
READ_GUARD_SLOTS = 1 << 23


def _mix64(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array."""
    x = x.copy()
    x ^= x >> np.uint64(30)
    x *= _MIX_B
    x ^= x >> np.uint64(27)
    x *= _MIX_C
    x ^= x >> np.uint64(31)
    return x


class ShardSampler:
    """Deterministic stratified read sampling (the lossy mode).

    Writes (and control, FREE, allocation rows) always ship: a dropped
    write would leave stale state in the shadow frontier and bind later
    accesses to the wrong source — fabricated dependences, a
    *precision* loss with no bound.  Reads keep with probability
    ``rate`` under a splitmix64 hash of ``(addr, ts)`` — deterministic,
    so a sampled run is exactly reproducible — with two classes of
    reads exempt from the coin flip:

    * the first occurrence of every ``(loop signature, line, tid)``
      stratum.  The detector classifies a dependence as loop-carried
      from the *latest* read per line; dropping a repeat read would
      leave an older iteration's read as latest and flip the carried
      bit.  Keeping each context's first read per iteration signature
      keeps that state fresh.
    * the first read after every write per address (tracked in a
      last-kind signature table of :data:`READ_GUARD_SLOTS` byte
      slots).  The §2.5.2 consecutive-write rule suppresses a WAW
      whenever *any* read intervenes, so one surviving read per write
      interval preserves WAW suppression exactly; without it, dropped
      reads resurrect WAWs the exact run never reports.

    What remains sampled are repeat reads within a write interval and
    iteration — exactly the reads whose dependences are already merged
    into existing identities, so the loss lands on *recall* of rare
    access patterns rather than precision.  On a short trace nearly
    every read is exempt and the sampled run converges to the exact
    one; on a long trace the strata saturate and the hash keeps
    roughly ``rate`` of the repeat reads.
    """

    def __init__(self, rate: float) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError("sampling rate must be in (0, 1]")
        self.rate = rate
        self.threshold = np.uint64(min(int(rate * 2.0**64), 2**64 - 1))
        self.kept_events = 0
        self.total_events = 0
        self._seen: set[int] = set()
        # last-kind guard, one uint32 per slot: bit 0 = a read already
        # shipped since the last write, bits 1-31 = address tag.  A tag
        # mismatch means another address evicted this one's state; the
        # guard then errs toward force-keeping (see _guarded_reads), so
        # slot collisions cost shipped volume, never precision.
        self._guard = np.zeros(READ_GUARD_SLOTS, dtype=np.uint32)

    def _guarded_reads(
        self, kinds: np.ndarray, mem_idx: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Boolean (over ``mem_idx``): reads the WAW guard force-keeps.

        Replays the batch's memory accesses per (slot, tag) pseudo
        address (stable sort preserves trace order within a group) and
        marks each read whose previous same-address access is a write —
        plus the group's first read unless the carried-in state proves
        a read already shipped since this address's last write.
        """
        mixed = _mix64(rows[mem_idx, COL_ADDR].astype(np.uint64) * _MIX_A)
        slots = (mixed & np.uint64(READ_GUARD_SLOTS - 1)).astype(np.int64)
        tags = (
            (mixed >> np.uint64(24)) & np.uint64(0x7FFF_FFFF)
        ).astype(np.uint32)
        # group by slot AND tag so two colliding addresses replay as
        # separate sequences instead of interleaving into one
        key = (slots << np.int64(31)) | tags.astype(np.int64)
        order = np.argsort(key, kind="stable")
        s = slots[order]
        t = tags[order]
        ky = key[order]
        k = kinds[mem_idx][order]
        grp_start = np.empty(s.shape[0], dtype=bool)
        grp_start[0] = True
        np.not_equal(ky[1:], ky[:-1], out=grp_start[1:])
        prev_is_write = np.empty(s.shape[0], dtype=bool)
        prev_is_write[0] = False
        np.equal(k[:-1], K_WRITE, out=prev_is_write[1:])
        prev_is_write &= ~grp_start
        # carried-in: skip the force-keep only when the slot provably
        # holds THIS address's state and a read already shipped
        stored = self._guard[s]
        read_shipped = (stored >> np.uint32(1) == t) & (
            stored & np.uint32(1)
        ).astype(bool)
        forced = (k == K_READ) & (
            prev_is_write | (grp_start & ~read_shipped)
        )
        grp_end = np.empty(s.shape[0], dtype=bool)
        grp_end[:-1] = grp_start[1:]
        grp_end[-1] = True
        self._guard[s[grp_end]] = (t[grp_end] << np.uint32(1)) | (
            k[grp_end] == K_READ
        ).astype(np.uint32)
        out = np.empty(mem_idx.shape[0], dtype=bool)
        out[order] = forced
        return out

    def filter(self, rows: np.ndarray) -> np.ndarray:
        """Rows that ship, order preserved."""
        kinds = rows[:, COL_KIND]
        mem_idx = np.nonzero(kinds <= K_WRITE)[0]
        self.total_events += rows.shape[0]
        if mem_idx.shape[0] == 0:
            self.kept_events += rows.shape[0]
            return rows
        keep = self._guarded_reads(kinds, mem_idx, rows)
        is_read = kinds[mem_idx] == K_READ
        keep |= ~is_read  # writes always ship
        read_idx = mem_idx[is_read]
        if read_idx.shape[0]:
            x = _mix64(
                rows[read_idx, COL_ADDR].astype(np.uint64) * _MIX_A
                ^ rows[read_idx, COL_TS].astype(np.uint64) * _MIX_B
            )
            keep[is_read] |= x < self.threshold
            # stratum key: splitmix-mixed (sig, line, tid); a hash
            # collision merely treats a new stratum as seen
            # (deterministically), so correctness never depends on the
            # packing being injective
            strat = _mix64(
                rows[read_idx, COL_SIG].astype(np.uint64) * _MIX_A
                ^ rows[read_idx, COL_LINE].astype(np.uint64) * _MIX_B
                ^ rows[read_idx, COL_TID].astype(np.uint64) * _MIX_C
            )
            uniq, first = np.unique(strat, return_index=True)
            seen = self._seen
            fresh = [
                i for i, key in enumerate(uniq.tolist()) if key not in seen
            ]
            if fresh:
                seen.update(uniq[fresh].tolist())
                read_pos = np.nonzero(is_read)[0]
                keep[read_pos[first[fresh]]] = True
        mask = np.ones(rows.shape[0], dtype=bool)
        mask[mem_idx] = keep
        self.kept_events += int(mask.sum())
        return rows[mask]


# ---------------------------------------------------------------------------
# the parent-side detector
# ---------------------------------------------------------------------------


class ShardedDetector:
    """Multi-process detection front end with the vectorized surface.

    Drop-in peer of :class:`VectorizedProfiler` for the backend layer:
    same chunk-sink call convention and ``store``/``stats``/``control``/
    ``collisions``/``sig_decoder``/``memory_bytes`` surface, plus
    :meth:`finalize`, which joins the workers and merges their stores
    and frontiers (idempotent; :meth:`~SerialBackend.finish` calls it).

    The parent does only O(rows) bookkeeping per batch — kind counts
    for :class:`ProfileStats`, producer-side BGN/END control records,
    interned-suffix watermarks, the optional sampler — then one memcpy
    into a shared-memory slab.  All segmented scanning happens in the
    workers.
    """

    def __init__(
        self,
        signature_slots: Optional[int] = None,
        sig_decoder: Optional[Callable[[int], tuple]] = None,
        *,
        n_shards: int = DEFAULT_SHARD_WORKERS,
        sampling: Optional[float] = None,
        sampling_slots: Optional[int] = None,
        store: Optional[DependenceStore] = None,
        lifetime_analysis: bool = True,
        track_control: bool = True,
        batch_events: int = DEFAULT_SLAB_ROWS,
        slab_rows: int = DEFAULT_SLAB_ROWS,
        start_method: Optional[str] = None,
        policy: Optional[Union[RetryPolicy, dict]] = None,
        faults: Optional[Union[FaultPlan, dict]] = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError("need at least one shard worker")
        self.signature_slots = signature_slots
        self.n_shards = n_shards
        self.sampling = sampling
        self.sampler = ShardSampler(sampling) if sampling is not None else None
        #: what the workers key their frontier on: ``signature_slots``
        #: passes through (None = perfect shadow, bit-identical in exact
        #: mode and precision-preserving in sampling mode); sampling runs
        #: can cap worker shadow memory with an explicit
        #: ``sampling_slots`` at an extra aliasing-precision cost
        self.worker_slots = signature_slots
        if sampling is not None and sampling_slots is not None:
            self.worker_slots = sampling_slots
        self._sig_decoder = sig_decoder or (lambda sig_id: ())
        self.store = store if store is not None else DependenceStore()
        self.lifetime_analysis = lifetime_analysis
        self.track_control = track_control
        self.batch_events = batch_events
        self.slab_rows = slab_rows
        self.stats = ProfileStats()
        self.control: dict[int, ControlRecord] = {}
        self.collisions = 0
        #: merged cross-shard frontier, available after :meth:`finalize`
        self.frontier: Optional[ShadowFrontier] = None
        self.worker_memory_bytes = 0
        self.shipped_events = 0
        self._start_method = start_method
        self._strings: Optional[StringTable] = None
        self._own_strings: Optional[StringTable] = None
        self._buffer: list[np.ndarray] = []
        self._buffered = 0
        # interned-suffix watermarks: slot 0 (None / empty signature) is
        # pre-seeded in every worker, so shipping starts at id 1.
        # *_sent advances when a suffix is computed, *_pub when the
        # message carrying it is actually published — a replay prefix
        # must stop at the published mark, or a restart that fires while
        # a computed suffix is still in flight would ship those entries
        # twice and shift every later id in the replacement's tables
        self._names_sent = 1
        self._sigs_sent = 1
        self._names_pub = 1
        self._sigs_pub = 1
        self._sig_tuples: list[tuple] = [()]
        self._procs: Optional[list] = None
        self._task_qs: list = []
        self._result_q = None
        self._slabs: list = []
        self._views: list = []
        self._free_slabs: list[int] = []
        #: per-slab set of shards that have not acked it yet
        self._pending: list[set] = []
        self._finalized = False
        #: engine observability (attach_obs); None = obs off
        self._tracer = None
        self._metrics = None
        # -- supervision (docs/RESILIENCE.md) --------------------------
        if isinstance(policy, dict):
            policy = RetryPolicy.from_dict(policy)
        if isinstance(faults, dict):
            faults = FaultPlan.from_dict(faults)
        #: no policy = legacy contract: worker failures raise, the old
        #: hardcoded waits become the policy's (configurable) defaults
        self.policy = policy if policy is not None else RetryPolicy.disabled()
        self.faults = faults
        #: recovery-action tally, mirrored into ``resilience.*`` metrics
        self.recovery: dict[str, int] = {
            "worker_deaths": 0,
            "hung_workers": 0,
            "worker_errors": 0,
            "bad_payloads": 0,
            "shard_retries": 0,
            "pool_restarts": 0,
            "degraded": 0,
            "cleanup_failures": 0,
        }
        #: /dev/shm name prefix for this run's slabs (leak-scan anchor)
        self.shm_prefix = f"repro{os.getpid()}d{next(_RUN_SEQ)}"
        self._journal: Optional[_ReplayJournal] = None
        self._gen = [0] * n_shards
        self._last_seen = [0.0] * n_shards
        self._slab_sent: list[float] = []
        self._done_shards: set[int] = set()
        self._payloads: dict[int, dict] = {}
        self._shard_retries = [0] * n_shards
        self._total_retries = 0
        self._pool_restarts = 0
        self._finishing = False
        self._degraded: Optional[VectorizedProfiler] = None
        self._serial_shards: Optional[np.ndarray] = None
        self._ctx = None
        self._obs_mode = "off"
        self._slab_names: list[str] = []

    def attach_obs(self, tracer, metrics) -> None:
        """Adopt the engine's tracer/metrics; must precede first dispatch.

        The worker obs mode is derived from what is attached, so calls
        after the pool started would silently not reach the workers —
        hence the guard.
        """
        if self._procs is not None:
            raise RuntimeError(
                "attach_obs must be called before workers start"
            )
        self._tracer = tracer if tracer is not None and tracer.enabled \
            else None
        self._metrics = metrics

    # -- decoder / tables ----------------------------------------------

    @property
    def sig_decoder(self):
        return self._sig_decoder

    @sig_decoder.setter
    def sig_decoder(self, fn) -> None:
        if self.shipped_events:
            raise RuntimeError(
                "cannot swap the signature decoder after events shipped"
            )
        self._sig_decoder = fn

    def _decode_sigs_to(self, max_id: int) -> None:
        """Mirror newly interned signatures for suffix shipping."""
        decode = self._sig_decoder
        tuples = self._sig_tuples
        for sid in range(len(tuples), max_id + 1):
            tuples.append(tuple(decode(sid)))

    def _bind_strings(self, strings: StringTable) -> None:
        if self._strings is None:
            self._strings = strings
        elif strings is not self._strings:
            raise ValueError(
                "sharded detection requires one string table per run "
                "(interned ids already shipped to the workers)"
            )

    def _suffixes(self, rows: np.ndarray) -> tuple[tuple, tuple]:
        """Interned-table suffixes the shipped rows require."""
        names_sfx: tuple = ()
        sigs_sfx: tuple = ()
        max_nid = int(rows[:, COL_NAME].max(initial=0))
        if max_nid >= self._names_sent:
            values = self._strings.values
            names_sfx = tuple(values[self._names_sent: max_nid + 1])
            self._names_sent = max_nid + 1
        max_sig = int(rows[:, COL_SIG].max(initial=0))
        if max_sig >= self._sigs_sent:
            self._decode_sigs_to(max_sig)
            sigs_sfx = tuple(self._sig_tuples[self._sigs_sent: max_sig + 1])
            self._sigs_sent = max_sig + 1
        return names_sfx, sigs_sfx

    # -- worker pool ---------------------------------------------------

    def _ensure_workers(self) -> None:
        if self._procs is not None:
            return
        method = self._start_method
        if method is None:
            method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        self._ctx = ctx = mp.get_context(method)
        n_slabs = self.n_shards + 2
        slab_bytes = self.slab_rows * N_COLS * 8
        self._slabs = [
            shared_memory.SharedMemory(
                create=True, size=slab_bytes,
                name=f"{self.shm_prefix}s{i}",
            )
            for i in range(n_slabs)
        ]
        self._views = [
            np.ndarray(
                (self.slab_rows, N_COLS), dtype=np.int64, buffer=s.buf
            )
            for s in self._slabs
        ]
        self._free_slabs = list(range(n_slabs))
        self._pending = [set() for _ in range(n_slabs)]
        self._slab_sent = [0.0] * n_slabs
        self._result_q = ctx.Queue()
        self._task_qs = [ctx.SimpleQueue() for _ in range(self.n_shards)]
        self._slab_names = [s.name for s in self._slabs]
        obs_mode = "off"
        if self._tracer is not None:
            obs_mode = "trace"
        elif self._metrics is not None:
            obs_mode = "metrics"
        self._obs_mode = obs_mode
        if self.policy.supervise and self._journal is None:
            self._journal = _ReplayJournal()
        now = time.monotonic()
        self._last_seen = [now] * self.n_shards
        self._procs = [None] * self.n_shards
        for shard in range(self.n_shards):
            self._spawn(shard)

    def _spawn(self, shard: int) -> None:
        gen = self._gen[shard]
        fault_events = (
            self.faults.for_worker(shard, gen) if self.faults else None
        )
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(
                shard, self.n_shards, self._slab_names, self.slab_rows,
                self._task_qs[shard], self._result_q,
                self.worker_slots, self.lifetime_analysis,
                self._obs_mode, gen, self.policy.supervise, fault_events,
            ),
            daemon=True,
        )
        proc.start()
        self._procs[shard] = proc

    # -- supervision ---------------------------------------------------

    @property
    def _supervised(self) -> bool:
        return self.policy.supervise and self._journal is not None

    def _note(self, action: str, value: int = 1, **fields) -> None:
        """Tally a recovery action into ``recovery`` + obs (if attached)."""
        self.recovery[action] = self.recovery.get(action, 0) + value
        if self._metrics is not None:
            self._metrics.counter(
                f"resilience.{action}",
                f"sharded-detector recovery actions: {action}",
            ).inc(value)
        if self._tracer is not None:
            self._tracer.complete(
                f"resilience.{action}", "detect", self._tracer.now(), 0,
                args=fields or None,
            )

    def _valid_payload(self, payload) -> bool:
        """Reject malformed done payloads before they reach merge_from."""
        try:
            if not isinstance(payload, dict):
                return False
            if not isinstance(payload["store"], DependenceStore):
                return False
            frontier = payload["frontier"]
            if set(frontier) != set(ShadowFrontier.__slots__):
                return False
            if not all(
                isinstance(arr, np.ndarray) for arr in frontier.values()
            ):
                return False
            int(payload["deps_built"])
            int(payload["collisions"])
            int(payload["memory_bytes"])
        except (KeyError, TypeError, ValueError):
            return False
        return True

    def _check_liveness(self, quiet_since: float) -> bool:
        """Declare dead/hung shards failed and run the recovery ladder.

        Returns True when a recovery action ran — the caller must then
        unwind to its wait condition, because a restart can satisfy it
        without any message arriving (clearing a dead shard's ack
        obligations frees slabs while the dispatcher is still parked
        inside the result pump).

        A shard is *dead* when its process exited without a (valid) done
        payload; *hung* when it holds an obligation — an unacked slab,
        or a missing done payload after finish — and has shown no
        liveness signal (heartbeat/ack/done) past ``hang_timeout``.
        A heartbeat counts as progress: a restarted worker chewing
        through a journal replay acks late but beats on every message,
        so it is slow, not hung.  ``quiet_since`` is the last time *any*
        worker message arrived; total silence past ``done_timeout``
        (the former hardcoded 120 s queue wait) fails every incomplete
        shard regardless of obligations.
        """
        now = time.monotonic()
        policy = self.policy
        failed: dict[int, str] = {}
        for shard, proc in enumerate(self._procs):
            if shard in self._done_shards:
                continue
            if not proc.is_alive():
                failed[shard] = (
                    f"worker died (exit code {proc.exitcode})"
                )
        if failed:
            self._note("worker_deaths", value=len(failed))
        else:
            for idx, pend in enumerate(self._pending):
                for shard in sorted(pend - self._done_shards):
                    age = now - max(
                        self._slab_sent[idx], self._last_seen[shard]
                    )
                    if age > policy.hang_timeout:
                        failed.setdefault(
                            shard,
                            f"slab {idx} unacknowledged and no liveness "
                            f"signal for {age:.1f}s",
                        )
            if self._finishing:
                for shard in range(self.n_shards):
                    quiet = now - self._last_seen[shard]
                    if (
                        shard not in self._done_shards
                        and quiet > policy.hang_timeout
                    ):
                        failed.setdefault(
                            shard,
                            f"no liveness signal for {quiet:.1f}s "
                            "while finishing",
                        )
            if not failed and now - quiet_since > policy.done_timeout:
                for shard in range(self.n_shards):
                    if shard not in self._done_shards:
                        failed.setdefault(
                            shard,
                            "result queue silent beyond done_timeout="
                            f"{policy.done_timeout}s",
                        )
            if failed:
                self._note("hung_workers", value=len(failed))
        if failed:
            self._recover(failed)
        return bool(failed)

    def _recover(self, failed: dict) -> None:
        """Retry failed shards, escalating when their budget is spent."""
        if not self._supervised:
            shard = min(failed)
            raise ShardedDetectionError(
                f"shard worker {shard} failed: {failed[shard]}",
                shard=shard,
            )
        for shard in sorted(failed):
            self._shard_retries[shard] += 1
            if self._shard_retries[shard] > self.policy.max_shard_retries:
                self._escalate(failed[shard])
                return
        self._total_retries += len(failed)
        self._note(
            "shard_retries", value=len(failed),
            shards=sorted(failed), reasons=sorted(set(failed.values())),
        )
        delay = self.policy.backoff_delay(self._total_retries)
        if delay > 0:
            time.sleep(delay)
        for shard in sorted(failed):
            self._restart_shard(shard)

    def _restart_shard(self, shard: int) -> None:
        """Replace one worker and replay its partition from the journal."""
        proc = self._procs[shard]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=self.policy.join_timeout)
        # release its ack obligations so the slab pool cannot starve on
        # a worker that no longer exists; its replacement replays those
        # rows from the journal without slab bookkeeping
        for idx, pend in enumerate(self._pending):
            if shard in pend:
                pend.discard(shard)
                if not pend and idx not in self._free_slabs:
                    self._free_slabs.append(idx)
        self._gen[shard] += 1
        self._task_qs[shard] = self._ctx.SimpleQueue()
        self._spawn(shard)
        self._last_seen[shard] = time.monotonic()
        self._replay(shard)

    def _replay(self, shard: int) -> None:
        """Resend the journal to a fresh worker, tables first."""
        task_q = self._task_qs[shard]
        names_sfx: tuple = ()
        sigs_sfx: tuple = ()
        # prefix up to the *published* watermark only: a suffix computed
        # for a batch still being dispatched ships with that batch's
        # first piece, and must reach the replacement exactly once
        if self._strings is not None and self._names_pub > 1:
            names_sfx = tuple(self._strings.values[1:self._names_pub])
        if self._sigs_pub > 1:
            sigs_sfx = tuple(self._sig_tuples[1:self._sigs_pub])
        for path in self._journal.entries:
            task_q.put(("npy", path, names_sfx, sigs_sfx))
            names_sfx = sigs_sfx = ()
        if self._finishing:
            task_q.put(("finish",))

    def _escalate(self, reason: str) -> None:
        """Shard budget exhausted: restart the pool, then degrade."""
        if self._pool_restarts < self.policy.max_pool_restarts:
            self._pool_restarts += 1
            self._note("pool_restarts", reason=reason)
            incomplete = [
                s for s in range(self.n_shards)
                if s not in self._done_shards
            ]
            # a worker killed mid-write can die holding the shared
            # result queue's write lock, silencing every survivor; the
            # pool rung swaps in a fresh queue (replays make the lost
            # in-flight messages moot) before replacing the workers
            old_q = self._result_q
            self._result_q = self._ctx.Queue()
            for shard in incomplete:
                self._shard_retries[shard] = 0
                self._restart_shard(shard)
            try:
                old_q.close()
            except OSError as exc:  # pragma: no cover - OS dependent
                self._cleanup_failure(f"closing stale result queue: {exc}")
            return
        if self.policy.degrade:
            self._degrade(reason)
            return
        raise ShardedDetectionError(
            f"shard recovery budget exhausted: {reason}"
        )

    def _degrade(self, reason: str) -> None:
        """Last rung: finish the incomplete shards in-process, serially.

        One :class:`VectorizedProfiler` replays the journal filtered to
        the union of incomplete shard classes — a coarser cell of the
        same ``addr % n_shards`` partition, so its store/frontier equal
        the merge of the per-shard results bit-for-bit.  Completed
        shards keep their already-received payloads.
        """
        self._note("degraded", reason=reason)
        warnings.warn(
            "sharded detection degraded to in-process serial vectorized "
            f"detection: {reason}",
            RuntimeWarning,
            stacklevel=2,
        )
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=self.policy.join_timeout)
        self._release_slabs()
        incomplete = [
            s for s in range(self.n_shards) if s not in self._done_shards
        ]
        self._serial_shards = np.array(incomplete, dtype=np.int64)
        serial = VectorizedProfiler(
            self.worker_slots,
            self._sig_decoder,
            lifetime_analysis=self.lifetime_analysis,
            track_control=False,
        )
        self._degraded = serial
        for path in self._journal.entries:
            rows = np.load(path, mmap_mode="r")
            self._feed_serial(rows)

    def _feed_serial(self, rows: np.ndarray) -> None:
        """Run the degraded profiler over the incomplete shards' rows."""
        part = rows[
            multi_shard_mask(rows, self.n_shards, self._serial_shards)
        ]
        if part.shape[0]:
            self._degraded.process_chunk(EventChunk(part, self._strings))

    def _pump_result(self, block: bool):
        """Consume one meaningful worker message (ack or done).

        Supervised runs poll at ``policy.poll_interval`` and run the
        liveness check on every quiet tick; legacy runs block up to
        ``policy.done_timeout`` per wait (formerly hardcoded 120 s) and
        raise if a worker died.  Messages from replaced worker
        generations are discarded.  Returns None after a recovery
        action (callers re-check their wait condition) and on
        degradation.
        """
        supervised = self._supervised
        policy = self.policy
        timeout = (
            policy.poll_interval if supervised else policy.done_timeout
        )
        last_msg = time.monotonic()
        while True:
            if self._degraded is not None:
                return None
            try:
                msg = self._result_q.get(
                    block=block, timeout=timeout if block else None
                )
            except queue_mod.Empty:
                if not block:
                    return None
                if supervised:
                    if self._check_liveness(last_msg):
                        # recovery ran: a restart may have freed slabs
                        # with no message in flight — unwind so the
                        # caller re-checks what it is waiting for
                        return None
                    continue
                if any(not p.is_alive() for p in self._procs):
                    raise ShardedDetectionError(
                        "a shard worker died without reporting"
                    ) from None
                continue
            last_msg = time.monotonic()
            kind = msg[0]
            if kind == "hb":
                _, shard, gen = msg
                if gen == self._gen[shard]:
                    self._last_seen[shard] = time.monotonic()
                continue
            if kind == "ack":
                _, idx, shard, gen = msg
                if gen != self._gen[shard]:
                    continue  # stale ack from a replaced worker
                self._last_seen[shard] = time.monotonic()
                pend = self._pending[idx]
                pend.discard(shard)
                if not pend and idx not in self._free_slabs:
                    self._free_slabs.append(idx)
                if not block:
                    continue
                return msg
            if kind == "error":
                _, shard, gen, tb, obs = msg
                spans = (obs or {}).get("spans")
                if spans and self._tracer is not None:
                    # keep what the dying worker recorded on the parent
                    # timeline: a later export shows its final activity
                    self._tracer.absorb(spans)
                if gen != self._gen[shard] or shard in self._done_shards:
                    continue
                if not supervised:
                    raise ShardedDetectionError(
                        f"shard worker {shard} failed:\n{tb}",
                        shard=shard,
                        worker_metrics=(obs or {}).get("metrics"),
                        worker_spans=spans,
                    )
                self._note("worker_errors", shard=shard)
                self._recover({shard: f"worker raised:\n{tb}"})
                return None
            if kind == "done":
                _, shard, gen, payload = msg
                if gen != self._gen[shard] or shard in self._done_shards:
                    continue
                self._last_seen[shard] = time.monotonic()
                if not self._valid_payload(payload):
                    if not supervised:
                        raise ShardedDetectionError(
                            f"shard worker {shard} returned a corrupt "
                            "done payload",
                            shard=shard,
                        )
                    self._note("bad_payloads", shard=shard)
                    self._recover({shard: "corrupt done payload"})
                    return None
                self._done_shards.add(shard)
                self._payloads[shard] = payload
                return msg
            return msg

    def _acquire_slab(self) -> Optional[int]:
        """Pop a free slab, pumping results while the pool is saturated.

        Returns None if the run degraded while waiting — the caller
        feeds the remaining rows straight to the serial profiler.
        """
        if not self._free_slabs and self._tracer is not None:
            with self._tracer.span(
                "slab.wait", "detect", free=len(self._free_slabs)
            ):
                while not self._free_slabs:
                    if self._degraded is not None:
                        return None
                    self._pump_result(block=True)
        while not self._free_slabs:
            if self._degraded is not None:
                return None
            self._pump_result(block=True)
        return self._free_slabs.pop()

    # -- ingestion -----------------------------------------------------

    def __call__(self, chunk) -> None:
        self.process_chunk(chunk)

    def process_chunk(self, chunk) -> None:
        """Stage one chunk — columnar (:class:`EventChunk`) or tuples."""
        if self._finalized:
            raise RuntimeError("detector already finalized")
        if not isinstance(chunk, EventChunk):
            chunk = list(chunk)
            if not chunk:
                return
            if self._own_strings is None:
                self._own_strings = (
                    self._strings
                    if self._strings is not None
                    else StringTable()
                )
            chunk = EventChunk.from_tuples(chunk, self._own_strings)
        if chunk.rows.shape[0] == 0:
            return
        self._bind_strings(chunk.strings)
        self._buffer.append(chunk.rows)
        self._buffered += chunk.rows.shape[0]
        if self._buffered >= self.batch_events:
            self.flush()

    def flush(self) -> None:
        """Ship every buffered row to the workers."""
        if not self._buffer:
            return
        if len(self._buffer) == 1:
            rows = self._buffer[0]
        else:
            rows = np.concatenate(self._buffer)
        self._buffer = []
        self._buffered = 0
        self._dispatch(rows)

    def process_segment(self, path: str, strings: StringTable) -> None:
        """Detect one spilled segment file in stream order.

        Raw ``.npy`` segments broadcast as a path: every worker maps the
        file read-only and gathers its shard without the parent staging
        a copy.  Compressed ``.npz`` segments (and any segment under
        sampling, which must be filtered parent-side) route through the
        normal slab path.
        """
        if self._finalized:
            raise RuntimeError("detector already finalized")
        self._bind_strings(strings)
        self.flush()  # keep stream order: buffered rows ship first
        if path.endswith(".npy"):
            rows = np.load(path, mmap_mode="r")
        else:
            with np.load(path) as data:
                rows = data["rows"]
        if rows.shape[0] == 0:
            return
        if (
            self.sampler is not None
            or not path.endswith(".npy")
            or self._degraded is not None
        ):
            self._dispatch(np.asarray(rows))
            return
        self._ensure_workers()
        self._bookkeep(rows)
        names_sfx, sigs_sfx = self._suffixes(rows)
        self.shipped_events += rows.shape[0]
        if self._tracer is not None:
            self._tracer.complete(
                "segment.ship", "detect", self._tracer.now(), 0,
                args={"path": path, "rows": int(rows.shape[0])},
            )
        if self._metrics is not None:
            self._metrics.counter(
                "detect.segments_shipped", "spill segments broadcast by path"
            ).inc()
            self._metrics.counter(
                "detect.shipped_events", "event rows shipped to workers"
            ).inc(int(rows.shape[0]))
        if self._journal is not None:
            self._journal.record_segment(path)
        for task_q in self._task_qs:
            task_q.put(("npy", path, names_sfx, sigs_sfx))
        self._names_pub = self._names_sent
        self._sigs_pub = self._sigs_sent

    def _bookkeep(self, rows: np.ndarray) -> None:
        kinds = rows[:, COL_KIND]
        kind_counts = np.bincount(kinds, minlength=K_FREE + 1)
        self.stats.reads += int(kind_counts[K_READ])
        self.stats.writes += int(kind_counts[K_WRITE])
        if self.lifetime_analysis:
            self.stats.evictions += int(kind_counts[K_FREE])
        if self.track_control and (
            kind_counts[K_BGN] or kind_counts[K_END]
        ):
            track_control_rows(
                self.control, rows.T, kinds, self._strings.values
            )

    def _dispatch(self, rows: np.ndarray) -> None:
        if self._degraded is not None:
            # serial fallback: same bookkeeping + sampling, then feed
            # the incomplete shards' partition to the in-process profiler
            self._bookkeep(rows)
            if self.sampler is not None:
                rows = self.sampler.filter(rows)
                if rows.shape[0] == 0:
                    return
            self.shipped_events += rows.shape[0]
            self._feed_serial(rows)
            return
        self._ensure_workers()
        self._bookkeep(rows)
        if self.sampler is not None:
            rows = self.sampler.filter(rows)
            if rows.shape[0] == 0:
                return
        names_sfx, sigs_sfx = self._suffixes(rows)
        self.shipped_events += rows.shape[0]
        if self._metrics is not None:
            self._metrics.counter(
                "detect.shipped_events", "event rows shipped to workers"
            ).inc(int(rows.shape[0]))
        for start in range(0, rows.shape[0], self.slab_rows):
            piece = rows[start: start + self.slab_rows]
            idx = self._acquire_slab()
            if idx is None:
                # degraded while waiting: the journal already holds
                # every published piece (replayed by _degrade), so only
                # the unpublished remainder goes to the serial profiler
                self._feed_serial(rows[start:])
                return
            n = piece.shape[0]
            if self._journal is not None:
                self._journal.record_rows(piece)
            if self._tracer is not None:
                self._tracer.begin("slab.ship", "detect", rows=n, slab=idx)
            self._views[idx][:n] = piece
            self._pending[idx] = set(range(self.n_shards))
            self._slab_sent[idx] = time.monotonic()
            msg = ("rows", idx, n, names_sfx, sigs_sfx)
            names_sfx = sigs_sfx = ()  # suffixes ship once, in order
            for task_q in self._task_qs:
                task_q.put(msg)
            self._names_pub = self._names_sent
            self._sigs_pub = self._sigs_sent
            if self._tracer is not None:
                self._tracer.end()
            if self._metrics is not None:
                self._metrics.counter(
                    "detect.slabs_shipped", "slab messages published"
                ).inc()
                self._metrics.gauge(
                    "detect.slab_occupancy",
                    "free slabs after each acquire (0 = pool saturated)",
                ).set(len(self._free_slabs))

    # -- completion ----------------------------------------------------

    def _merge_done(self, frontier_parts: list, merged: set) -> None:
        """Fold newly arrived shard payloads in (streaming merge)."""
        for shard in sorted(self._done_shards - merged):
            payload = self._payloads.pop(shard)
            self.store.merge_from(payload["store"])
            frontier_parts.append(
                _frontier_from_arrays(payload["frontier"])
            )
            self.stats.deps_built += payload["deps_built"]
            self.collisions += payload["collisions"]
            self.worker_memory_bytes += payload["memory_bytes"]
            if self._tracer is not None and "spans" in payload:
                self._tracer.absorb(payload["spans"])
            if self._metrics is not None and "metrics" in payload:
                self._metrics.merge(
                    payload["metrics"], prefix=f"detect.shard{shard}."
                )
            merged.add(shard)

    def finalize(self) -> DependenceStore:
        """Drain, join the workers, merge stores + frontiers (§2.3.5)."""
        if self._finalized:
            return self.store
        self.flush()
        if self._procs is None and self._degraded is None:
            # nothing ever shipped
            self.frontier = ShadowFrontier()
            self._finalized = True
            return self.store
        frontier_parts: list[ShadowFrontier] = []
        merged: set[int] = set()
        if self._degraded is None:
            self._finishing = True
            now = time.monotonic()
            for shard in range(self.n_shards):
                # fresh grace period: the finish drain starts the clock
                self._last_seen[shard] = max(self._last_seen[shard], now)
                self._task_qs[shard].put(("finish",))
            if self._tracer is not None:
                self._tracer.begin("detect.merge", "detect")
            while (
                len(self._done_shards) < self.n_shards
                and self._degraded is None
            ):
                self._pump_result(block=True)
                # streaming merge: each shard folds in as it reports
                self._merge_done(frontier_parts, merged)
            if self._tracer is not None:
                self._tracer.end()
        # payloads that arrived before a mid-drain degradation still
        # count — the serial profiler covered only the incomplete shards
        self._merge_done(frontier_parts, merged)
        if self._degraded is not None:
            serial = self._degraded
            serial.flush()
            self.store.merge_from(serial.store)
            frontier_parts.append(serial.frontier)
            self.stats.deps_built += serial.stats.deps_built
            self.collisions += serial.collisions
            self.worker_memory_bytes += serial.memory_bytes()
        self.frontier = merge_frontiers(frontier_parts)
        if self._metrics is not None and self.sampler is not None:
            self._metrics.counter(
                "detect.sampled_kept", "rows kept by the read sampler"
            ).inc(self.sampler.kept_events)
            self._metrics.counter(
                "detect.sampled_total", "rows offered to the read sampler"
            ).inc(self.sampler.total_events)
        if self._procs is not None:
            for proc in self._procs:
                proc.join(timeout=self.policy.join_timeout)
            self._result_q.close()
        self._release_slabs()
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        self._finalized = True
        return self.store

    def result(self) -> DependenceStore:
        return self.finalize()

    def _cleanup_failure(self, detail: str) -> None:
        """Cleanup failures are reported, not swallowed."""
        self.recovery["cleanup_failures"] += 1
        if self._metrics is not None:
            self._metrics.counter(
                "resilience.cleanup_failures",
                "sharded-detector teardown steps that failed",
            ).inc()
        warnings.warn(
            f"sharded-detector cleanup failure: {detail}",
            RuntimeWarning,
            stacklevel=3,
        )

    def _release_slabs(self) -> None:
        self._views = []
        for slab in self._slabs:
            try:
                slab.close()
                slab.unlink()
            except OSError as exc:
                self._cleanup_failure(
                    f"releasing shared-memory slab {slab.name}: {exc}"
                )
        self._slabs = []
        self._free_slabs = []

    def abort(self) -> None:
        """Abandon the run: kill workers, release shared memory.

        Unlike :meth:`finalize` this discards all in-flight work.  Every
        teardown step that fails is logged via ``warnings`` and the
        ``resilience.cleanup_failures`` metric rather than swallowed;
        the shm-leak test scans ``/dev/shm`` for :attr:`shm_prefix` to
        prove nothing survives an abort after a mid-run worker kill.
        """
        if self._procs is not None and not self._finalized:
            for proc in self._procs:
                try:
                    if proc.is_alive():
                        proc.terminate()
                except OSError as exc:  # pragma: no cover - OS dependent
                    self._cleanup_failure(f"terminating worker: {exc}")
            for proc in self._procs:
                try:
                    proc.join(timeout=self.policy.join_timeout)
                except (OSError, AssertionError) as exc:
                    # pragma: no cover - OS dependent
                    self._cleanup_failure(f"joining worker: {exc}")
            try:
                self._result_q.close()
            except OSError as exc:  # pragma: no cover - OS dependent
                self._cleanup_failure(f"closing result queue: {exc}")
            self._release_slabs()
            if self._journal is not None:
                self._journal.close()
                self._journal = None
            self._finalized = True

    def close(self) -> None:
        """Alias of :meth:`abort` (the historical name)."""
        self.abort()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.abort()
        except Exception:
            # interpreter teardown: warnings/queues may already be gone
            pass

    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Parent-resident footprint (plus worker totals once merged)."""
        slab_bytes = len(self._slabs) * self.slab_rows * N_COLS * 8
        buffered = sum(block.nbytes for block in self._buffer)
        tables = 64 * len(self._sig_tuples)
        if self.sampler is not None:
            tables += (
                64 * len(self.sampler._seen) + self.sampler._guard.nbytes
            )
        return (
            buffered + slab_bytes + tables + self.store.memory_bytes()
            + self.worker_memory_bytes
        )


def detect_spilled_trace(sink, detector) -> None:
    """Stream a recorded trace sink through a detector, in order.

    A :class:`ShardedDetector` consumes raw-``.npy`` spill segments by
    path (workers map them zero-copy); every other (sink, detector)
    pairing falls back to ordinary chunk iteration.
    """
    segment_paths = getattr(sink, "segment_paths", None)
    if isinstance(detector, ShardedDetector) and segment_paths:
        strings = sink.strings
        for path in segment_paths:
            detector.process_segment(path, strings)
        for chunk in sink._resident:
            detector.process_chunk(chunk)
        return
    for chunk in sink.iter_chunks():
        detector.process_chunk(chunk)
