"""The DiscoPoP data-dependence profiler (Chapter 2).

Components:

* :mod:`repro.profiler.deps` — dependence records, runtime merging store
  (§2.3.5), text serialisation identity rules.
* :mod:`repro.profiler.shadow` — shadow-memory implementations: the exact
  ("perfect signature") baseline and the fixed-size signature (§2.3.2).
* :mod:`repro.profiler.serial` — the serial profiling algorithm
  (Algorithm 2) + control-structure tracking + variable lifetime analysis.
* :mod:`repro.profiler.skipping` — skipping repeatedly-executed memory
  operations in loops (§2.4) with its statistics.
* :mod:`repro.profiler.queues` — SPSC / MPSC queue variants (lock-based and
  lock-free-style) used by the parallel pipeline.
* :mod:`repro.profiler.parallel` — the producer/consumer parallel profiler
  (§2.3.3): address-sharded workers, hot-address redistribution, thread-mode
  for wall-clock runs and a deterministic mode with a calibrated cost model.
* :mod:`repro.profiler.races` — timestamp-inversion race flagging (§2.3.4).
* :mod:`repro.profiler.pet` — the Program Execution Tree (§2.3.6).
* :mod:`repro.profiler.reportfmt` — the NOM/BGN/END text format of Fig. 2.1.
* :mod:`repro.profiler.backends` — the backend registry unifying the
  serial/parallel × perfect/signature × skipping matrix behind one
  interface, selected via ``DiscoveryConfig.backend``.
"""

from repro.profiler.backends import (
    BACKENDS,
    BackendResult,
    ParallelBackend,
    ProfilerBackend,
    SerialBackend,
    make_backend,
    register_backend,
)
from repro.profiler.deps import (
    DepKey,
    DepType,
    Dependence,
    DependenceStore,
)
from repro.profiler.shadow import PerfectShadow, SignatureShadow
from repro.profiler.serial import SerialProfiler, profile_events, profile_source
from repro.profiler.skipping import SkippingProfiler, SkipStats
from repro.profiler.parallel import ParallelProfiler, ParallelReport
from repro.profiler.pet import PETBuilder, PETNode
from repro.profiler.reportfmt import format_report, parse_report

__all__ = [
    "BACKENDS",
    "BackendResult",
    "ParallelBackend",
    "ProfilerBackend",
    "SerialBackend",
    "make_backend",
    "register_backend",
    "DepKey",
    "DepType",
    "Dependence",
    "DependenceStore",
    "PerfectShadow",
    "SignatureShadow",
    "SerialProfiler",
    "profile_events",
    "profile_source",
    "SkippingProfiler",
    "SkipStats",
    "ParallelProfiler",
    "ParallelReport",
    "PETBuilder",
    "PETNode",
    "format_report",
    "parse_report",
]
