"""The Program Execution Tree (§2.3.6).

A PET represents one execution: function nodes (reached by "calling"
edges), loop nodes and block nodes (reached by "containing" edges).  Block
nodes are the leaf stretches of straight-line code between control
constructs.  Each node carries the metrics the paper lists — number of
executed (IR) memory instructions, number of data dependences, iteration
counts for loops — which the ranking step (§4.3) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.runtime.events import (
    COL_AUX,
    COL_KIND,
    COL_LINE,
    COL_NAME,
    COL_TID,
    EV_BGN,
    EV_END,
    EV_FENTRY,
    EV_FEXIT,
    EV_READ,
    EV_WRITE,
    EventChunk,
    K_BGN,
    K_END,
    K_FENTRY,
    K_FEXIT,
    K_WRITE,
)


@dataclass
class PETNode:
    """One node of the program execution tree."""

    node_id: int
    kind: str  # 'function' | 'loop' | 'branch' | 'block'
    name: str
    line: int = 0
    children: list["PETNode"] = field(default_factory=list)
    parent: Optional["PETNode"] = None
    #: metrics
    executions: int = 0
    iterations: int = 0
    memory_instructions: int = 0
    lines_touched: set = field(default_factory=set)

    def add_child(self, child: "PETNode") -> "PETNode":
        child.parent = self
        self.children.append(child)
        return child

    def walk(self) -> Iterable["PETNode"]:
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def subtree_memory_instructions(self) -> int:
        return self.memory_instructions + sum(
            c.subtree_memory_instructions for c in self.children
        )

    def edge_kind_to(self, child: "PETNode") -> str:
        """'calling' into functions, 'containing' otherwise."""
        return "calling" if child.kind == "function" else "containing"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PET {self.kind} {self.name} x{self.executions}>"


class PETBuilder:
    """Streams instrumentation events into a PET.

    One static construct gets one node per *position in the tree* (multiple
    executions are aggregated on the node — consistent with the profiler's
    merged view of loops, §2.3.5).
    """

    def __init__(self) -> None:
        self.root = PETNode(0, "root", "<execution>")
        self._next_id = 1
        #: per-thread stack of open nodes; thread 0 starts at root
        self._stacks: dict[int, list[PETNode]] = {}
        #: current block leaf per thread
        self._blocks: dict[int, Optional[PETNode]] = {}

    def _new_node(self, kind: str, name: str, line: int) -> PETNode:
        node = PETNode(self._next_id, kind, name, line)
        self._next_id += 1
        return node

    def _stack(self, tid: int) -> list[PETNode]:
        stack = self._stacks.get(tid)
        if stack is None:
            stack = [self.root]
            self._stacks[tid] = stack
        return stack

    def _enter(self, tid: int, kind: str, name: str, line: int) -> None:
        stack = self._stack(tid)
        top = stack[-1]
        # reuse an existing child for the same static construct
        for child in top.children:
            if child.kind == kind and child.name == name and child.line == line:
                node = child
                break
        else:
            node = top.add_child(self._new_node(kind, name, line))
        node.executions += 1
        stack.append(node)
        self._blocks[tid] = None

    def _leave(self, tid: int, kind: str, iterations: int = 0) -> None:
        stack = self._stack(tid)
        if len(stack) > 1:
            node = stack.pop()
            node.iterations += iterations
        self._blocks[tid] = None

    def __call__(self, chunk) -> None:
        self.process_chunk(chunk)

    def process_chunk(self, chunk) -> None:
        if isinstance(chunk, EventChunk):
            self._process_columnar(chunk)
        else:
            self._process_tuples(chunk)

    def _process_columnar(self, chunk: EventChunk) -> None:
        """Columnar PET construction with batched block attribution.

        The tree only changes shape at control markers; between two
        markers every memory event of a thread lands in the same block
        node and attributes to the same enclosing stack.  Runs of memory
        events are therefore split out vectorized and attributed *per
        run* — one counter bump and one ``set.update`` per (run, thread)
        instead of per event.  The resulting tree is identical to the
        tuple path's.
        """
        rows = chunk.rows
        n = rows.shape[0]
        if n == 0:
            return
        kinds = rows[:, COL_KIND]
        markers = np.nonzero(kinds > K_WRITE)[0].tolist()
        lines_col = rows[:, COL_LINE]
        tids_col = rows[:, COL_TID]
        # single-threaded chunks (the common case) skip the per-segment
        # thread split entirely: one vectorized check for the whole chunk
        tid0 = int(tids_col[0])
        chunk_single = bool((tids_col == tid0).all())
        names = chunk.strings.values
        start = 0
        for ci in markers + [n]:
            if ci > start:
                if chunk_single:
                    self._attribute_run(
                        tid0, lines_col[start:ci], ci - start
                    )
                else:
                    seg_tids = tids_col[start:ci]
                    uniq, first = np.unique(seg_tids, return_index=True)
                    single = uniq.shape[0] == 1
                    if not single:
                        # keep first-appearance order so node creation
                        # matches the tuple path's interleaving exactly
                        uniq = uniq[np.argsort(first)]
                    for tid in uniq.tolist():
                        if single:
                            seg_lines = lines_col[start:ci]
                            count = ci - start
                        else:
                            mask = seg_tids == tid
                            seg_lines = lines_col[start:ci][mask]
                            count = int(mask.sum())
                        self._attribute_run(tid, seg_lines, count)
            if ci < n:
                row = rows[ci].tolist()
                k = row[COL_KIND]
                if k == K_BGN:
                    kind = names[row[COL_NAME]]
                    self._enter(
                        row[COL_TID], kind, f"{kind}@{row[COL_LINE]}",
                        row[COL_LINE],
                    )
                elif k == K_END:
                    self._leave(
                        row[COL_TID], names[row[COL_NAME]], row[COL_AUX]
                    )
                elif k == K_FENTRY:
                    self._enter(
                        row[COL_TID], "function", names[row[COL_NAME]],
                        row[COL_LINE],
                    )
                elif k == K_FEXIT:
                    self._leave(row[COL_TID], "function")
            start = ci + 1

    def _attribute_run(self, tid: int, seg_lines, count: int) -> None:
        """Attribute a marker-free run of memory events to one thread."""
        block = self._blocks.get(tid)
        if block is None:
            stack = self._stack(tid)
            top = stack[-1]
            for child in top.children:
                if child.kind == "block":
                    block = child
                    break
            else:
                first_line = int(seg_lines[0])
                block = top.add_child(
                    self._new_node("block", f"block@{first_line}", first_line)
                )
            self._blocks[tid] = block
        block.memory_instructions += count
        block.lines_touched.update(seg_lines.tolist())
        for node in self._stack(tid)[1:]:
            node.memory_instructions += count

    def _process_tuples(self, chunk: Iterable[tuple]) -> None:
        for ev in chunk:
            kind = ev[0]
            if kind == EV_READ or kind == EV_WRITE:
                tid = ev[5]
                block = self._blocks.get(tid)
                if block is None:
                    stack = self._stack(tid)
                    top = stack[-1]
                    for child in top.children:
                        if child.kind == "block":
                            block = child
                            break
                    else:
                        block = top.add_child(
                            self._new_node("block", f"block@{ev[2]}", ev[2])
                        )
                    self._blocks[tid] = block
                block.memory_instructions += 1
                block.lines_touched.add(ev[2])
                # also attribute to enclosing constructs
                for node in self._stack(tid)[1:]:
                    node.memory_instructions += 1
            elif kind == EV_BGN:
                self._enter(ev[4], ev[2], f"{ev[2]}@{ev[3]}", ev[3])
            elif kind == EV_END:
                self._leave(ev[4], ev[2], ev[6])
            elif kind == EV_FENTRY:
                self._enter(ev[3], "function", ev[1], ev[2])
            elif kind == EV_FEXIT:
                self._leave(ev[2], "function")

    # ------------------------------------------------------------------

    def functions(self) -> list[PETNode]:
        return [n for n in self.root.walk() if n.kind == "function"]

    def loops(self) -> list[PETNode]:
        return [n for n in self.root.walk() if n.kind == "loop"]

    def format_tree(self, max_depth: int = 6) -> str:
        """ASCII rendering (Fig. 2.6 style)."""
        lines: list[str] = []

        def visit(node: PETNode, depth: int) -> None:
            if depth > max_depth:
                return
            indent = "  " * depth
            metrics = f"exec={node.executions}"
            if node.kind == "loop":
                metrics += f" iters={node.iterations}"
            if node.memory_instructions:
                metrics += f" mem={node.memory_instructions}"
            lines.append(f"{indent}{node.kind} {node.name} [{metrics}]")
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return "\n".join(lines)
