"""The end-to-end parallelism discovery pipeline (Fig. 1.3).

Phase 1 — compile MiniC to MIR (conversion to IR + static control-flow
analysis + instrumentation are all inside :mod:`repro.mir`), execute with
the profiler attached: dynamic control-flow info, data dependences (with
runtime merging and lifetime analysis) and the trace for CU construction.

Phase 2 — build CUs (top-down), classify loops (DOALL / DOACROSS), detect
SPMD/MPMD tasks per function container over call-site-anchored dependences.

Phase 3 — rank everything (instruction coverage, local speedup, CU
imbalance) and emit suggestions.

This module is the *legacy facade*: the staged implementation lives in
:mod:`repro.engine` (:class:`~repro.engine.core.DiscoveryEngine`), whose
phases are independently runnable and cached.  ``discover()`` /
``discover_source()`` below simply run every phase in one shot and return
the assembled :class:`~repro.engine.artifacts.DiscoveryResult` — exactly
the behaviour callers always had.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.artifacts import DiscoveryResult, FunctionTaskAnalysis
from repro.engine.config import DiscoveryConfig
from repro.engine.core import (
    MPMD_MIN_COVERAGE,
    MPMD_MIN_SPEEDUP,
    DiscoveryEngine,
)
from repro.mir.lowering import compile_source
from repro.mir.module import Module

__all__ = [
    "MPMD_MIN_COVERAGE",
    "MPMD_MIN_SPEEDUP",
    "DiscoveryResult",
    "FunctionTaskAnalysis",
    "discover",
    "discover_source",
]


def discover(
    module: Module,
    *,
    entry: str = "main",
    n_threads: int = 4,
    signature_slots: Optional[int] = None,
    keep_trace: bool = False,
    vm_kwargs: Optional[dict] = None,
) -> DiscoveryResult:
    """Run the full three-phase pipeline on a compiled module."""
    config = DiscoveryConfig(
        entry=entry,
        n_threads=n_threads,
        signature_slots=signature_slots,
        keep_trace=keep_trace,
        vm_kwargs=vm_kwargs or {},
    )
    return DiscoveryEngine(module, config).run()


def discover_source(source: str, **kwargs) -> DiscoveryResult:
    """Convenience: compile MiniC source and run discovery."""
    return discover(compile_source(source), **kwargs)
