"""The end-to-end parallelism discovery pipeline (Fig. 1.3).

Phase 1 — compile MiniC to MIR (conversion to IR + static control-flow
analysis + instrumentation are all inside :mod:`repro.mir`), execute with
the profiler attached: dynamic control-flow info, data dependences (with
runtime merging and lifetime analysis) and the trace for CU construction.

Phase 2 — build CUs (top-down), classify loops (DOALL / DOACROSS), detect
SPMD/MPMD tasks per function container over call-site-anchored dependences.

Phase 3 — rank everything (instruction coverage, local speedup, CU
imbalance) and emit suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cu.graph import CUGraph, build_cu_graph, container_cus
from repro.cu.model import CURegistry
from repro.cu.topdown import TopDownBuilder
from repro.discovery.lifting import anchor_events
from repro.discovery.loops import LoopClass, LoopInfo, analyze_loops
from repro.discovery.ranking import (
    RankingScores,
    rank_suggestions,
    score_loop,
    score_task_graph,
)
from repro.discovery.suggestions import Suggestion
from repro.discovery.tasks import (
    SPMDTaskGroup,
    TaskGraph,
    find_mpmd_tasks,
    find_spmd_tasks,
)
from repro.mir.lowering import compile_source
from repro.mir.module import Module
from repro.profiler.deps import DependenceStore
from repro.profiler.pet import PETBuilder
from repro.profiler.serial import SerialProfiler
from repro.profiler.shadow import PerfectShadow, SignatureShadow
from repro.runtime.events import TraceSink
from repro.runtime.interpreter import VM

#: a task graph must promise at least this inherent speedup to be suggested
MPMD_MIN_SPEEDUP = 1.2
#: and represent at least this fraction of the program's work
MPMD_MIN_COVERAGE = 0.01


@dataclass
class FunctionTaskAnalysis:
    """Task-parallelism artefacts of one function container."""

    func: str
    region_id: int
    anchored_store: DependenceStore
    cu_graph: CUGraph
    spmd_groups: list[SPMDTaskGroup] = field(default_factory=list)
    task_graph: Optional[TaskGraph] = None


@dataclass
class DiscoveryResult:
    """Everything the pipeline produced, for inspection and benches."""

    module: Module
    return_value: object
    store: DependenceStore
    control: dict
    registry: CURegistry
    line_counts: dict
    total_instructions: int
    loops: list[LoopInfo]
    functions: dict[str, FunctionTaskAnalysis]
    suggestions: list[Suggestion]
    pet: PETBuilder
    #: task analyses for loop bodies that contain call sites (MPMD inside
    #: loops — the Fig. 4.10 FaceDetection shape), keyed by loop region id
    loop_tasks: dict = None
    trace: Optional[TraceSink] = None
    vm: Optional[VM] = None

    def loop_at(self, line: int) -> Optional[LoopInfo]:
        """The innermost analysed loop whose header is at ``line``."""
        candidates = [l for l in self.loops if l.start_line == line]
        return candidates[0] if candidates else None

    def suggestions_of_kind(self, kind: str) -> list[Suggestion]:
        return [s for s in self.suggestions if s.kind == kind]

    def format_report(self) -> str:
        from repro.discovery.suggestions import format_suggestions

        return format_suggestions(self.suggestions)


def discover(
    module: Module,
    *,
    entry: str = "main",
    n_threads: int = 4,
    signature_slots: Optional[int] = None,
    keep_trace: bool = False,
    vm_kwargs: Optional[dict] = None,
) -> DiscoveryResult:
    """Run the full three-phase pipeline on a compiled module."""
    # ---- Phase 1: execute with profiling --------------------------------
    trace = TraceSink()
    shadow = (
        PerfectShadow() if signature_slots is None
        else SignatureShadow(signature_slots)
    )
    profiler = SerialProfiler(shadow)
    pet = PETBuilder()

    def tee(chunk: list) -> None:
        trace(chunk)
        profiler.process_chunk(chunk)
        pet.process_chunk(chunk)

    vm = VM(module, tee, **(vm_kwargs or {}))
    profiler.sig_decoder = vm.loop_signature
    return_value = vm.run(entry)

    # ---- Phase 2: CUs + detection ----------------------------------------
    builder = TopDownBuilder(module)
    builder.process(trace.events())
    registry = builder.build()
    total_instructions = sum(builder.line_counts.values())

    loops = analyze_loops(
        module, profiler.store, registry, profiler.control, builder.line_counts
    )

    from repro.discovery.tasks import _call_sites

    def _analyze_container(name: str, region) -> FunctionTaskAnalysis:
        anchored_prof = SerialProfiler(PerfectShadow(), vm.loop_signature)
        # anchored line counts attribute a call's entire dynamic subtree to
        # its call site — the work a task node really carries
        anchored_counts: dict[int, int] = {}

        def tally(events):
            for ev in events:
                if ev[0] in ("R", "W"):
                    line = ev[2]
                    anchored_counts[line] = anchored_counts.get(line, 0) + 1
                yield ev

        anchored_prof.process_chunk(
            tally(anchor_events(trace.events(), module, region))
        )
        # each call site becomes its own CU: calls are the task units
        call_lines = frozenset(_call_sites(module, region))
        graph = build_cu_graph(
            registry,
            anchored_prof.store,
            module,
            region,
            isolate_lines=call_lines,
            line_counts=anchored_counts,
        )
        return FunctionTaskAnalysis(
            func=name,
            region_id=region.region_id,
            anchored_store=anchored_prof.store,
            cu_graph=graph,
            spmd_groups=find_spmd_tasks(
                module, region, graph, anchored_prof.store
            ),
            task_graph=find_mpmd_tasks(graph, region),
        )

    functions: dict[str, FunctionTaskAnalysis] = {}
    for name, func in module.functions.items():
        region = module.regions.get(func.region_id)
        if region is None or region.region_id not in registry.by_region:
            continue  # never executed
        functions[name] = _analyze_container(name, region)

    # loop bodies containing call sites are task containers too (the
    # FaceDetection frame loop of Fig. 4.10 is the canonical case)
    from repro.discovery.tasks import _call_sites

    loop_tasks: dict = {}
    for region in module.loops():
        if region.region_id not in registry.by_region:
            continue
        if not _call_sites(module, region):
            continue
        loop_tasks[region.region_id] = _analyze_container(
            region.func, region
        )

    # ---- Phase 3: suggestions + ranking ----------------------------------
    suggestions: list[Suggestion] = []
    for info in loops:
        if not info.is_parallelizable:
            continue
        region = module.regions[info.region_id]
        body_work = [
            cu.instructions
            for cu in container_cus(
                registry, module, region, builder.line_counts
            )
        ]
        scores = score_loop(info, total_instructions, n_threads, body_work)
        suggestions.append(
            Suggestion(
                kind=info.classification,
                func=info.func,
                start_line=info.start_line,
                end_line=info.end_line,
                scores=scores,
                loop=info,
            )
        )
    for analysis in list(functions.values()) + list(loop_tasks.values()):
        region = module.regions[analysis.region_id]
        for group in analysis.spmd_groups:
            if not group.independent:
                continue
            scores = RankingScores(
                instruction_coverage=min(
                    1.0,
                    sum(
                        analysis.cu_graph.cu(c).instructions
                        for c in group.cu_ids
                    )
                    / max(1, total_instructions),
                ),
                local_speedup=float(min(n_threads, len(group.call_lines))),
                cu_imbalance=0.0,
            )
            suggestions.append(
                Suggestion(
                    kind="SPMD",
                    func=analysis.func,
                    start_line=min(group.call_lines),
                    end_line=max(group.call_lines),
                    scores=scores,
                    spmd=group,
                )
            )
        tg = analysis.task_graph
        if tg is not None and tg.width >= 2 and len(tg.nodes) >= 2:
            scores = score_task_graph(tg, total_instructions, n_threads)
            if (
                tg.inherent_speedup >= MPMD_MIN_SPEEDUP
                and scores.instruction_coverage >= MPMD_MIN_COVERAGE
            ):
                suggestions.append(
                    Suggestion(
                        kind="MPMD",
                        func=analysis.func,
                        start_line=region.start_line,
                        end_line=region.end_line,
                        scores=scores,
                        task_graph=tg,
                    )
                )

    suggestions = rank_suggestions(suggestions)
    return DiscoveryResult(
        module=module,
        return_value=return_value,
        store=profiler.store,
        control=profiler.control,
        registry=registry,
        line_counts=builder.line_counts,
        total_instructions=total_instructions,
        loops=loops,
        functions=functions,
        suggestions=suggestions,
        pet=pet,
        loop_tasks=loop_tasks,
        trace=trace if keep_trace else None,
        vm=vm,
    )


def discover_source(source: str, **kwargs) -> DiscoveryResult:
    """Convenience: compile MiniC source and run discovery."""
    return discover(compile_source(source), **kwargs)
