"""Loop parallelism detection (§4.1).

DOALL (§4.1.1): a loop is DOALL when no read-after-write dependence is
carried across its iterations — every iteration's read phase is independent
of other iterations' write phases.  Two refinements from the paper:

* dependences on the loop *iteration variable* do not count (it is local to
  the loop per §3.2.5 unless the body writes it);
* *reductions* (``sum += f(i)`` patterns — carried RAW whose source and
  sink are the same line and whose variable is only touched there) do not
  prevent DOALL: they are resolved by reduction parallelization, and the
  suggestion records the reduction variable.

Carried WAR/WAW dependences do not prevent DOALL either — they are resolved
by privatization (§1.2.1: name dependences); the affected variables are
reported as privatization candidates.

DOACROSS (§4.1.2): loops whose carried RAW dependences have a regular
inter-iteration structure can still be parallelized by staggering
iterations.  We classify a non-DOALL loop as DOACROSS when its body
decomposes into more than one pipeline stage (CU-graph condensation levels)
or when the carried RAWs touch only a proper subset of the body's CUs —
then iteration i+1's early stages overlap iteration i's late stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from repro.cu.graph import CUGraph, build_cu_graph
from repro.cu.model import CURegistry
from repro.mir.module import Module, Region
from repro.profiler.deps import Dependence, DependenceStore, DepType


class LoopClass:
    DOALL = "DOALL"
    DOALL_REDUCTION = "DOALL(reduction)"
    DOACROSS = "DOACROSS"
    SEQUENTIAL = "SEQUENTIAL"


@dataclass
class LoopInfo:
    """Classification result for one loop region."""

    region_id: int
    func: str
    start_line: int
    end_line: int
    classification: str
    iterations: int = 0
    instructions: int = 0
    #: carried RAW dependences that block DOALL (after filtering)
    blocking: list[Dependence] = field(default_factory=list)
    #: variables resolvable by reduction parallelization
    reduction_vars: set = field(default_factory=set)
    #: variables resolvable by privatization (carried WAR/WAW only)
    private_vars: set = field(default_factory=set)
    #: pipeline stages for DOACROSS execution (CU condensation levels)
    stages: int = 1
    #: fraction of body work in stages not touched by carried RAWs
    parallel_fraction: float = 0.0

    @property
    def is_parallelizable(self) -> bool:
        return self.classification in (
            LoopClass.DOALL,
            LoopClass.DOALL_REDUCTION,
            LoopClass.DOACROSS,
        )

    @property
    def location(self) -> str:
        return f"{self.func}:{self.start_line}-{self.end_line}"

    def to_dict(self) -> dict:
        """Stable JSON form (sets sorted, dependences nested as dicts)."""
        return {
            "region_id": self.region_id,
            "func": self.func,
            "start_line": self.start_line,
            "end_line": self.end_line,
            "classification": self.classification,
            "iterations": self.iterations,
            "instructions": self.instructions,
            "blocking": [d.to_dict() for d in self.blocking],
            "reduction_vars": sorted(self.reduction_vars),
            "private_vars": sorted(self.private_vars),
            "stages": self.stages,
            "parallel_fraction": self.parallel_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LoopInfo":
        return cls(
            region_id=data["region_id"],
            func=data["func"],
            start_line=data["start_line"],
            end_line=data["end_line"],
            classification=data["classification"],
            iterations=data["iterations"],
            instructions=data["instructions"],
            blocking=[Dependence.from_dict(d) for d in data["blocking"]],
            reduction_vars=set(data["reduction_vars"]),
            private_vars=set(data["private_vars"]),
            stages=data["stages"],
            parallel_fraction=data["parallel_fraction"],
        )


def _iter_var_names(module: Module, region: Region) -> set:
    names = set()
    if region.iter_var is not None and not region.iter_var_written_in_body:
        names.add(module.symtab.variables[region.iter_var].name)
    # nested loops' iteration variables are equally harmless for this loop
    for child_id in region.children:
        child = module.regions[child_id]
        if child.kind == "loop":
            names |= _iter_var_names(module, child)
    return names


def _is_reduction(
    dep: Dependence,
    loop_deps: list[Dependence],
    array_names: set,
    region: Region,
    store: DependenceStore,
) -> bool:
    """A carried RAW is a reduction when it is a self-cycle on one line
    (``sum += ...``) over a *scalar* accumulator, no other carried RAW
    involves the variable from a different line, and the running value is
    never consumed elsewhere inside the loop.

    The scalar requirement distinguishes true reductions from single-line
    array recurrences (``c[i] = c[i-1] + ...``); the no-consumer requirement
    distinguishes them from recurrences whose intermediate values feed other
    computation (an LCG seed chain: ``seed = f(seed); key[i] = seed % m``
    is NOT a reduction even though its carried RAW is a one-line cycle).
    Reads after the loop are fine — that is where a reduction's result is
    used.
    """
    if dep.sink_line != dep.source_line:
        return False
    if dep.var in array_names:
        return False
    for other in loop_deps:
        if other.var != dep.var or other.type != DepType.RAW:
            continue
        if other.sink_line != dep.sink_line or other.source_line != dep.source_line:
            return False
    for other in store.involving_var(dep.var):
        if other.type != DepType.RAW:
            continue
        if (
            region.contains_line(other.sink_line)
            and other.source_line == dep.source_line
            and other.sink_line != dep.sink_line
        ):
            return False  # intermediate value consumed inside the loop
    return True


def analyze_loop(
    module: Module,
    region: Region,
    store: DependenceStore,
    registry: Optional[CURegistry] = None,
    *,
    iterations: int = 0,
    instructions: int = 0,
    line_counts: Optional[dict] = None,
) -> LoopInfo:
    """Classify one loop region from the merged dependence store."""
    carried = store.carried_by(region.region_id)
    iter_vars = _iter_var_names(module, region)
    array_names = {
        info.name
        for info in module.symtab.variables.values()
        if info.is_array or (info.kind == "param" and info.is_array)
    }

    raw_blockers: list[Dependence] = []
    reduction_vars: set = set()
    private_vars: set = set()
    carried_raws = [
        d for d in carried if d.type == DepType.RAW and d.var not in iter_vars
    ]
    for dep in carried:
        if dep.var in iter_vars:
            continue
        if dep.type == DepType.RAW:
            if _is_reduction(dep, carried_raws, array_names, region, store):
                reduction_vars.add(dep.var)
            else:
                raw_blockers.append(dep)
        else:  # WAR / WAW: name dependences, resolved by privatization
            private_vars.add(dep.var)
    # a variable cannot be both: RAW blockers trump privatization
    blocker_vars = {d.var for d in raw_blockers}
    private_vars -= blocker_vars
    reduction_vars -= blocker_vars

    info = LoopInfo(
        region_id=region.region_id,
        func=region.func,
        start_line=region.start_line,
        end_line=region.end_line,
        classification=LoopClass.SEQUENTIAL,
        iterations=iterations,
        instructions=instructions,
        blocking=raw_blockers,
        reduction_vars=reduction_vars,
        private_vars=private_vars,
    )

    if not raw_blockers:
        info.classification = (
            LoopClass.DOALL_REDUCTION if reduction_vars else LoopClass.DOALL
        )
        info.parallel_fraction = 1.0
        return info

    # DOACROSS assessment via the loop-body CU graph
    if registry is not None:
        graph = build_cu_graph(
            registry, store, module, region, line_counts=line_counts
        )
        if graph.cus:
            cond = graph.condensation()
            try:
                levels = list(nx.topological_generations(cond))
            except nx.NetworkXUnfeasible:  # pragma: no cover - cond is a DAG
                levels = []
            info.stages = max(1, len(levels))
            blocked_lines = {d.sink_line for d in raw_blockers} | {
                d.source_line for d in raw_blockers
            }
            total_work = sum(cu.instructions for cu in graph.cus) or 1
            blocked_work = sum(
                cu.instructions
                for cu in graph.cus
                if cu.lines & blocked_lines
            )
            info.parallel_fraction = max(0.0, 1.0 - blocked_work / total_work)
            if info.stages > 1 or info.parallel_fraction >= 0.5:
                info.classification = LoopClass.DOACROSS
    return info


def analyze_loops(
    module: Module,
    store: DependenceStore,
    registry: Optional[CURegistry] = None,
    control: Optional[dict] = None,
    line_counts: Optional[dict] = None,
) -> list[LoopInfo]:
    """Classify every executed loop in the module."""
    out: list[LoopInfo] = []
    for region in module.loops():
        iterations = 0
        if control and region.region_id in control:
            iterations = control[region.region_id].total_iterations
        if control is not None and region.region_id not in control:
            continue  # loop never executed
        instructions = 0
        if line_counts:
            instructions = sum(
                count
                for line, count in line_counts.items()
                if region.contains_line(line)
            )
        out.append(
            analyze_loop(
                module,
                region,
                store,
                registry,
                iterations=iterations,
                instructions=instructions,
                line_counts=line_counts,
            )
        )
    return out
