"""Parallelization suggestion records and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.discovery.loops import LoopClass, LoopInfo
from repro.discovery.ranking import RankingScores
from repro.discovery.tasks import SPMDTaskGroup, TaskGraph


@dataclass
class Suggestion:
    """One ranked parallelization opportunity."""

    kind: str  # 'DOALL' | 'DOALL(reduction)' | 'DOACROSS' | 'SPMD' | 'MPMD'
    func: str
    start_line: int
    end_line: int
    scores: Optional[RankingScores] = None
    loop: Optional[LoopInfo] = None
    spmd: Optional[SPMDTaskGroup] = None
    task_graph: Optional[TaskGraph] = None
    notes: list[str] = field(default_factory=list)
    #: transform-plan summary attached by the parallelize phase:
    #: {"plan_index", "transform", "feasible", "reason", ...}
    transform: Optional[dict] = None

    @property
    def location(self) -> str:
        return f"{self.func}:{self.start_line}-{self.end_line}"

    def to_dict(self) -> dict:
        """Stable JSON form; nested artefacts serialize recursively."""
        return {
            "kind": self.kind,
            "func": self.func,
            "start_line": self.start_line,
            "end_line": self.end_line,
            "scores": self.scores.to_dict() if self.scores else None,
            "loop": self.loop.to_dict() if self.loop else None,
            "spmd": self.spmd.to_dict() if self.spmd else None,
            "task_graph": (
                self.task_graph.to_dict() if self.task_graph else None
            ),
            "notes": list(self.notes),
            "transform": dict(self.transform) if self.transform else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Suggestion":
        return cls(
            kind=data["kind"],
            func=data["func"],
            start_line=data["start_line"],
            end_line=data["end_line"],
            scores=(
                RankingScores.from_dict(data["scores"])
                if data["scores"]
                else None
            ),
            loop=LoopInfo.from_dict(data["loop"]) if data["loop"] else None,
            spmd=(
                SPMDTaskGroup.from_dict(data["spmd"])
                if data["spmd"]
                else None
            ),
            task_graph=(
                TaskGraph.from_dict(data["task_graph"])
                if data["task_graph"]
                else None
            ),
            notes=list(data["notes"]),
            transform=(
                dict(data["transform"]) if data.get("transform") else None
            ),
        )

    def render(self) -> str:
        """Human-readable one-suggestion block, OpenMP-flavoured."""
        lines = [f"[{self.kind}] {self.location}"]
        if self.scores:
            lines.append(
                f"  coverage={self.scores.instruction_coverage:.1%} "
                f"local-speedup={self.scores.local_speedup:.2f} "
                f"imbalance={self.scores.cu_imbalance:.2f} "
                f"score={self.scores.combined:.3f}"
            )
        if self.loop is not None:
            pragma = self.pragma()
            if pragma:
                lines.append(f"  {pragma}")
            if self.loop.blocking:
                blockers = ", ".join(
                    f"{d.var}@{d.sink_line}<-{d.source_line}"
                    for d in self.loop.blocking[:4]
                )
                lines.append(f"  carried RAW: {blockers}")
            if self.loop.classification == LoopClass.DOACROSS:
                lines.append(
                    f"  pipeline stages: {self.loop.stages}, parallel "
                    f"fraction: {self.loop.parallel_fraction:.0%}"
                )
        if self.spmd is not None:
            call_list = ", ".join(f"line {l}" for l in self.spmd.call_lines)
            tag = "recursive " if self.spmd.is_recursive else ""
            lines.append(
                f"  {tag}task calls to {self.spmd.callee}() at {call_list}"
            )
        if self.task_graph is not None:
            lines.append(
                f"  task graph: {len(self.task_graph.nodes)} tasks, "
                f"width {self.task_graph.width}, inherent speedup "
                f"{self.task_graph.inherent_speedup:.2f}"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def pragma(self) -> str:
        """OpenMP-style annotation for loop suggestions."""
        if self.loop is None:
            if self.spmd is not None:
                return "#pragma omp task  // per call site"
            return ""
        clauses = []
        if self.loop.private_vars:
            clauses.append(f"private({', '.join(sorted(self.loop.private_vars))})")
        if self.loop.reduction_vars:
            clauses.append(
                f"reduction(+: {', '.join(sorted(self.loop.reduction_vars))})"
            )
        if self.loop.classification in (
            LoopClass.DOALL,
            LoopClass.DOALL_REDUCTION,
        ):
            return ("#pragma omp parallel for " + " ".join(clauses)).strip()
        if self.loop.classification == LoopClass.DOACROSS:
            # `ordered` is a clause like any other: rendered in the same
            # clause list, with no stray whitespace when it stands alone
            return (
                "#pragma omp parallel for "
                + " ".join(["ordered"] + clauses)
            ).strip()
        return ""


def format_suggestions(suggestions: list[Suggestion]) -> str:
    if not suggestions:
        return "(no parallelization opportunities found)"
    return "\n\n".join(
        f"#{i + 1} {s.render()}" for i, s in enumerate(suggestions)
    )
