"""Task parallelism detection (§4.2).

SPMD-style tasks (§4.2.1): several instances of the *same* computation that
can run concurrently — in practice call sites of the same function (most
prominently recursive calls, the BOTS pattern: ``fib(n-1)`` / ``fib(n-2)``)
between which no true-dependence path exists.

MPMD-style tasks (§4.2.2): *different* computations that can overlap.  The
CU graph is simplified by substituting its strongly connected components and
chains with single vertices (Fig. 4.5); the resulting DAG is the task graph,
and any level with more than one vertex exposes MPMD parallelism.  Control
dependences are respected by construction: CUs never cross control-region
boundaries, so tasks are formed within one region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from repro.cu.graph import CUGraph
from repro.mir.instructions import Opcode
from repro.mir.module import Module, Region


@dataclass
class SPMDTaskGroup:
    """Call sites of one function that may run as parallel tasks."""

    callee: str
    container_region: int
    call_lines: list[int]
    cu_ids: list[int]
    is_recursive: bool = False
    #: True when every pair of call-site CUs is RAW-independent
    independent: bool = True
    #: lines blocking independence (RAW paths between call sites), if any
    blockers: list[tuple] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "callee": self.callee,
            "container_region": self.container_region,
            "call_lines": list(self.call_lines),
            "cu_ids": list(self.cu_ids),
            "is_recursive": self.is_recursive,
            "independent": self.independent,
            "blockers": [list(b) for b in self.blockers],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SPMDTaskGroup":
        return cls(
            callee=data["callee"],
            container_region=data["container_region"],
            call_lines=list(data["call_lines"]),
            cu_ids=list(data["cu_ids"]),
            is_recursive=data["is_recursive"],
            independent=data["independent"],
            blockers=[tuple(b) for b in data["blockers"]],
        )


@dataclass
class TaskNode:
    """One vertex of the simplified task graph: a chain of SCCs of CUs."""

    node_id: int
    cu_ids: list[int]
    lines: set
    work: int = 0

    @property
    def label(self) -> str:
        lo = min(self.lines) if self.lines else 0
        hi = max(self.lines) if self.lines else 0
        return f"T{self.node_id}[{lo}-{hi}]"

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "cu_ids": list(self.cu_ids),
            "lines": sorted(self.lines),
            "work": self.work,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TaskNode":
        return cls(
            node_id=data["node_id"],
            cu_ids=list(data["cu_ids"]),
            lines=set(data["lines"]),
            work=data["work"],
        )


@dataclass
class TaskGraph:
    """Simplified CU graph (Fig. 4.5): SCCs and chains contracted."""

    nodes: list[TaskNode]
    edges: set  # (src_node_id, dst_node_id): src must finish before dst
    container_region: int = -1

    def graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        for node in self.nodes:
            g.add_node(node.node_id, task=node)
        g.add_edges_from(self.edges)
        return g

    def levels(self) -> list[list[TaskNode]]:
        g = self.graph()
        by_id = {n.node_id: n for n in self.nodes}
        return [
            [by_id[i] for i in generation]
            for generation in nx.topological_generations(g)
        ]

    @property
    def width(self) -> int:
        """Maximum number of tasks that may run concurrently."""
        levels = self.levels()
        return max((len(level) for level in levels), default=0)

    @property
    def total_work(self) -> int:
        return sum(n.work for n in self.nodes)

    @property
    def critical_path_work(self) -> int:
        """Work along the heaviest dependence path."""
        g = self.graph()
        by_id = {n.node_id: n for n in self.nodes}
        best: dict[int, int] = {}
        for node_id in nx.topological_sort(g):
            preds = list(g.predecessors(node_id))
            incoming = max((best[p] for p in preds), default=0)
            best[node_id] = incoming + by_id[node_id].work
        return max(best.values(), default=0)

    @property
    def inherent_speedup(self) -> float:
        cp = self.critical_path_work
        return self.total_work / cp if cp else 1.0

    def to_dict(self) -> dict:
        return {
            "nodes": [n.to_dict() for n in self.nodes],
            "edges": sorted(list(e) for e in self.edges),
            "container_region": self.container_region,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TaskGraph":
        return cls(
            nodes=[TaskNode.from_dict(n) for n in data["nodes"]],
            edges={tuple(e) for e in data["edges"]},
            container_region=data["container_region"],
        )


# ---------------------------------------------------------------------------
# SPMD
# ---------------------------------------------------------------------------


def call_sites(module: Module, region: Region) -> dict[int, str]:
    """line -> callee for calls lexically inside the region."""
    func = module.functions.get(region.func)
    if func is None:
        return {}
    out: dict[int, str] = {}
    for instr in func.code:
        if instr.op in (Opcode.CALL, Opcode.SPAWN) and region.contains_line(
            instr.line
        ):
            out[instr.line] = instr.a
    return out


#: backwards-compatible alias (the name predates the public API)
_call_sites = call_sites


def find_spmd_tasks(
    module: Module,
    region: Region,
    graph: CUGraph,
    anchored_store=None,
) -> list[SPMDTaskGroup]:
    """SPMD groups among the call sites of a container region.

    ``graph`` must be the CU graph over the *anchored* dependence store of
    the container (see :mod:`repro.discovery.lifting`), so dependences
    between call subtrees appear at the call sites.  Independence between
    two call sites is checked at *line* granularity on the anchored store's
    RAW edges: a true-dependence path connecting the two call lines (in
    either direction) serialises them; a joint successor (the combine step
    reading both results) does not — it is the task-wait point.
    """
    sites = call_sites(module, region)
    if not sites:
        return []

    # line-level RAW reachability (sink -> source = "depends on")
    line_raw = nx.DiGraph()
    if anchored_store is not None:
        for dep in anchored_store:
            if dep.type == "RAW" and dep.sink_line != dep.source_line:
                line_raw.add_edge(dep.sink_line, dep.source_line)

    def blocked(a: int, b: int) -> bool:
        if anchored_store is None:
            cu_a = graph.cu_of_line(a)
            cu_b = graph.cu_of_line(b)
            if cu_a is None or cu_b is None or cu_a.cu_id == cu_b.cu_id:
                return True
            raw = graph.raw_subgraph()
            return (
                cu_b.cu_id in nx.descendants(raw, cu_a.cu_id)
                or cu_a.cu_id in nx.descendants(raw, cu_b.cu_id)
            )
        if a not in line_raw or b not in line_raw:
            return False
        return b in nx.descendants(line_raw, a) or a in nx.descendants(
            line_raw, b
        )

    by_callee: dict[str, list[int]] = {}
    for line, callee in sorted(sites.items()):
        by_callee.setdefault(callee, []).append(line)

    groups: list[SPMDTaskGroup] = []
    for callee, lines in by_callee.items():
        recursive = callee == region.func
        if len(lines) < 2 and not recursive:
            continue
        if len(lines) < 2:
            continue
        cu_ids: list[int] = []
        for line in lines:
            cu = graph.cu_of_line(line)
            if cu is not None and cu.cu_id not in cu_ids:
                cu_ids.append(cu.cu_id)
        blockers: list[tuple] = []
        for i, a in enumerate(lines):
            for b in lines[i + 1:]:
                if blocked(a, b):
                    blockers.append((a, b))
        groups.append(
            SPMDTaskGroup(
                callee=callee,
                container_region=region.region_id,
                call_lines=lines,
                cu_ids=cu_ids,
                is_recursive=recursive,
                independent=not blockers,
                blockers=blockers,
            )
        )
    return groups


# ---------------------------------------------------------------------------
# MPMD
# ---------------------------------------------------------------------------


def find_mpmd_tasks(graph: CUGraph, region: Optional[Region] = None) -> TaskGraph:
    """Fig. 4.5 simplification: SCC condensation, then chain contraction."""
    cond = graph.condensation()  # nodes carry 'members' (cu ids)
    chains = graph.chains()
    chain_of: dict[int, int] = {}
    for chain_idx, chain in enumerate(chains):
        for cond_node in chain:
            chain_of[cond_node] = chain_idx
    # any condensation node not in a chain forms its own task
    next_chain = len(chains)
    for cond_node in cond.nodes:
        if cond_node not in chain_of:
            chain_of[cond_node] = next_chain
            chains.append([cond_node])
            next_chain += 1

    nodes: list[TaskNode] = []
    members_of_chain: dict[int, list[int]] = {}
    for cond_node, chain_idx in chain_of.items():
        members_of_chain.setdefault(chain_idx, []).extend(
            cond.nodes[cond_node]["members"]
        )
    for chain_idx, cu_ids in sorted(members_of_chain.items()):
        lines: set = set()
        work = 0
        for cu_id in cu_ids:
            cu = graph.cu(cu_id)
            lines |= set(cu.lines)
            work += cu.instructions
        nodes.append(TaskNode(chain_idx, sorted(cu_ids), lines, work))

    edges: set = set()
    for a, b in cond.edges:
        ca, cb = chain_of[a], chain_of[b]
        if ca != cb:
            # CU-graph edges point sink -> source (dependence direction);
            # task edges point source -> sink (execution order)
            edges.add((cb, ca))
    return TaskGraph(
        nodes, edges, container_region=region.region_id if region else -1
    )
