"""Call-site anchoring of memory events.

To find parallelism *between* calls (SPMD tasks between recursive calls,
MPMD tasks between pipeline-stage functions), dependences whose endpoints
lie inside callees must surface at the call sites in the container under
analysis — the paper gets this from the PET: "when examining parallelism
between two functions, data dependences within each of them can be easily
ignored".

:func:`anchor_events` rewrites each memory event's line to its *anchor*
within a container region: the line itself when the access executes directly
in the container's function, otherwise the call-site line (within the
container) of the call chain that led to the access.  Profiling the anchored
stream with the ordinary serial profiler then yields a dependence store in
container-line coordinates, ready for CU-graph task analysis.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.mir.module import Module, Region
from repro.runtime.events import (
    EV_FENTRY,
    EV_FEXIT,
    EV_READ,
    EV_SPAWN,
    EV_WRITE,
)


def anchor_events(
    events: Iterable[tuple], module: Module, container: Region
) -> Iterator[tuple]:
    """Yield memory/region events with lines rewritten to container anchors.

    Events executing outside any dynamic instance of the container are
    dropped.  Non-memory events inside the container pass through unchanged
    (so loop-context classification still works for the container's own
    loops).
    """
    # per-thread call stack: list of (func_name, call_line)
    call_stacks: dict[int, list[tuple[str, int]]] = {}
    container_func = container.func

    def anchor_for(tid: int, line: int) -> int | None:
        """Anchor of an access at `line` for thread `tid`, or None when the
        access is not under the container.

        Anchoring is relative to the *outermost* frame of the container's
        function: the whole dynamic subtree under a call at line L collapses
        onto L.  For recursive containers this folds the recursion tree onto
        the top instance's call sites — dependences between two recursive
        calls then appear as edges between their call lines, which is what
        SPMD task detection needs (§4.2.1).
        """
        stack = call_stacks.get(tid, [])
        for depth, (fname, _) in enumerate(stack):
            if fname != container_func:
                continue
            if depth == len(stack) - 1:
                # access executes directly in the container's function
                if container.contains_line(line):
                    return line
                return None
            call_line = stack[depth + 1][1]
            if container.contains_line(call_line):
                return call_line
            return None
        return None

    for ev in events:
        kind = ev[0]
        if kind == EV_READ or kind == EV_WRITE:
            anchor = anchor_for(ev[5], ev[2])
            if anchor is None:
                continue
            if anchor == ev[2]:
                yield ev
            else:
                yield (kind, ev[1], anchor, ev[3], ev[4], ev[5], ev[6], ev[7],
                       ev[8])
        elif kind == EV_FENTRY:
            call_stacks.setdefault(ev[3], []).append((ev[1], ev[5]))
        elif kind == EV_FEXIT:
            stack = call_stacks.get(ev[2])
            if stack:
                stack.pop()
        elif kind == EV_SPAWN:
            # spawned thread starts with the spawner's context conceptually,
            # but its accesses anchor through its own FENTRY call_line
            yield ev
        else:
            yield ev
