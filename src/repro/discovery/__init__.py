"""CU-based parallelism discovery (Chapter 4).

* :mod:`repro.discovery.loops` — DOALL (§4.1.1) and DOACROSS (§4.1.2)
  detection, with reduction recognition and privatization hints.
* :mod:`repro.discovery.lifting` — rewrites memory-event lines to their
  call-site anchors within a container region, so dependences between
  function calls surface at the call sites (the PET property §2.3.6 uses
  for inter-function parallelism).
* :mod:`repro.discovery.tasks` — SPMD (§4.2.1) and MPMD (§4.2.2) task
  detection on CU graphs (SCC condensation + chain contraction, Fig. 4.5).
* :mod:`repro.discovery.ranking` — instruction coverage, local speedup and
  CU imbalance (§4.3).
* :mod:`repro.discovery.suggestions` — suggestion records + OpenMP-style
  rendering.
* :mod:`repro.discovery.pipeline` — the end-to-end Phase 1→2→3 driver.
"""

from repro.discovery.loops import (
    LoopClass,
    LoopInfo,
    analyze_loop,
    analyze_loops,
)
from repro.discovery.tasks import (
    SPMDTaskGroup,
    TaskGraph,
    call_sites,
    find_mpmd_tasks,
    find_spmd_tasks,
)
from repro.discovery.ranking import RankingScores, rank_suggestions
from repro.discovery.suggestions import Suggestion
from repro.discovery.pipeline import (
    DiscoveryResult,
    FunctionTaskAnalysis,
    discover,
    discover_source,
)

__all__ = [
    "LoopClass",
    "LoopInfo",
    "analyze_loop",
    "analyze_loops",
    "SPMDTaskGroup",
    "TaskGraph",
    "call_sites",
    "find_mpmd_tasks",
    "find_spmd_tasks",
    "RankingScores",
    "rank_suggestions",
    "Suggestion",
    "DiscoveryResult",
    "FunctionTaskAnalysis",
    "discover",
    "discover_source",
]
