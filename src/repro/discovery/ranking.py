"""Ranking of parallelization targets (§4.3).

Three metrics:

* **Instruction coverage** (§4.3.1) — fraction of the program's executed
  (memory) instructions spent inside the suggested region; parallelizing a
  region that covers 1 % of the execution cannot speed the program up by
  more than 1 % no matter how well it scales.
* **Local speedup** (§4.3.2) — the speedup of the region *itself* under the
  suggested transformation on ``n_threads`` threads: iteration-bounded for
  DOALL, an Amdahl/pipeline bound for DOACROSS, work/critical-path for task
  graphs.
* **CU imbalance** (§4.3.3) — how unevenly the parallel work is split over
  CUs (coefficient of variation of CU work, Fig. 4.6); imbalanced
  suggestions waste threads on the short CUs while the long one dominates.

The combined score orders suggestions for the user: coverage × local
speedup, discounted by imbalance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.discovery.loops import LoopClass, LoopInfo
from repro.discovery.tasks import TaskGraph


@dataclass
class RankingScores:
    instruction_coverage: float
    local_speedup: float
    cu_imbalance: float

    @property
    def combined(self) -> float:
        return (
            self.instruction_coverage
            * self.local_speedup
            / (1.0 + self.cu_imbalance)
        )

    def to_dict(self) -> dict:
        return {
            "instruction_coverage": self.instruction_coverage,
            "local_speedup": self.local_speedup,
            "cu_imbalance": self.cu_imbalance,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RankingScores":
        return cls(**data)


def instruction_coverage(region_instructions: int, total_instructions: int) -> float:
    if total_instructions <= 0:
        return 0.0
    return min(1.0, region_instructions / total_instructions)


def cu_imbalance(workloads: Iterable[int]) -> float:
    """Coefficient of variation of parallel CU work: 0 = perfectly balanced
    (Fig. 4.6 left), larger = one CU dominates (Fig. 4.6 right)."""
    work = [w for w in workloads if w >= 0]
    if len(work) < 2:
        return 0.0
    mean = sum(work) / len(work)
    if mean == 0:
        return 0.0
    var = sum((w - mean) ** 2 for w in work) / len(work)
    return math.sqrt(var) / mean


def loop_local_speedup(info: LoopInfo, n_threads: int) -> float:
    """Local speedup of a loop suggestion on ``n_threads`` threads."""
    if info.classification in (LoopClass.DOALL, LoopClass.DOALL_REDUCTION):
        bound = info.iterations if info.iterations > 0 else n_threads
        return float(min(n_threads, max(1, bound)))
    if info.classification == LoopClass.DOACROSS:
        # Amdahl-style bound: the fraction touched by carried RAWs runs
        # staggered, the rest overlaps; stages bound the overlap depth.
        p = info.parallel_fraction
        overlap = min(n_threads, max(2, info.stages))
        return 1.0 / ((1.0 - p) + p / overlap)
    return 1.0


def task_graph_local_speedup(graph: TaskGraph, n_threads: int) -> float:
    return float(min(n_threads, graph.inherent_speedup))


def score_loop(
    info: LoopInfo,
    total_instructions: int,
    n_threads: int = 4,
    body_cu_work: Optional[list[int]] = None,
) -> RankingScores:
    coverage = instruction_coverage(info.instructions, total_instructions)
    speedup = loop_local_speedup(info, n_threads)
    imbalance = cu_imbalance(body_cu_work or [])
    return RankingScores(coverage, speedup, imbalance)


def score_task_graph(
    graph: TaskGraph,
    total_instructions: int,
    n_threads: int = 4,
) -> RankingScores:
    coverage = instruction_coverage(graph.total_work, total_instructions)
    speedup = task_graph_local_speedup(graph, n_threads)
    imbalance = cu_imbalance([n.work for n in graph.nodes])
    return RankingScores(coverage, speedup, imbalance)


def rank_suggestions(suggestions: list) -> list:
    """Sort suggestion records by combined score, best first."""
    return sorted(
        suggestions,
        key=lambda s: s.scores.combined if s.scores else 0.0,
        reverse=True,
    )
