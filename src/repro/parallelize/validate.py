"""Speedup validation: did the transform preserve semantics, and pay off?

For every feasible plan entry the harness

1. runs the *original* module once, uninstrumented, as the sequential
   reference (final globals/heap segments, program output, return value,
   and the total interpreter steps as the sequential work-unit cost);
2. runs that entry's transformed module on a :class:`ParallelVM` with
   ``n_workers`` workers;
3. compares the final state **bit-for-bit**: return value, the entire
   globals segment, the heap segment, and the program output (both exact
   order and order-insensitive, since concurrent tasks may legitimately
   interleave ``print``); and
4. records the measured speedup in simulated work units and wall seconds
   next to the :mod:`repro.simulate.exec_model` prediction for the same
   suggestion — the *prediction error* becomes a first-class metric on
   :class:`~repro.engine.artifacts.DiscoveryResult`.

A validation that is not ``identical`` means the transform (or the
discovery that licensed it) was wrong for this program — exactly the
signal the paper's "potential parallelism" claims need.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.mir.module import Module
from repro.parallelize.plan import DoallPlan, TaskPlan, TransformPlan
from repro.parallelize.scheduler import ParallelVM
from repro.runtime.interpreter import VM
from repro.simulate.exec_model import (
    DEFAULT_MODEL,
    simulate_doall,
    simulate_task_graph,
    whole_program_speedup,
)


@dataclass
class SequentialReference:
    """Final state + cost of the uninstrumented sequential run."""

    return_value: object
    globals_segment: list
    heap_segment: list
    output: list
    units: int
    wall: float


def run_sequential_reference(
    module: Module, *, entry: str = "main", **vm_kwargs
) -> SequentialReference:
    vm_kwargs.setdefault("instrument", False)
    vm = VM(module, None, **vm_kwargs)
    t0 = time.perf_counter()
    value = vm.run(entry)
    wall = time.perf_counter() - t0
    return SequentialReference(
        return_value=value,
        globals_segment=list(vm.memory[: module.global_size]),
        heap_segment=list(vm.memory[vm.layout.heap_base :]),
        output=list(vm.output),
        units=vm.total_steps,
        wall=wall,
    )


@dataclass
class ValidationReport:
    """Outcome of executing one transformed suggestion."""

    kind: str
    func: str
    start_line: int
    end_line: int
    region_id: int
    feasible: bool
    reason: Optional[str] = None
    n_workers: int = 0
    #: state comparison against the sequential reference
    identical: bool = False
    return_match: bool = False
    globals_match: bool = False
    heap_match: bool = False
    output_match: bool = False
    #: exact-order output match (may be False while output_match is True
    #: when concurrent tasks interleave prints)
    output_order_match: bool = False
    mismatches: list[str] = field(default_factory=list)
    #: simulated work units (MIR instructions)
    seq_units: int = 0
    par_units: int = 0
    measured_speedup: float = 0.0
    #: wall seconds (interpreter overhead included; simulated units are
    #: the headline metric)
    seq_wall: float = 0.0
    par_wall: float = 0.0
    wall_speedup: float = 0.0
    #: exec_model prediction of the *region's* local speedup
    predicted_local_speedup: float = 0.0
    #: exec_model prediction composed over the whole program (Amdahl with
    #: the suggestion's instruction coverage) — comparable to ``measured``
    predicted_speedup: float = 0.0
    #: (predicted - measured) / measured
    prediction_error: float = 0.0
    scheduler: dict = field(default_factory=dict)

    @property
    def location(self) -> str:
        return f"{self.func}:{self.start_line}-{self.end_line}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "func": self.func,
            "start_line": self.start_line,
            "end_line": self.end_line,
            "region_id": self.region_id,
            "feasible": self.feasible,
            "reason": self.reason,
            "n_workers": self.n_workers,
            "identical": self.identical,
            "return_match": self.return_match,
            "globals_match": self.globals_match,
            "heap_match": self.heap_match,
            "output_match": self.output_match,
            "output_order_match": self.output_order_match,
            "mismatches": list(self.mismatches),
            "seq_units": self.seq_units,
            "par_units": self.par_units,
            "measured_speedup": self.measured_speedup,
            "seq_wall": self.seq_wall,
            "par_wall": self.par_wall,
            "wall_speedup": self.wall_speedup,
            "predicted_local_speedup": self.predicted_local_speedup,
            "predicted_speedup": self.predicted_speedup,
            "prediction_error": self.prediction_error,
            "scheduler": dict(self.scheduler),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ValidationReport":
        return cls(**data)

    def render(self) -> str:
        head = f"[{self.kind}] {self.location}"
        if not self.feasible:
            return f"{head}: not transformed ({self.reason})"
        verdict = "IDENTICAL" if self.identical else "STATE MISMATCH"
        lines = [
            f"{head}: {verdict} on {self.n_workers} workers",
            f"  speedup: measured {self.measured_speedup:.2f}x "
            f"(simulated units {self.seq_units} -> {self.par_units}), "
            f"predicted {self.predicted_speedup:.2f}x, "
            f"error {self.prediction_error:+.1%}",
            f"  wall: {self.seq_wall * 1e3:.1f}ms -> "
            f"{self.par_wall * 1e3:.1f}ms",
        ]
        for mismatch in self.mismatches[:4]:
            lines.append(f"  mismatch: {mismatch}")
        return "\n".join(lines)


def _predict(
    entry, n_workers: int, suggestion=None, iteration_costs=None
) -> float:
    """exec_model prediction for one plan entry."""
    if isinstance(entry, DoallPlan):
        n_chunks = len(entry.chunks) or None
        if iteration_costs:
            # the trace-measured per-iteration distribution, chunked at
            # the transform's real granularity
            return simulate_doall(
                iteration_costs, n_workers, DEFAULT_MODEL,
                n_chunks=n_chunks,
            )
        iters = max(1, entry.iterations)
        if suggestion is not None and suggestion.loop is not None:
            body = suggestion.loop.instructions
        else:
            body = iters
        per_iter = max(1.0, body / iters)
        return simulate_doall(
            [per_iter] * iters, n_workers, DEFAULT_MODEL, n_chunks=n_chunks
        )
    if isinstance(entry, TaskPlan):
        if suggestion is not None and suggestion.task_graph is not None:
            return simulate_task_graph(
                suggestion.task_graph, n_workers, DEFAULT_MODEL
            )
        # reconstruct a graph-free bound from the specs: work over the
        # heaviest dependence chain
        total = sum(t.work for t in entry.tasks) or 1
        best: dict[int, int] = {}
        for spec in sorted(entry.tasks, key=lambda t: t.node_id):
            incoming = max((best.get(d, 0) for d in spec.deps), default=0)
            best[spec.node_id] = incoming + max(1, spec.work)
        cp = max(best.values(), default=1)
        return total / cp
    return 1.0


def _compare(report: ValidationReport, seq: SequentialReference, vm, module):
    par_globals = list(vm.memory[: module.global_size])
    par_heap = list(vm.memory[vm.layout.heap_base :])
    report.globals_match = par_globals == seq.globals_segment
    report.heap_match = par_heap == seq.heap_segment
    report.output_order_match = list(vm.output) == seq.output
    report.output_match = sorted(map(repr, vm.output)) == sorted(
        map(repr, seq.output)
    )
    if not report.globals_match:
        diffs = [
            i
            for i, (a, b) in enumerate(
                zip(par_globals, seq.globals_segment)
            )
            if a != b
        ]
        report.mismatches.append(
            f"globals differ at {len(diffs)} addresses "
            f"(first: {diffs[:5]})"
        )
    if not report.heap_match:
        report.mismatches.append("heap segment differs")
    if not report.output_match:
        report.mismatches.append(
            f"output differs ({len(vm.output)} vs {len(seq.output)} records)"
        )
    if not report.return_match:
        report.mismatches.append("return value differs")
    report.identical = (
        report.return_match
        and report.globals_match
        and report.heap_match
        and report.output_match
    )


def validate_entry(
    plan: TransformPlan,
    index: int,
    seq: SequentialReference,
    *,
    n_workers: Optional[int] = None,
    entry_func: str = "main",
    suggestion=None,
    quantum: int = 256,
    vm_kwargs: Optional[dict] = None,
    iteration_costs: Optional[list] = None,
    tracer=None,
) -> ValidationReport:
    """Execute and validate one plan entry against the sequential run.

    ``iteration_costs`` is the loop's trace-measured per-iteration step
    distribution (:func:`repro.simulate.exec_model.loop_iteration_costs`);
    when present, the prediction composes in *step space* against the
    sequential reference instead of Amdahl over memory-instruction
    coverage — the same units the measured speedup is computed in.
    """
    vm_kwargs = dict(vm_kwargs or {})
    # the scheduler drives threads with its own tick quantum
    vm_kwargs.pop("quantum", None)
    plan_entry = plan.entries[index]
    workers = n_workers if n_workers is not None else plan.n_workers
    report = ValidationReport(
        kind=plan_entry.kind,
        func=plan_entry.func,
        start_line=plan_entry.start_line,
        end_line=plan_entry.end_line,
        region_id=plan_entry.region_id,
        feasible=plan_entry.feasible,
        reason=plan_entry.reason,
        n_workers=workers,
    )
    if not plan_entry.feasible:
        return report
    module = plan.modules.get(index)
    if module is None:
        report.feasible = False
        report.reason = "transformed module not available (reloaded plan?)"
        return report

    vm = ParallelVM(
        module, plan, n_workers=workers, quantum=quantum,
        tracer=tracer, **vm_kwargs
    )
    t0 = time.perf_counter()
    try:
        value = vm.run(entry_func)
    except Exception as exc:  # runtime failure is a validation failure
        report.mismatches.append(f"parallel execution failed: {exc}")
        report.reason = f"execution failed: {exc}"
        return report
    report.par_wall = time.perf_counter() - t0
    report.return_match = value == seq.return_value
    _compare(report, seq, vm, module)

    report.seq_units = seq.units
    report.par_units = vm.stats.makespan_units
    report.measured_speedup = (
        seq.units / vm.stats.makespan_units
        if vm.stats.makespan_units
        else 0.0
    )
    report.seq_wall = seq.wall
    report.wall_speedup = (
        seq.wall / report.par_wall if report.par_wall else 0.0
    )
    local = _predict(plan_entry, workers, suggestion, iteration_costs)
    report.predicted_local_speedup = local
    if iteration_costs and isinstance(plan_entry, DoallPlan) and local > 0:
        # step-space composition: serial remainder + predicted parallel
        # makespan, over the same seq.units the measurement divides by
        work = float(sum(iteration_costs))
        denom = seq.units - work + work / local
        report.predicted_speedup = (
            seq.units / denom if denom > 0 else local
        )
    else:
        coverage = None
        if suggestion is not None and suggestion.scores is not None:
            coverage = suggestion.scores.instruction_coverage
        if coverage is not None:
            report.predicted_speedup = whole_program_speedup(
                [(coverage, local)]
            )
        else:
            report.predicted_speedup = local
    if report.measured_speedup > 0:
        report.prediction_error = (
            report.predicted_speedup - report.measured_speedup
        ) / report.measured_speedup
    report.scheduler = vm.stats.to_dict()
    return report


def validate_plan(
    module: Module,
    plan: TransformPlan,
    *,
    n_workers: Optional[int] = None,
    entry: str = "main",
    suggestions: Optional[list] = None,
    quantum: int = 256,
    seed: int = 12345,
    vm_kwargs: Optional[dict] = None,
    seq: Optional[SequentialReference] = None,
    iteration_costs: Optional[dict] = None,
    tracer=None,
) -> list[ValidationReport]:
    """Validate every plan entry (one parallel run per feasible entry).

    ``seq`` lets callers reuse a cached sequential reference — it depends
    only on (module, entry, vm_kwargs), not on the plan or worker count.
    ``iteration_costs`` maps a loop region id to its trace-measured
    per-iteration cost list (engine callers recover it from the cached
    profile trace).
    """
    base_kwargs = dict(vm_kwargs or {})
    base_kwargs.setdefault("seed", seed)
    if seq is None:
        seq = run_sequential_reference(module, entry=entry, **base_kwargs)
    by_index: dict[int, object] = {}
    if suggestions:
        for s in suggestions:
            info = getattr(s, "transform", None)
            if info and info.get("plan_index") is not None:
                by_index[info["plan_index"]] = s
    costs_by_region = iteration_costs or {}
    reports = []
    for index in range(len(plan.entries)):
        plan_entry = plan.entries[index]
        reports.append(
            validate_entry(
                plan,
                index,
                seq,
                n_workers=n_workers,
                entry_func=entry,
                suggestion=by_index.get(index),
                quantum=quantum,
                vm_kwargs=base_kwargs,
                iteration_costs=costs_by_region.get(plan_entry.region_id),
                tracer=tracer,
            )
        )
    return reports


def format_validation_table(reports: list[ValidationReport]) -> str:
    if not reports:
        return "(nothing to validate: no transformable suggestions)"
    return "\n\n".join(r.render() for r in reports)
