"""Auto-parallelization subsystem: transform, execute, validate.

Closes the discover → transform → execute → validate loop over the
pipeline's ranked suggestions:

* :mod:`repro.parallelize.plan`       — JSON-serializable
  :class:`TransformPlan` artifacts describing what was (or could not be)
  transformed.
* :mod:`repro.parallelize.transforms` — MIR passes that outline DOALL
  iteration chunks (privatized frame, reduction recognition) and task-graph
  regions (spawn/join edges from the dependence store) into new functions,
  splicing ``pfork``/``ptask`` markers into a cloned module.
* :mod:`repro.parallelize.scheduler`  — :class:`ParallelVM`, a
  work-stealing worker pool layered over the interpreter that executes the
  forked tasks honoring task-graph edges, deterministically for a fixed
  seed, and measures the simulated-unit makespan.
* :mod:`repro.parallelize.validate`   — runs the sequential reference and
  each transformed module, compares final memory/output state bit-for-bit
  and records measured vs. :mod:`repro.simulate.exec_model`-predicted
  speedup (:class:`ValidationReport`).
"""

from repro.parallelize.plan import (
    ChunkSpec,
    DoallPlan,
    TaskPlan,
    TaskSpec,
    TransformPlan,
)
from repro.parallelize.scheduler import ParallelVM, SchedulerStats
from repro.parallelize.transforms import build_transform_plan
from repro.parallelize.validate import (
    SequentialReference,
    ValidationReport,
    format_validation_table,
    run_sequential_reference,
    validate_entry,
    validate_plan,
)

__all__ = [
    "ChunkSpec",
    "DoallPlan",
    "ParallelVM",
    "SchedulerStats",
    "SequentialReference",
    "TaskPlan",
    "TaskSpec",
    "TransformPlan",
    "ValidationReport",
    "build_transform_plan",
    "format_validation_table",
    "run_sequential_reference",
    "validate_entry",
    "validate_plan",
]
