"""Suggestion-driven MIR transform passes.

Two outlining passes turn ranked suggestions into executable parallel form,
each producing new functions in a *cloned* module (the original module is
never mutated — it remains the sequential reference):

**DOALL iteration chunking** — a canonical counted loop
(``for (i = c0; cond; i += s)``) is split into ``n_workers`` chunk
functions.  Each chunk function contains a fresh init (``i = lo_k``), a
synthesized bound check (``i < hi_k``) and a copy of the loop's body and
latch blocks.  The loop's ``enter`` marker in the parent function is
replaced by a ``pfork`` instruction; at run time the scheduler forks one
task per chunk with a *privatized copy of the parent frame* (every local —
scalars, nested-loop counters, temporaries — becomes chunk-private, the
transform analogue of OpenMP ``private``) and a snapshot of the parent's
registers (array-parameter base addresses).  Recognized reductions are
merged at the join (``v0 + Σ(v_k − v0)`` in chunk order); privatized
scalars follow ``lastprivate`` semantics (the last chunk's final value
survives); global scalar reductions/privates are redirected to fresh frame
slots with a copy-in prologue so chunks never race on them.

**Task-region outlining** — an MPMD task graph over a container region is
outlined one function per task node: the instructions attributed to the
node's source lines are copied, task-boundary control flow is rewritten to
return, and the container's region start is replaced by a ``ptask``
instruction.  Task functions *share* the parent frame (tasks communicate
through it, exactly like the sequential code) and the scheduler honors the
task graph's spawn/join edges, which come from the profiled dependence
store.

Both passes are conservative: any shape they cannot prove safe (non-unit
loop structure, returns inside the region, register values flowing across
task boundaries, un-privatizable shared state) yields an *infeasible* plan
entry with the reason recorded, never a silently wrong transform.  The
validation harness (:mod:`repro.parallelize.validate`) is the final net:
every applied transform is checked bit-for-bit against the sequential run.
"""

from __future__ import annotations

from typing import Optional

from repro.discovery.suggestions import Suggestion
from repro.mir.instructions import Instr, Opcode
from repro.mir.module import Function, Module, Region
from repro.parallelize.plan import (
    ChunkSpec,
    DoallPlan,
    TaskPlan,
    TaskSpec,
    TransformPlan,
)

#: opcodes that may not appear inside outlined code
_FORBIDDEN = {
    Opcode.RET,
    Opcode.SPAWN,
    Opcode.JOIN,
    Opcode.LOCK,
    Opcode.UNLOCK,
    Opcode.PFORK,
    Opcode.PTASK,
}

#: header-block opcodes allowed before the bound check we replace
_PURE_OPS = {Opcode.LOAD, Opcode.BIN, Opcode.UN, Opcode.CONST, Opcode.ADDR}

#: builtins whose results depend on global execution order — running them
#: concurrently would diverge from the sequential reference by construction
_UNSAFE_BUILTINS = {"rand", "rand_", "alloc", "free"}


def _check_outlinable(instr: Instr) -> None:
    if instr.op in _FORBIDDEN:
        raise Infeasible(
            f"outlined code contains {instr.op!r} at line {instr.line}"
        )
    if instr.op == Opcode.CALLB and instr.a in _UNSAFE_BUILTINS:
        raise Infeasible(
            f"outlined code calls order-sensitive builtin {instr.a!r} "
            f"at line {instr.line}"
        )


class Infeasible(Exception):
    """Raised by the outliners when a shape cannot be transformed safely."""


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _copy_instr(instr: Instr) -> Instr:
    b = list(instr.b) if isinstance(instr.b, list) else instr.b
    return Instr(
        instr.op,
        dest=instr.dest,
        a=instr.a,
        b=b,
        c=instr.c,
        line=instr.line,
        var=instr.var,
        var_id=instr.var_id,
        op_id=instr.op_id,
    )


def _clone_function(func: Function, code: Optional[list] = None) -> Function:
    clone = Function(func.name, func.params, func.return_type)
    clone.frame_slots = dict(func.frame_slots)
    clone.frame_size = func.frame_size
    clone.n_regs = func.n_regs
    clone.param_regs = list(func.param_regs)
    clone.code = list(func.code) if code is None else code
    clone.block_starts = dict(func.block_starts)
    clone.region_id = func.region_id
    clone.start_line = func.start_line
    clone.end_line = func.end_line
    return clone


def _clone_module(module: Module) -> Module:
    """Shallow module clone: untouched functions and the region tree are
    shared (read-only); the functions dict and mem-ops table are private so
    the pass can add outlined functions without mutating the original."""
    clone = Module(module.name, module.symtab, module.file_id)
    clone.functions = dict(module.functions)
    clone.global_offsets = dict(module.global_offsets)
    clone.global_init = dict(module.global_init)
    clone.global_size = module.global_size
    clone.regions = module.regions
    clone.mem_ops = dict(module.mem_ops)
    clone.source = module.source
    return clone


def _fresh_op_id(module: Module) -> int:
    op_id = max(module.mem_ops, default=-1) + 1
    return op_id


def _leaders(func: Function) -> list[int]:
    return sorted(set(func.block_starts.values()))


def _block_of(leaders: list[int], idx: int) -> tuple[int, int]:
    """(start, end) of the basic block containing code index ``idx``."""
    import bisect

    pos = bisect.bisect_right(leaders, idx) - 1
    start = leaders[pos]
    end = leaders[pos + 1] if pos + 1 < len(leaders) else None
    return start, end


def _find_marker(code: list, op: str, region_id: int) -> int:
    for i, instr in enumerate(code):
        if instr.op == op and instr.a == region_id:
            return i
    raise Infeasible(f"no {op} marker for region {region_id}")


def _operand_regs(operand) -> list[int]:
    if isinstance(operand, tuple) and operand and operand[0] == "r":
        return [operand[1]]
    return []


def _reg_uses(instr: Instr) -> list[int]:
    """Registers an instruction reads."""
    uses: list[int] = []
    op = instr.op
    if op == Opcode.LOAD:
        if instr.a[0] == "a":
            uses.append(instr.a[1])
    elif op == Opcode.STORE:
        if instr.a[0] == "a":
            uses.append(instr.a[1])
        uses.extend(_operand_regs(instr.b))
    elif op == Opcode.BIN:
        uses.extend(_operand_regs(instr.b))
        uses.extend(_operand_regs(instr.c))
    elif op == Opcode.UN:
        uses.extend(_operand_regs(instr.b))
    elif op == Opcode.ADDR:
        if instr.a == "r":
            uses.append(instr.b)
        uses.extend(_operand_regs(instr.c))
    elif op == Opcode.BR:
        uses.extend(_operand_regs(instr.a))
    elif op in (Opcode.CALL, Opcode.CALLB):
        for operand in instr.b:
            uses.extend(_operand_regs(operand))
    elif op == Opcode.RET:
        if instr.a is not None:
            uses.extend(_operand_regs(instr.a))
    return uses


def _check_register_closure(
    instrs: list[Instr], func: Function, what: str
) -> None:
    """Every register read before any write inside the outlined code must be
    an array-parameter base register — the only registers the lowering keeps
    live across statements.  Those are snapshotted at fork time."""
    stable = {r for r in func.param_regs if r is not None}
    written: set[int] = set()
    for instr in instrs:
        for reg in _reg_uses(instr):
            if reg not in written and reg not in stable:
                raise Infeasible(
                    f"{what}: register r{reg} flows in from outside the "
                    "outlined code"
                )
        if instr.dest is not None:
            written.add(instr.dest)


def _var_id_by_name(module: Module, func: Function, name: str) -> Optional[int]:
    """Resolve a dependence-store variable name, preferring the function's
    frame-resident variable over a same-named global."""
    local = None
    for vid in func.frame_slots:
        if module.var(vid).name == name:
            local = vid
            break
    if local is not None:
        return local
    for vid, _off in module.global_offsets.items():
        if module.var(vid).name == name:
            return vid
    return None


def _other_function_touches(
    module: Module, parent: Function, var_id: int
) -> bool:
    """Does any function other than ``parent`` load/store ``var_id``?"""
    for func in module.functions.values():
        if func.name == parent.name:
            continue
        for instr in func.code:
            if instr.is_memory() and instr.var_id == var_id:
                return True
    return False


# ---------------------------------------------------------------------------
# DOALL iteration chunking
# ---------------------------------------------------------------------------


def _loop_shape(func: Function, region: Region):
    """Decompose a canonical counted loop; raises Infeasible otherwise.

    Returns (enter_idx, exit_idx, header_start, header_br_idx, body_start,
    iter_slot, init_value, step, latch_start, iter_idx).
    """
    code = func.code
    rid = region.region_id
    if region.iter_var is None:
        raise Infeasible("no iteration variable (while loop)")
    if region.iter_var_written_in_body:
        raise Infeasible("iteration variable written in the loop body")
    iter_slot = func.frame_slots.get(region.iter_var)
    if iter_slot is None:
        raise Infeasible("iteration variable is not frame-resident")

    enter_idx = _find_marker(code, Opcode.ENTER, rid)
    exit_idx = _find_marker(code, Opcode.EXIT, rid)
    iter_idx = _find_marker(code, Opcode.ITER, rid)
    if code[iter_idx + 1].op != Opcode.JMP:
        raise Infeasible("latch does not jump back to the header")
    header_start = code[iter_idx + 1].a

    # init: exactly `i = <const>` followed by the jump into the header
    init = code[enter_idx + 1]
    if not (
        init.op == Opcode.STORE
        and init.a == ("f", iter_slot)
        and init.b[0] == "i"
    ):
        raise Infeasible("loop init is not a constant store to the counter")
    init_value = init.b[1]
    if not (
        code[enter_idx + 2].op == Opcode.JMP
        and code[enter_idx + 2].a == header_start
    ):
        raise Infeasible("unexpected code between loop init and header")

    # header: pure condition evaluation ending in `br body, exit`
    i = header_start
    while i < len(code) and not code[i].is_terminator():
        if code[i].op not in _PURE_OPS:
            raise Infeasible("loop condition has side effects")
        i += 1
    header_br_idx = i
    br = code[header_br_idx]
    if br.op != Opcode.BR or br.c != exit_idx:
        raise Infeasible("loop header does not end in a body/exit branch")
    body_start = br.b

    # latch: exactly `i = i ± <const>` before the iter marker
    leaders = _leaders(func)
    latch_start, _ = _block_of(leaders, iter_idx)
    step_code = code[latch_start:iter_idx]
    if len(step_code) != 3:
        raise Infeasible("loop step is not a single constant increment")
    ld, bi, st = step_code
    if not (
        ld.op == Opcode.LOAD
        and ld.a == ("f", iter_slot)
        and bi.op == Opcode.BIN
        and bi.a in ("+", "-")
        and st.op == Opcode.STORE
        and st.a == ("f", iter_slot)
        and st.b == ("r", bi.dest)
    ):
        raise Infeasible("loop step is not a single constant increment")
    operands = [bi.b, bi.c]
    if ("r", ld.dest) not in operands:
        raise Infeasible("loop step does not use the loaded counter")
    operands.remove(("r", ld.dest))
    if operands[0][0] != "i":
        raise Infeasible("loop step amount is not a constant")
    step = operands[0][1] if bi.a == "+" else -operands[0][1]
    if step == 0:
        raise Infeasible("loop step amount is zero")

    return (
        enter_idx,
        exit_idx,
        header_start,
        header_br_idx,
        body_start,
        iter_slot,
        init_value,
        step,
        latch_start,
        iter_idx,
    )


def _loop_blocks(
    func: Function, body_start: int, header_start: int, exit_idx: int
) -> list[int]:
    """Leaders of every block reachable inside the loop body (header and
    exit blocks excluded; the latch and any nested regions included)."""
    leaders = _leaders(func)
    code = func.code
    header_block, _ = _block_of(leaders, header_start)
    exit_block, _ = _block_of(leaders, exit_idx)
    start_block, _ = _block_of(leaders, body_start)
    seen = {start_block}
    stack = [start_block]
    while stack:
        leader = stack.pop()
        _, end = _block_of(leaders, leader)
        end = end if end is not None else len(code)
        term = code[end - 1] if end > leader else None
        succs: list[int] = []
        if term is None or not term.is_terminator():
            if end < len(code):
                succs = [end]
        elif term.op == Opcode.JMP:
            succs = [term.a]
        elif term.op == Opcode.BR:
            succs = [term.b, term.c]
        for succ in succs:
            block, _ = _block_of(leaders, succ)
            if block != succ:
                raise Infeasible("branch into the middle of a block")
            if block in (header_block, exit_block):
                continue
            if block not in seen:
                seen.add(block)
                stack.append(block)
    return sorted(seen)


def _resolve_privatized(
    module: Module,
    func: Function,
    loop,
    next_slot: int,
) -> tuple[dict, dict, int]:
    """Map reduction/private variable names to frame slots.

    Frame-resident variables already have slots (the whole frame is
    privatized).  Global *scalars* get a fresh frame slot appended to the
    chunk frame plus a copy-in prologue; anything else is infeasible.
    Returns (reduction_slots, private_slots, new_frame_size) where the slot
    dicts map name -> (slot, global_offset|None).
    """
    reduction_slots: dict[str, tuple] = {}
    private_slots: dict[str, tuple] = {}
    # a reduction variable usually also carries WAW/WAR deps; the reduction
    # merge subsumes its privatization
    plain_private = sorted(set(loop.private_vars) - set(loop.reduction_vars))
    for kind, names, out in (
        ("reduction", sorted(loop.reduction_vars), reduction_slots),
        ("private", plain_private, private_slots),
    ):
        for name in names:
            vid = _var_id_by_name(module, func, name)
            if vid is None:
                raise Infeasible(f"{kind} variable {name!r} not resolvable")
            info = module.var(vid)
            if info.size > 1 or info.is_array:
                raise Infeasible(
                    f"{kind} variable {name!r} is an array "
                    "(not privatizable)"
                )
            if vid in func.frame_slots:
                out[name] = (func.frame_slots[vid], None)
                continue
            g_off = module.global_offsets.get(vid)
            if g_off is None:
                raise Infeasible(f"{kind} variable {name!r} not resolvable")
            if _other_function_touches(module, func, vid):
                raise Infeasible(
                    f"global {kind} variable {name!r} is accessed by "
                    "another function"
                )
            out[name] = (next_slot, g_off)
            next_slot += 1
    return reduction_slots, private_slots, next_slot


def _def_before(code: list, idx: int, reg: int):
    """The nearest instruction before ``idx`` defining register ``reg``."""
    for i in range(idx - 1, -1, -1):
        if code[i].dest == reg:
            return code[i]
    return None


def _check_additive_reductions(
    func: Function, region: Region, names
) -> None:
    """The join merges reductions as ``v0 + Σ(v_k − v0)``, which is only
    correct for additive updates (``s += x`` / ``s = s - x``).  Any store
    to a reduction variable inside the loop whose value is not an
    additive combination of a load of the same variable is declined."""
    code = func.code
    for idx, instr in enumerate(code):
        if (
            instr.op != Opcode.STORE
            or instr.var not in names
            or not region.contains_line(instr.line)
        ):
            continue
        ok = False
        if instr.b[0] == "r":
            combine = _def_before(code, idx, instr.b[1])
            if combine is not None and combine.op == Opcode.BIN:
                operands = (
                    [combine.b, combine.c]
                    if combine.a == "+"
                    else [combine.b]  # subtraction: s must be the minuend
                    if combine.a == "-"
                    else []
                )
                for operand in operands:
                    if operand[0] != "r":
                        continue
                    src = _def_before(code, idx, operand[1])
                    if (
                        src is not None
                        and src.op == Opcode.LOAD
                        and src.var == instr.var
                    ):
                        ok = True
        if not ok:
            raise Infeasible(
                f"reduction over {instr.var!r} is not an additive update "
                f"at line {instr.line} (only +/- merges are supported)"
            )


def _check_local_arrays(module: Module, func: Function, region: Region) -> None:
    for vid in region.written_vars:
        info = module.var(vid)
        if vid in func.frame_slots and (info.is_array or info.size > 1):
            raise Infeasible(
                f"loop writes function-local array {info.name!r} "
                "(not privatizable)"
            )


def _build_chunk_function(
    module: Module,
    func: Function,
    region: Region,
    shape,
    chunk: ChunkSpec,
    step: int,
    redirects: dict[int, int],
    copy_in: list[tuple],
    extra_slots: int,
) -> Function:
    """Outline one iteration chunk ``[lo, hi)`` into a new function.

    ``redirects`` maps global-scalar addresses to private frame slots;
    ``copy_in`` is [(global_offset, slot)] prologue initialization.
    """
    (
        enter_idx,
        exit_idx,
        header_start,
        _header_br,
        body_start,
        iter_slot,
        _init_value,
        _step,
        _latch_start,
        _iter_idx,
    ) = shape
    code = func.code
    rid = region.region_id
    iter_name = module.var(region.iter_var).name

    blocks = _loop_blocks(func, body_start, header_start, exit_idx)
    leaders = _leaders(func)

    chunk_func = Function(chunk.function, [], func.return_type)
    chunk_func.frame_slots = dict(func.frame_slots)
    chunk_func.frame_size = func.frame_size + extra_slots
    chunk_func.param_regs = list(func.param_regs)
    chunk_func.region_id = func.region_id
    chunk_func.start_line = region.start_line
    chunk_func.end_line = region.end_line

    out: list[Instr] = []
    reg = func.n_regs  # fresh registers for prologue + synthesized header

    # prologue: enter the loop region, copy in privatized globals, i = lo
    out.append(Instr(Opcode.ENTER, a=rid, line=region.start_line))
    for g_off, slot in copy_in:
        out.append(Instr(Opcode.LOAD, dest=reg, a=("g", g_off),
                         line=region.start_line))
        out.append(Instr(Opcode.STORE, a=("f", slot), b=("r", reg),
                         line=region.start_line))
        reg += 1
    init = Instr(
        Opcode.STORE,
        a=("f", iter_slot),
        b=("i", chunk.lo),
        line=region.start_line,
        var=iter_name,
        var_id=region.iter_var,
    )
    init.op_id = _fresh_op_id(module)
    module.mem_ops[init.op_id] = init
    out.append(init)

    # synthesized header: `i <op> hi` with <op> matching the step direction
    new_header = len(out)
    load = Instr(
        Opcode.LOAD,
        dest=reg,
        a=("f", iter_slot),
        line=region.start_line,
        var=iter_name,
        var_id=region.iter_var,
    )
    load.op_id = _fresh_op_id(module)
    module.mem_ops[load.op_id] = load
    out.append(load)
    out.append(
        Instr(
            Opcode.BIN,
            dest=reg + 1,
            a="<" if step > 0 else ">",
            b=("r", reg),
            c=("i", chunk.hi),
            line=region.start_line,
        )
    )
    header_br = Instr(Opcode.BR, a=("r", reg + 1), b=None, c=None,
                      line=region.start_line)
    out.append(header_br)
    chunk_func.n_regs = reg + 2

    # copy the loop's blocks, building the old->new index map
    mapping: dict[int, int] = {}
    copied: list[Instr] = []
    for leader in blocks:
        _, end = _block_of(leaders, leader)
        end = end if end is not None else len(code)
        for idx in range(leader, end):
            _check_outlinable(code[idx])
            mapping[idx] = len(out) + len(copied)
            copied.append(_copy_instr(code[idx]))
    _check_register_closure(copied, func, "DOALL body")
    epilogue = len(out) + len(copied)
    header_br.b = mapping[body_start]
    header_br.c = epilogue

    block_set = set(mapping)
    for instr in copied:
        targets = []
        if instr.op == Opcode.JMP:
            targets = ["a"]
        elif instr.op == Opcode.BR:
            targets = ["b", "c"]
        for field in targets:
            old = getattr(instr, field)
            if old in block_set:
                setattr(instr, field, mapping[old])
            elif old == header_start:
                setattr(instr, field, new_header)
            elif old == exit_idx:
                setattr(instr, field, epilogue)
            else:
                raise Infeasible(
                    "loop body branches outside the loop "
                    f"(target index {old})"
                )
        # redirect privatized global scalars into the chunk frame
        if redirects and instr.is_memory() and instr.a[0] == "g":
            slot = redirects.get(instr.a[1])
            if slot is not None:
                instr.a = ("f", slot)
    out.extend(copied)

    # epilogue: close the region, return
    out.append(Instr(Opcode.EXIT, a=rid, line=region.end_line))
    out.append(Instr(Opcode.RET, a=None, line=region.end_line))
    chunk_func.code = out
    chunk_func.block_starts = {}
    return chunk_func


def plan_doall(
    module: Module,
    suggestion: Suggestion,
    control,
    *,
    n_workers: int,
    plan_index: int,
) -> tuple[DoallPlan, Optional[Module]]:
    """Chunk one DOALL/DOALL(reduction) suggestion into a transformed module."""
    loop = suggestion.loop
    region = module.regions[loop.region_id]
    plan = DoallPlan(
        region_id=loop.region_id,
        func=region.func,
        start_line=region.start_line,
        end_line=region.end_line,
        kind=suggestion.kind,
    )
    func = module.functions.get(region.func)
    try:
        if func is None or not func.code:
            raise Infeasible("containing function not found")
        record = control.get(loop.region_id) if control else None
        if record is None:
            raise Infeasible("loop never executed")
        if record.executions != 1:
            raise Infeasible(
                f"loop entered {record.executions} times "
                "(only single-entry loops are chunked)"
            )
        iterations = record.total_iterations
        if iterations < 2:
            raise Infeasible("fewer than two iterations")
        _check_local_arrays(module, func, region)
        _check_additive_reductions(func, region, loop.reduction_vars)
        shape = _loop_shape(func, region)
        iter_slot, init_value, step = shape[5], shape[6], shape[7]

        clone = _clone_module(module)
        reduction_slots, private_slots, new_size = _resolve_privatized(
            clone, func, loop, func.frame_size
        )
        extra_slots = new_size - func.frame_size
        redirects = {
            g_off: slot
            for slot, g_off in reduction_slots.values()
            if g_off is not None
        }
        redirects.update(
            {
                g_off: slot
                for slot, g_off in private_slots.values()
                if g_off is not None
            }
        )
        copy_in = sorted(
            (g_off, slot)
            for slot, g_off in list(reduction_slots.values())
            + list(private_slots.values())
            if g_off is not None
        )

        n_chunks = max(1, min(n_workers, iterations))
        base, extra = divmod(iterations, n_chunks)
        lo = init_value
        chunks: list[ChunkSpec] = []
        for k in range(n_chunks):
            count = base + (1 if k < extra else 0)
            hi = lo + step * count
            chunks.append(
                ChunkSpec(
                    index=k,
                    lo=lo,
                    hi=hi,
                    iterations=count,
                    function=(
                        f"__doall_{func.name}_r{loop.region_id}_c{k}"
                    ),
                )
            )
            lo = hi

        for chunk in chunks:
            chunk_func = _build_chunk_function(
                clone, func, region, shape, chunk, step,
                redirects, copy_in, extra_slots,
            )
            clone.functions[chunk_func.name] = chunk_func

        # splice: the loop's `enter` becomes the fork point; the parent
        # resumes just past the loop's `exit` marker
        enter_idx, exit_idx = shape[0], shape[1]
        parent_code = list(func.code)
        parent_code[enter_idx] = Instr(
            Opcode.PFORK, a=plan_index, b=exit_idx + 1,
            line=region.start_line,
        )
        clone.functions[func.name] = _clone_function(func, parent_code)

        plan.feasible = True
        plan.iter_var = module.var(region.iter_var).name
        plan.iter_slot = iter_slot
        plan.init_value = init_value
        plan.step = step
        plan.iterations = iterations
        plan.final_value = init_value + step * iterations
        plan.chunks = chunks
        plan.reduction_slots = {
            name: slot for name, (slot, _g) in reduction_slots.items()
        }
        plan.private_vars = sorted(loop.private_vars)
        plan.private_slots = {
            name: slot for name, (slot, _g) in private_slots.items()
        }
        plan.global_homes = {
            slot: g_off
            for slot, g_off in list(reduction_slots.values())
            + list(private_slots.values())
            if g_off is not None
        }
        return plan, clone
    except Infeasible as exc:
        plan.reason = str(exc)
        return plan, None


# ---------------------------------------------------------------------------
# task-region outlining
# ---------------------------------------------------------------------------


def _attribute_instructions(code: list, node_lines: dict) -> dict[int, int]:
    """code index -> task node id, by source-line attribution.

    Line-carrying instructions belong to the node owning their line;
    line-less control instructions (jumps, branches) inherit the preceding
    attributed instruction's node — they are emitted while lowering that
    statement.
    """
    line_to_node: dict[int, int] = {}
    for node_id, lines in node_lines.items():
        for line in lines:
            if line in line_to_node:
                raise Infeasible(
                    f"task nodes overlap on line {line}"
                )
            line_to_node[line] = node_id
    owner: dict[int, int] = {}
    current: Optional[int] = None
    for idx, instr in enumerate(code):
        if instr.line:
            current = line_to_node.get(instr.line)
        if current is not None:
            owner[idx] = current
    return owner


def _build_task_function(
    name: str,
    func: Function,
    region: Region,
    members: list[int],
    union: set[int],
) -> tuple[Function, set[int]]:
    """Outline one task node's instructions; returns (function, escapes).

    A task may consist of several non-adjacent *segments* (chain-contracted
    nodes interleave statements: ``build(); ...; detect();``).  Falling out
    of a segment mid-task simply continues at the task's next segment —
    chain contraction guarantees the skipped instructions belong to other
    tasks, which execute them in their own threads.  A branch that leaves
    the member set, or the final member's fall-through, ends the task (it
    reaches the epilogue ``ret``); targets *outside the whole task union*
    are returned as escapes — the caller requires them to agree on the
    single continuation point where the parent resumes.
    """
    code = func.code
    member_set = set(members)
    new_index = {old: new for new, old in enumerate(members)}
    epilogue = len(members)

    escapes: set[int] = set()
    rewritten: list[Instr] = []
    for pos, old in enumerate(members):
        _check_outlinable(code[old])
        instr = _copy_instr(code[old])
        if instr.op == Opcode.JMP:
            fields = ("a",)
        elif instr.op == Opcode.BR:
            fields = ("b", "c")
        else:
            fields = ()
        for field in fields:
            tgt = getattr(instr, field)
            if tgt in member_set:
                setattr(instr, field, new_index[tgt])
            else:
                # leaving the member set ends this task
                if tgt not in union:
                    escapes.add(tgt)
                setattr(instr, field, epilogue)
        rewritten.append(instr)
        if not instr.is_terminator():
            last = pos + 1 == len(members)
            if last:
                if old + 1 not in union:
                    escapes.add(old + 1)
                # epilogue follows immediately: natural fall-through
            elif members[pos + 1] != old + 1:
                # segment boundary: the original successor must be another
                # task's code, else outlining would lose instructions
                if old + 1 not in union:
                    raise Infeasible(
                        f"task {name} falls through to untasked code "
                        f"(index {old + 1})"
                    )
    _check_register_closure(rewritten, func, f"task {name}")
    rewritten.append(Instr(Opcode.RET, a=None, line=region.end_line))

    task_func = Function(name, [], "int")
    task_func.frame_slots = dict(func.frame_slots)
    task_func.frame_size = func.frame_size
    task_func.param_regs = list(func.param_regs)
    task_func.n_regs = func.n_regs
    task_func.region_id = func.region_id
    task_func.start_line = region.start_line
    task_func.end_line = region.end_line
    task_func.code = rewritten
    return task_func, escapes


def plan_taskgraph(
    module: Module,
    suggestion: Suggestion,
    *,
    plan_index: int,
) -> tuple[TaskPlan, Optional[Module]]:
    """Outline one MPMD task-graph suggestion into a transformed module."""
    tg = suggestion.task_graph
    region = module.regions.get(tg.container_region)
    plan = TaskPlan(
        region_id=tg.container_region,
        func=suggestion.func,
        start_line=suggestion.start_line,
        end_line=suggestion.end_line,
        kind=suggestion.kind,
    )
    try:
        if region is None:
            raise Infeasible("container region not found")
        func = module.functions.get(region.func)
        if func is None or not func.code:
            raise Infeasible("containing function not found")
        code = func.code

        # nodes covering only the container's own control lines (a frame
        # loop's header/latch) are not tasks: that code keeps running in
        # the parent, which re-forks the body tasks every iteration
        control_lines = {region.start_line, region.end_line}
        task_nodes = [
            n for n in tg.nodes if not set(n.lines) <= control_lines
        ]
        if len(task_nodes) < 2:
            raise Infeasible("fewer than two outlinable task nodes")

        node_lines = {n.node_id: set(n.lines) for n in task_nodes}
        owner = _attribute_instructions(code, node_lines)
        members: dict[int, list[int]] = {}
        for idx in sorted(owner):
            members.setdefault(owner[idx], []).append(idx)
        for node in task_nodes:
            if not members.get(node.node_id):
                raise Infeasible(
                    f"no instructions attributed to task node {node.node_id}"
                )

        # nodes whose code cannot be outlined (a trailing `return`, an
        # order-sensitive builtin) stay in the parent, which executes them
        # after the join — legal only while no kept task depends on them
        def _outlinable_node(nid: int) -> bool:
            try:
                for idx in members[nid]:
                    _check_outlinable(code[idx])
            except Infeasible:
                return False
            return True

        retained = {
            n.node_id for n in task_nodes if not _outlinable_node(n.node_id)
        }
        kept_ids = {n.node_id for n in task_nodes} - retained
        for src, dst in tg.edges:
            if src in retained and dst in kept_ids:
                raise Infeasible(
                    "a task depends on a node that cannot be outlined"
                )
        task_nodes = [n for n in task_nodes if n.node_id in kept_ids]
        if len(task_nodes) < 2:
            raise Infeasible("fewer than two outlinable task nodes")
        members = {nid: members[nid] for nid in kept_ids}

        union = {idx for m in members.values() for idx in m}
        first_idx = min(union)

        clone = _clone_module(module)
        specs: list[TaskSpec] = []
        escapes: set[int] = set()
        for node in sorted(task_nodes, key=lambda n: n.node_id):
            name = (
                f"__task_{func.name}_r{tg.container_region}_n{node.node_id}"
            )
            task_func, task_escapes = _build_task_function(
                name, func, region, members[node.node_id], union
            )
            clone.functions[name] = task_func
            escapes |= task_escapes
            deps = sorted(
                src
                for (src, dst) in tg.edges
                if dst == node.node_id and src in kept_ids
            )
            specs.append(
                TaskSpec(
                    node_id=node.node_id,
                    function=name,
                    deps=deps,
                    work=node.work,
                    lines=sorted(node.lines),
                )
            )

        # all escapes must agree on the one continuation point where the
        # parent resumes after the join
        if len(escapes) != 1:
            raise Infeasible(
                f"task region has {len(escapes)} exit points "
                "(need exactly one)"
            )
        resume_idx = escapes.pop()

        # external control may only enter the region at its start
        for idx, instr in enumerate(code):
            if idx in union:
                continue
            tgts = []
            if instr.op == Opcode.JMP:
                tgts = [instr.a]
            elif instr.op == Opcode.BR:
                tgts = [instr.b, instr.c]
            for tgt in tgts:
                if tgt in union and tgt != first_idx:
                    raise Infeasible(
                        "external control enters the middle of the "
                        "task region"
                    )

        parent_code = list(code)
        parent_code[first_idx] = Instr(
            Opcode.PTASK, a=plan_index, b=resume_idx,
            line=region.start_line,
        )
        clone.functions[func.name] = _clone_function(func, parent_code)

        plan.feasible = True
        plan.tasks = specs
        return plan, clone
    except Infeasible as exc:
        plan.reason = str(exc)
        return plan, None


# ---------------------------------------------------------------------------
# the driver pass
# ---------------------------------------------------------------------------


def build_transform_plan(
    module: Module,
    suggestions: list[Suggestion],
    control,
    *,
    n_workers: int = 4,
    name: Optional[str] = None,
) -> TransformPlan:
    """Plan transforms for every transformable suggestion.

    DOALL / DOALL(reduction) loops are iteration-chunked; MPMD task graphs
    are task-outlined.  DOACROSS and SPMD suggestions are not transformable
    yet and are skipped.  Each suggestion receives a ``transform`` summary
    dict (serialized with the suggestion) and each feasible entry gets its
    own independently-transformed module in ``plan.modules``.
    """
    plan = TransformPlan(name=name or module.name, n_workers=n_workers)
    for suggestion in suggestions:
        index = len(plan.entries)
        if suggestion.kind in ("DOALL", "DOALL(reduction)") and suggestion.loop:
            entry, transformed = plan_doall(
                module, suggestion, control,
                n_workers=n_workers, plan_index=index,
            )
        elif suggestion.kind == "MPMD" and suggestion.task_graph:
            entry, transformed = plan_taskgraph(
                module, suggestion, plan_index=index
            )
        else:
            continue
        plan.entries.append(entry)
        if transformed is not None:
            plan.modules[index] = transformed
        summary = {
            "plan_index": index,
            "transform": entry.to_dict()["transform"],
            "feasible": entry.feasible,
            "reason": entry.reason,
        }
        if isinstance(entry, DoallPlan):
            summary["n_chunks"] = len(entry.chunks)
            summary["reduction_vars"] = sorted(entry.reduction_slots)
        else:
            summary["n_tasks"] = len(entry.tasks)
        suggestion.transform = summary
    return plan
