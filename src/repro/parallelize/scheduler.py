"""The parallel scheduler: a work-stealing worker pool over the VM.

:class:`ParallelVM` executes a module rewritten by
:mod:`repro.parallelize.transforms`.  The main program runs as an ordinary
VM thread until it reaches a ``pfork``/``ptask`` instruction; the scheduler
then forks one *task* (a VM thread with a specially prepared root frame)
per chunk or task-graph node, suspends the parent, and resumes it past the
region once every task has completed and the join-time merges (reductions,
``lastprivate`` scalars, the final counter value) have been applied.

**Workers and stealing.**  ``n_workers`` simulated workers each own a task
deque.  Freshly forked tasks land on the forking worker's deque (the
work-first discipline); an idle worker pops its own deque LIFO and steals
FIFO from a victim chosen by a seeded RNG.  Because workers advance in a
fixed lockstep order, a given (module, seed, n_workers, quantum) tuple
always produces the same interleaving — the deterministic seeded mode the
tests rely on.

**Task-graph edges.**  ``ptask`` nodes carry join edges (from the profiled
dependence store, via the task graph): a task is queued only once every
predecessor has completed, so true dependences between tasks are honored
by construction.

**Simulated time.**  Execution advances in ticks; each tick every busy
worker runs its current task for up to ``quantum`` interpreter steps.  The
makespan in *work units* (one unit = one executed MIR instruction) is the
sum over ticks of the longest step count any worker spent in that tick —
serial phases cost their full length, perfectly overlapped phases cost
``1/n_workers`` of theirs.  ``measured speedup = sequential units /
parallel makespan units``, the quantity the validation harness compares
against :mod:`repro.simulate.exec_model` predictions.
"""

from __future__ import annotations

import random as _random
from collections import deque
from time import perf_counter_ns as _perf_counter_ns
from dataclasses import dataclass, field
from typing import Optional

from repro.mir.module import Module
from repro.runtime.interpreter import (
    BLOCKED_FORK,
    DONE,
    RUNNABLE,
    Frame,
    ThreadState,
    VM,
    VMError,
)
from repro.parallelize.plan import DoallPlan, TaskPlan, TransformPlan


@dataclass
class SchedulerStats:
    """Observable behaviour of one ParallelVM run."""

    n_workers: int = 0
    ticks: int = 0
    #: simulated makespan: sum over ticks of the longest per-worker burst
    makespan_units: int = 0
    #: total interpreter steps across all workers
    total_units: int = 0
    tasks_forked: int = 0
    forks: int = 0
    steals: int = 0
    #: per-worker busy units
    worker_units: list[int] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        denom = self.makespan_units * max(1, self.n_workers)
        return self.total_units / denom if denom else 0.0

    def to_dict(self) -> dict:
        return {
            "n_workers": self.n_workers,
            "ticks": self.ticks,
            "makespan_units": self.makespan_units,
            "total_units": self.total_units,
            "tasks_forked": self.tasks_forked,
            "forks": self.forks,
            "steals": self.steals,
            "worker_units": list(self.worker_units),
            "utilization": self.utilization,
        }


class _ForkRecord:
    """Join-time bookkeeping for one executed pfork/ptask."""

    __slots__ = (
        "parent",
        "resume_pc",
        "plan",
        "remaining",
        "chunk_values",
        "initial",
        "waiting",
        "indegree",
        "node_of_thread",
    )

    def __init__(self, parent: ThreadState, resume_pc: int, plan) -> None:
        self.parent = parent
        self.resume_pc = resume_pc
        self.plan = plan
        self.remaining = 0
        #: chunk index -> {slot: final value} captured at chunk completion
        self.chunk_values: dict[int, dict] = {}
        #: slot -> value at fork time (the reduction identity base)
        self.initial: dict[int, object] = {}
        #: node_id -> (func, deps outstanding) for ptask graphs
        self.waiting: dict[int, object] = {}
        self.indegree: dict[int, int] = {}
        self.node_of_thread: dict[int, int] = {}


class _Worker:
    __slots__ = ("wid", "deque", "current")

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.deque: deque[ThreadState] = deque()
        self.current: Optional[ThreadState] = None


class ParallelVM(VM):
    """Executes a transformed module on a work-stealing worker pool."""

    def __init__(
        self,
        module: Module,
        plan: TransformPlan,
        *,
        n_workers: int = 4,
        quantum: int = 256,
        **vm_kwargs,
    ) -> None:
        vm_kwargs.setdefault("instrument", False)
        super().__init__(module, None, **vm_kwargs)
        self.plan = plan
        self.n_workers = max(1, n_workers)
        self.task_quantum = max(1, quantum)
        self.stats = SchedulerStats(n_workers=self.n_workers)
        self._steal_rng = _random.Random(vm_kwargs.get("seed", 12345))
        self._workers = [_Worker(w) for w in range(self.n_workers)]
        self._active_worker: Optional[_Worker] = None
        #: fork record per suspended parent tid
        self._forks: dict[int, _ForkRecord] = {}
        #: fork record that owns a given task tid
        self._fork_of_task: dict[int, _ForkRecord] = {}
        #: recycled thread slots (stack regions are reused across rounds)
        self._free_tids: list[int] = []
        #: threads blocked on a lock/join, waiting to be re-enqueued
        self._parked: list[ThreadState] = []

    # ------------------------------------------------------------------
    # task-thread construction
    # ------------------------------------------------------------------

    def _spawn_thread(self, func_name, args, call_line: int = 0):
        """Native ``spawn`` opcodes executed inside a task (or the main
        thread) hand their child to the worker pool."""
        thread = super()._spawn_thread(func_name, args, call_line)
        if self._active_worker is not None:
            self._active_worker.deque.append(thread)
        return thread

    def _alloc_thread(self) -> ThreadState:
        if self._free_tids:
            tid = self._free_tids.pop()
        else:
            tid = len(self.threads)
            self.threads.append(None)  # placeholder, replaced below
        thread = ThreadState(
            tid, self.layout.stack_base(tid), self.layout.stack_limit(tid)
        )
        self.threads[tid] = thread
        return thread

    def _fork_task_thread(
        self,
        func_name: str,
        parent: ThreadState,
        *,
        privatize_frame: bool,
    ) -> ThreadState:
        """A task thread whose root frame forks the parent's state.

        ``privatize_frame=True`` (DOALL chunks) copies the parent frame into
        the task's own stack region — every local becomes task-private.
        ``False`` (task-graph nodes) aliases the parent frame so tasks
        communicate through it like the sequential code did.  Either way the
        parent's registers (array-parameter bases, live temporaries) are
        snapshotted.
        """
        func = self.module.functions[func_name]
        parent_frame = parent.frames[-1]
        thread = self._alloc_thread()
        if privatize_frame:
            base = thread.sp
            size = func.frame_size
            limit = self.layout.stack_limit(thread.tid)
            if base + size > limit:
                raise VMError(f"stack overflow forking {func_name}")
            memory = self.memory
            src = parent_frame.frame_base
            copy = parent_frame.func.frame_size
            memory[base : base + copy] = memory[src : src + copy]
            for i in range(base + copy, base + size):
                memory[i] = 0
            thread.sp = base + size
        else:
            base = parent_frame.frame_base
        frame = Frame(func, base, ret_dest=None)
        n = min(len(parent_frame.regs), len(frame.regs))
        frame.regs[:n] = parent_frame.regs[:n]
        thread.frames.append(frame)
        thread.pc = 0
        self.stats.tasks_forked += 1
        return thread

    def _release_thread(self, thread: ThreadState) -> None:
        self._free_tids.append(thread.tid)

    # ------------------------------------------------------------------
    # pfork / ptask
    # ------------------------------------------------------------------

    def _parallel_op(self, thread: ThreadState, instr) -> None:
        entry = self.plan.entries[instr.a]
        record = _ForkRecord(thread, instr.b, entry)
        self.stats.forks += 1
        worker = self._active_worker
        assert worker is not None, "parallel op outside the scheduler loop"
        if isinstance(entry, DoallPlan):
            self._fork_doall(thread, entry, record, worker)
        elif isinstance(entry, TaskPlan):
            self._fork_taskgraph(thread, entry, record, worker)
        else:  # pragma: no cover - plans are built by the transforms
            raise VMError(f"unknown plan entry for {instr.op!r}")
        thread.status = BLOCKED_FORK
        self._forks[thread.tid] = record

    def _merge_addr(self, record: _ForkRecord, slot: int) -> int:
        """Where a merged slot value lives in the parent's address space."""
        plan = record.plan
        home = plan.global_homes.get(slot)
        if home is not None:
            return home
        return record.parent.frames[-1].frame_base + slot

    def _fork_doall(
        self,
        thread: ThreadState,
        plan: DoallPlan,
        record: _ForkRecord,
        worker: _Worker,
    ) -> None:
        merge_slots = set(plan.reduction_slots.values()) | set(
            plan.private_slots.values()
        )
        for slot in merge_slots:
            record.initial[slot] = self.memory[self._merge_addr(record, slot)]
        for chunk in plan.chunks:
            task = self._fork_task_thread(
                chunk.function, thread, privatize_frame=True
            )
            record.remaining += 1
            record.node_of_thread[task.tid] = chunk.index
            self._fork_of_task[task.tid] = record
            worker.deque.append(task)

    def _fork_taskgraph(
        self,
        thread: ThreadState,
        plan: TaskPlan,
        record: _ForkRecord,
        worker: _Worker,
    ) -> None:
        record.indegree = {t.node_id: len(t.deps) for t in plan.tasks}
        record.waiting = {t.node_id: t for t in plan.tasks}
        record.remaining = len(plan.tasks)
        for spec in plan.tasks:
            if record.indegree[spec.node_id] == 0:
                self._launch_task_node(record, spec, worker)

    def _launch_task_node(self, record: _ForkRecord, spec, worker) -> None:
        task = self._fork_task_thread(
            spec.function, record.parent, privatize_frame=False
        )
        record.node_of_thread[task.tid] = spec.node_id
        self._fork_of_task[task.tid] = record
        del record.waiting[spec.node_id]
        worker.deque.append(task)

    # ------------------------------------------------------------------
    # completion / join
    # ------------------------------------------------------------------

    def _on_task_done(self, task: ThreadState, worker: _Worker) -> None:
        record = self._fork_of_task.pop(task.tid, None)
        if record is None:
            return
        plan = record.plan
        node = record.node_of_thread.pop(task.tid, None)
        if isinstance(plan, DoallPlan):
            # capture the chunk-final values of every merged slot before the
            # stack region is recycled (the root frame sat at the stack base)
            fb = self.layout.stack_base(task.tid)
            slots = set(plan.reduction_slots.values()) | set(
                plan.private_slots.values()
            )
            record.chunk_values[node] = {
                slot: self.memory[fb + slot] for slot in slots
            }
        else:
            # release successors whose dependences are now satisfied
            for succ in list(record.waiting):
                spec = record.waiting[succ]
                if node in spec.deps:
                    record.indegree[succ] -= 1
            for succ in list(record.waiting):
                if record.indegree[succ] == 0:
                    self._launch_task_node(record, record.waiting[succ],
                                           worker)
        self._release_thread(task)
        record.remaining -= 1
        if record.remaining == 0:
            self._join(record, worker)

    def _join(self, record: _ForkRecord, worker: _Worker) -> None:
        parent = record.parent
        plan = record.plan
        if isinstance(plan, DoallPlan):
            memory = self.memory
            # reductions: v0 + sum(v_k - v0), merged in chunk order so
            # float results are schedule-independent
            for _name, slot in sorted(plan.reduction_slots.items()):
                v0 = record.initial[slot]
                value = v0
                for k in sorted(record.chunk_values):
                    value = value + (record.chunk_values[k][slot] - v0)
                memory[self._merge_addr(record, slot)] = value
            # lastprivate: the final chunk executed the final iterations
            if record.chunk_values:
                last = max(record.chunk_values)
                for _name, slot in sorted(plan.private_slots.items()):
                    memory[self._merge_addr(record, slot)] = (
                        record.chunk_values[last][slot]
                    )
            # the loop counter's post-loop value
            parent_fb = parent.frames[-1].frame_base
            memory[parent_fb + plan.iter_slot] = plan.final_value
        parent.pc = record.resume_pc
        parent.status = RUNNABLE
        del self._forks[parent.tid]
        worker.deque.append(parent)

    # ------------------------------------------------------------------
    # the scheduler loop
    # ------------------------------------------------------------------

    def _steal(self, thief: _Worker) -> Optional[ThreadState]:
        victims = [w for w in self._workers if w is not thief and w.deque]
        if not victims:
            return None
        victim = victims[self._steal_rng.randrange(len(victims))]
        self.stats.steals += 1
        return victim.deque.popleft()

    def run(self, entry: str = "main", args: Optional[list] = None):
        """Run to completion under the worker pool; returns main's value."""
        tracer = self.tracer
        traced = tracer is not None and tracer.enabled
        if traced:
            tracer.begin("pvm.run", "pvm", entry=entry,
                         n_workers=self.n_workers)
        main_thread = self._spawn_thread(entry, args or [])
        workers = self._workers
        workers[0].current = main_thread
        stats = self.stats
        stats.worker_units = [0] * self.n_workers
        quantum = self.task_quantum
        # like the base VM, run until *every* thread completes — a spawned
        # thread main never joins still owes its writes to the final state
        while any(
            t is not None and t.status != DONE for t in self.threads
        ):
            tick_longest = 0
            ran_any = False
            # threads woken from a lock/join (by the interpreter's native
            # wake paths) rejoin the pool deterministically by thread id
            for thread in list(self._parked):
                if thread.status == RUNNABLE:
                    self._parked.remove(thread)
                    workers[thread.tid % self.n_workers].deque.append(thread)
            for worker in workers:
                current = worker.current
                if current is not None and current.status != RUNNABLE:
                    worker.current = current = None
                if current is None:
                    if worker.deque:
                        current = worker.deque.pop()
                    else:
                        current = self._steal(worker)
                    if current is not None and current.status != RUNNABLE:
                        current = None  # defensive: never run a blocked task
                    worker.current = current
                if current is None:
                    continue
                ran_any = True
                self._active_worker = worker
                before = self.total_steps
                if traced:
                    t0 = _perf_counter_ns()
                    self._run_thread(current, quantum)
                    tracer.complete(
                        "pvm.burst",
                        "pvm",
                        t0,
                        _perf_counter_ns() - t0,
                        lane=f"pvm.w{worker.wid}",
                        args={
                            "tid": current.tid,
                            "steps": self.total_steps - before,
                        },
                    )
                else:
                    self._run_thread(current, quantum)
                burst = self.total_steps - before
                self._active_worker = None
                stats.worker_units[worker.wid] += burst
                stats.total_units += burst
                tick_longest = max(tick_longest, burst)
                if current.status == DONE:
                    # joiners were already woken by the interpreter's own
                    # end-of-thread path in _run_thread
                    worker.current = None
                    self._on_task_done(current, worker)
                elif current.status != RUNNABLE:
                    # blocked: the worker moves on.  Fork parents are
                    # re-enqueued by the join; lock/join waiters park
                    # until a wake makes them runnable again.
                    if current.status != BLOCKED_FORK:
                        self._parked.append(current)
                    worker.current = None
            stats.ticks += 1
            stats.makespan_units += tick_longest
            if not ran_any:  # live threads remain but every worker is idle
                blocked = [
                    t.tid
                    for t in self.threads
                    if t is not None and t.status != DONE
                ]
                raise VMError(
                    f"parallel scheduler stalled: threads {blocked} blocked"
                )
        self._flush()
        if traced:
            tracer.end()
        return main_thread.return_value
