"""Transform-plan artifacts.

A :class:`TransformPlan` is the JSON-serializable record of one
parallelization attempt over a module: per suggestion, either a feasible
:class:`DoallPlan`/:class:`TaskPlan` (what was outlined, how iterations were
chunked, which spawn/join edges the scheduler must honor) or the reason the
transform was declined.  The live transformed :class:`~repro.mir.module.Module`
objects ride next to the plan in memory but are never serialized — a
reloaded plan supports every report that needs only the data, mirroring the
other engine artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ChunkSpec:
    """One DOALL iteration chunk, in iteration-variable *value* space."""

    index: int
    #: first iteration-variable value of the chunk
    lo: int
    #: exclusive bound (first value past the chunk, step-signed)
    hi: int
    #: number of iterations the chunk executes
    iterations: int
    #: name of the outlined chunk function in the transformed module
    function: str = ""

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "lo": self.lo,
            "hi": self.hi,
            "iterations": self.iterations,
            "function": self.function,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChunkSpec":
        return cls(**data)


@dataclass
class DoallPlan:
    """Iteration-chunking plan for one DOALL / DOALL(reduction) loop."""

    region_id: int
    func: str
    start_line: int
    end_line: int
    kind: str = "DOALL"
    feasible: bool = False
    reason: Optional[str] = None
    #: iteration variable: name, frame slot, initial value, constant step
    iter_var: Optional[str] = None
    iter_slot: int = -1
    init_value: int = 0
    step: int = 1
    iterations: int = 0
    #: iteration-variable value after the loop (restored on the parent)
    final_value: int = 0
    chunks: list[ChunkSpec] = field(default_factory=list)
    #: recognized reductions: variable name -> frame slot (merged with +)
    reduction_slots: dict[str, int] = field(default_factory=dict)
    #: privatized locals (the whole frame is privatized; listed for reports)
    private_vars: list[str] = field(default_factory=list)
    #: lastprivate scalars: variable name -> frame slot (last chunk's final
    #: value survives the join)
    private_slots: dict[str, int] = field(default_factory=dict)
    #: privatized global scalars: chunk frame slot -> global address the
    #: merged value is written back to
    global_homes: dict[int, int] = field(default_factory=dict)

    @property
    def location(self) -> str:
        return f"{self.func}:{self.start_line}-{self.end_line}"

    def to_dict(self) -> dict:
        return {
            "transform": "doall",
            "region_id": self.region_id,
            "func": self.func,
            "start_line": self.start_line,
            "end_line": self.end_line,
            "kind": self.kind,
            "feasible": self.feasible,
            "reason": self.reason,
            "iter_var": self.iter_var,
            "iter_slot": self.iter_slot,
            "init_value": self.init_value,
            "step": self.step,
            "iterations": self.iterations,
            "final_value": self.final_value,
            "chunks": [c.to_dict() for c in self.chunks],
            "reduction_slots": dict(self.reduction_slots),
            "private_vars": list(self.private_vars),
            "private_slots": dict(self.private_slots),
            "global_homes": {
                str(slot): home for slot, home in self.global_homes.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DoallPlan":
        return cls(
            region_id=data["region_id"],
            func=data["func"],
            start_line=data["start_line"],
            end_line=data["end_line"],
            kind=data["kind"],
            feasible=data["feasible"],
            reason=data["reason"],
            iter_var=data["iter_var"],
            iter_slot=data["iter_slot"],
            init_value=data["init_value"],
            step=data["step"],
            iterations=data["iterations"],
            final_value=data["final_value"],
            chunks=[ChunkSpec.from_dict(c) for c in data["chunks"]],
            reduction_slots=dict(data["reduction_slots"]),
            private_vars=list(data["private_vars"]),
            private_slots=dict(data.get("private_slots") or {}),
            global_homes={
                int(slot): home
                for slot, home in (data.get("global_homes") or {}).items()
            },
        )


@dataclass
class TaskSpec:
    """One outlined task-graph node."""

    node_id: int
    #: name of the outlined task function in the transformed module
    function: str
    #: node ids that must complete before this task may start (join edges)
    deps: list[int] = field(default_factory=list)
    #: profiled work of the node, in memory instructions
    work: int = 0
    lines: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "function": self.function,
            "deps": list(self.deps),
            "work": self.work,
            "lines": list(self.lines),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TaskSpec":
        return cls(
            node_id=data["node_id"],
            function=data["function"],
            deps=list(data["deps"]),
            work=data["work"],
            lines=list(data["lines"]),
        )


@dataclass
class TaskPlan:
    """Task-region outlining plan for one MPMD task-graph suggestion."""

    region_id: int
    func: str
    start_line: int
    end_line: int
    kind: str = "MPMD"
    feasible: bool = False
    reason: Optional[str] = None
    tasks: list[TaskSpec] = field(default_factory=list)

    @property
    def location(self) -> str:
        return f"{self.func}:{self.start_line}-{self.end_line}"

    def to_dict(self) -> dict:
        return {
            "transform": "taskgraph",
            "region_id": self.region_id,
            "func": self.func,
            "start_line": self.start_line,
            "end_line": self.end_line,
            "kind": self.kind,
            "feasible": self.feasible,
            "reason": self.reason,
            "tasks": [t.to_dict() for t in self.tasks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TaskPlan":
        return cls(
            region_id=data["region_id"],
            func=data["func"],
            start_line=data["start_line"],
            end_line=data["end_line"],
            kind=data["kind"],
            feasible=data["feasible"],
            reason=data["reason"],
            tasks=[TaskSpec.from_dict(t) for t in data["tasks"]],
        )


def _entry_from_dict(data: dict):
    if data["transform"] == "doall":
        return DoallPlan.from_dict(data)
    if data["transform"] == "taskgraph":
        return TaskPlan.from_dict(data)
    raise ValueError(f"unknown transform kind {data['transform']!r}")


@dataclass
class TransformPlan:
    """Every planned transform of one module, feasible or not.

    ``modules`` holds the live transformed module per feasible entry index
    (one independently-rewritten clone per suggestion, so each validation
    isolates one transform); it is not serialized.
    """

    name: str = "<module>"
    n_workers: int = 4
    entries: list = field(default_factory=list)
    #: entry index -> transformed Module (live only)
    modules: dict = field(default_factory=dict)

    @property
    def feasible_entries(self) -> list:
        return [e for e in self.entries if e.feasible]

    def to_dict(self) -> dict:
        return {
            "artifact": "transform_plan",
            "name": self.name,
            "n_workers": self.n_workers,
            "entries": [e.to_dict() for e in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TransformPlan":
        return cls(
            name=data["name"],
            n_workers=data["n_workers"],
            entries=[_entry_from_dict(e) for e in data["entries"]],
        )

    def format_table(self) -> str:
        lines = [
            f"transform plan for {self.name} "
            f"({len(self.feasible_entries)}/{len(self.entries)} feasible)"
        ]
        for entry in self.entries:
            if entry.feasible:
                if isinstance(entry, DoallPlan):
                    detail = (
                        f"{len(entry.chunks)} chunks x "
                        f"~{entry.iterations // max(1, len(entry.chunks))} iters"
                    )
                    if entry.reduction_slots:
                        detail += (
                            " reduction("
                            + ", ".join(sorted(entry.reduction_slots))
                            + ")"
                        )
                else:
                    detail = f"{len(entry.tasks)} tasks"
                lines.append(f"  [{entry.kind}] {entry.location}: {detail}")
            else:
                lines.append(
                    f"  [{entry.kind}] {entry.location}: "
                    f"infeasible ({entry.reason})"
                )
        return "\n".join(lines)
