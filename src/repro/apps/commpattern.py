"""Detecting communication patterns on multicore systems (§5.3, Fig. 5.1).

Communication between threads is data flowing from a writer thread to a
reader thread — exactly the cross-thread RAW dependences the profiler
records for multi-threaded targets.  Aggregating them into a thread x
thread matrix reveals the application's communication pattern; Fig. 5.1
shows such matrices for splash2x as heatmaps.  We render ASCII heatmaps and
classify the canonical shapes (all-to-all, neighbour/ring, master-worker).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.profiler.deps import DependenceStore, DepType


@dataclass
class CommunicationMatrix:
    """comm[r][w] = units of data thread r read that thread w wrote."""

    matrix: np.ndarray
    n_threads: int

    def normalized(self) -> np.ndarray:
        total = self.matrix.sum()
        return self.matrix / total if total > 0 else self.matrix

    def classify(self) -> str:
        """Heuristic pattern name for the off-diagonal structure.

        Thread 0 (the main/setup thread) is excluded when worker threads
        exist: initialisation flow from main to every worker would
        otherwise read as a hub and mask the steady-state pattern.
        """
        m = self.matrix.astype(np.float64).copy()
        if self.n_threads > 2 and m[1:, 1:].sum() > 0:
            m = m[1:, 1:]
        np.fill_diagonal(m, 0.0)
        total = m.sum()
        n = m.shape[0]
        if total <= 0 or n < 2:
            return "none"
        # master-worker: one row+column dominates
        hub_flow = np.array([m[i, :].sum() + m[:, i].sum() for i in range(n)])
        if hub_flow.max() / total >= 0.85 and n > 2:
            return "master-worker"
        # neighbour/ring: adjacent off-diagonals dominate
        neighbour = sum(
            m[i, j]
            for i in range(n)
            for j in range(n)
            if abs(i - j) == 1 or abs(i - j) == n - 1
        )
        if neighbour / total >= 0.8:
            return "neighbour"
        # all-to-all: flow spread over most pairs
        pairs = (m > 0).sum()
        if pairs >= 0.6 * n * (n - 1):
            return "all-to-all"
        return "irregular"

    def heatmap(self, width: int = 4) -> str:
        """ASCII heatmap (Fig. 5.1 rendering)."""
        shades = " .:-=+*#%@"
        m = self.normalized()
        peak = m.max() or 1.0
        rows = ["    " + "".join(f"w{j:<{width - 1}}" for j in range(self.n_threads))]
        for i in range(self.n_threads):
            cells = []
            for j in range(self.n_threads):
                level = int(round((m[i, j] / peak) * (len(shades) - 1)))
                cells.append(shades[level] * (width - 1) + " ")
            rows.append(f"r{i:<3}" + "".join(cells))
        return "\n".join(rows)


def communication_matrix(
    store: DependenceStore, n_threads: Optional[int] = None
) -> CommunicationMatrix:
    """Build the thread communication matrix from cross-thread RAWs."""
    max_tid = 0
    for dep in store:
        max_tid = max(max_tid, dep.sink_tid, dep.source_tid)
    n = n_threads if n_threads is not None else max_tid + 1
    matrix = np.zeros((n, n), dtype=np.int64)
    for dep in store:
        if dep.type != DepType.RAW:
            continue
        if dep.sink_tid >= n or dep.source_tid >= n:
            continue
        if dep.sink_tid == dep.source_tid:
            matrix[dep.sink_tid, dep.source_tid] += dep.count
        else:
            matrix[dep.sink_tid, dep.source_tid] += dep.count
    return CommunicationMatrix(matrix, n)
