"""Determining optimal parameters for software transactional memory
(§5.2, Table 5.4).

When a suggested parallel loop still shares state across iterations (name
dependences, non-reduction shared writes), an STM can guard the shared
accesses.  Analysing the profiler's output yields the parameters an STM
needs tuning for:

* the number of *transactions* — contiguous sink-line groups inside the
  loop body that touch shared variables and must execute atomically;
* per-transaction read/write set sizes — how many distinct shared variables
  each transaction reads/writes (STMs size their logs from these);
* conflict likelihood — how many of the shared accesses carry
  cross-iteration dependences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.discovery.loops import LoopInfo
from repro.discovery.pipeline import DiscoveryResult
from repro.profiler.deps import DepType


@dataclass
class Transaction:
    """One atomic section: a contiguous run of sink lines sharing state."""

    lines: list[int]
    read_vars: set = field(default_factory=set)
    write_vars: set = field(default_factory=set)

    @property
    def read_set_size(self) -> int:
        return len(self.read_vars)

    @property
    def write_set_size(self) -> int:
        return len(self.write_vars)


@dataclass
class LoopTransactions:
    loop: LoopInfo
    transactions: list[Transaction] = field(default_factory=list)

    @property
    def n_transactions(self) -> int:
        return len(self.transactions)


@dataclass
class TransactionAnalysis:
    program: str
    loops: list[LoopTransactions] = field(default_factory=list)

    @property
    def total_transactions(self) -> int:
        return sum(l.n_transactions for l in self.loops)

    def max_read_set(self) -> int:
        return max(
            (t.read_set_size for l in self.loops for t in l.transactions),
            default=0,
        )

    def max_write_set(self) -> int:
        return max(
            (t.write_set_size for l in self.loops for t in l.transactions),
            default=0,
        )


def analyze_transactions(
    result: DiscoveryResult, program: str = ""
) -> TransactionAnalysis:
    """Derive STM transactions from the profiler output (Table 5.4)."""
    analysis = TransactionAnalysis(program)
    module = result.module
    from repro.discovery.loops import _iter_var_names

    for info in result.loops:
        region = module.regions[info.region_id]
        iter_vars = _iter_var_names(module, region)
        # shared variables: involved in any carried dependence that is not
        # handled by privatization/reduction or loop bookkeeping
        carried = result.store.carried_by(info.region_id)
        shared_vars = {
            d.var
            for d in carried
            if d.var not in info.reduction_vars and d.var not in iter_vars
        }
        if not shared_vars:
            continue
        # group the sink lines touching shared vars into contiguous runs
        lines = sorted(
            {
                d.sink_line
                for d in result.store
                if region.contains_line(d.sink_line) and d.var in shared_vars
            }
        )
        if not lines:
            continue
        loop_tx = LoopTransactions(info)
        current: list[int] = []
        for line in lines:
            if current and line > current[-1] + 1:
                loop_tx.transactions.append(_make_tx(current, result, shared_vars))
                current = []
            current.append(line)
        if current:
            loop_tx.transactions.append(_make_tx(current, result, shared_vars))
        analysis.loops.append(loop_tx)
    return analysis


def _make_tx(lines: list[int], result: DiscoveryResult, shared: set) -> Transaction:
    tx = Transaction(list(lines))
    line_set = set(lines)
    for dep in result.store:
        if dep.var not in shared:
            continue
        if dep.sink_line in line_set:
            if dep.type == DepType.RAW:
                tx.read_vars.add(dep.var)
            else:
                tx.write_vars.add(dep.var)
        if dep.source_line in line_set and dep.type == DepType.RAW:
            tx.write_vars.add(dep.var)
        if dep.source_line in line_set and dep.type != DepType.RAW:
            tx.read_vars.add(dep.var)
    return tx
