"""Dynamic features for DOALL loop classification (Table 5.1).

The features are computed from profiler + CU artefacts only — never from
the DOALL detector's own verdict — so a classifier trained on them learns
to *predict* parallelizability from execution characteristics, which is the
point of §5.1 (the detector provides labels during training; the trained
model generalises to unseen loops without profiling them to completion).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cu.graph import container_cus
from repro.discovery.pipeline import DiscoveryResult
from repro.discovery.loops import LoopInfo
from repro.profiler.deps import DepType

#: feature names, in vector order (the rows of Table 5.1)
LOOP_FEATURES = (
    "iterations",
    "instructions",
    "instructions_per_iteration",
    "n_deps_total",
    "n_carried_raw",
    "n_carried_war_waw",
    "carried_raw_fraction",
    "n_body_cus",
    "max_cu_work_fraction",
    "has_reduction_shape",
    "nesting_depth",
    "write_fraction",
)


def _nesting_depth(result: DiscoveryResult, region_id: int) -> int:
    depth = 0
    region = result.module.regions[region_id]
    parent = region.parent
    while parent is not None:
        pr = result.module.regions[parent]
        if pr.kind == "loop":
            depth += 1
        parent = pr.parent
    return depth


def loop_feature_vector(
    result: DiscoveryResult, info: LoopInfo
) -> np.ndarray:
    """Feature vector of one analysed loop."""
    module = result.module
    region = module.regions[info.region_id]
    deps_in_loop = [
        d
        for d in result.store
        if region.contains_line(d.sink_line)
        and region.contains_line(d.source_line)
    ]
    carried = [d for d in deps_in_loop if info.region_id in d.carriers]
    carried_raw = [d for d in carried if d.type == DepType.RAW]
    carried_name = [d for d in carried if d.type != DepType.RAW]
    n_deps = len(deps_in_loop)

    cus = container_cus(result.registry, module, region)
    cu_work = [cu.instructions for cu in cus]
    total_cu_work = sum(cu_work) or 1

    reads = writes = 0
    for line, count in result.line_counts.items():
        if region.contains_line(line):
            # line_counts mixes reads+writes; approximate the write share
            # from the dependence mix below instead
            pass
    writes_deps = sum(
        1 for d in deps_in_loop if d.type in (DepType.WAW, DepType.WAR)
    )
    write_fraction = writes_deps / n_deps if n_deps else 0.0

    reduction_shape = any(
        d.sink_line == d.source_line for d in carried_raw
    )

    iters = max(1, info.iterations)
    return np.array(
        [
            float(info.iterations),
            float(info.instructions),
            float(info.instructions) / iters,
            float(n_deps),
            float(len(carried_raw)),
            float(len(carried_name)),
            len(carried_raw) / n_deps if n_deps else 0.0,
            float(len(cus)),
            max(cu_work) / total_cu_work if cu_work else 0.0,
            1.0 if reduction_shape else 0.0,
            float(_nesting_depth(result, info.region_id)),
            write_fraction,
        ],
        dtype=np.float64,
    )
