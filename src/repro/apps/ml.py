"""From-scratch AdaBoost over decision stumps (NumPy).

Stands in for the AdaBoost/decision-tree ensemble of §5.1 (no scikit-learn
offline).  Binary classification with labels in {-1, +1}; feature
importances are the normalised sum of each stump's weighted error reduction
(the ensemble's voting weight alpha), matching Table 5.2's "weighted error
reduction in an AdaBoost ensemble of trees".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class DecisionStump:
    """Threshold rule on one feature: predict +1 iff polarity*(x - thr) > 0."""

    feature: int = 0
    threshold: float = 0.0
    polarity: float = 1.0

    def predict(self, X: np.ndarray) -> np.ndarray:
        raw = self.polarity * (X[:, self.feature] - self.threshold)
        return np.where(raw > 0, 1.0, -1.0)

    @staticmethod
    def fit_weighted(
        X: np.ndarray, y: np.ndarray, weights: np.ndarray
    ) -> tuple["DecisionStump", float]:
        """Exhaustive best stump under sample weights; returns (stump, err)."""
        n_samples, n_features = X.shape
        best = DecisionStump()
        best_err = np.inf
        for feature in range(n_features):
            values = X[:, feature]
            # candidate thresholds: midpoints of sorted unique values
            uniq = np.unique(values)
            if len(uniq) == 1:
                candidates = uniq
            else:
                candidates = (uniq[:-1] + uniq[1:]) / 2.0
            for threshold in candidates:
                pred = np.where(values > threshold, 1.0, -1.0)
                err = float(np.sum(weights[pred != y]))
                for polarity, e in ((1.0, err), (-1.0, 1.0 - err)):
                    if e < best_err:
                        best_err = e
                        best = DecisionStump(feature, float(threshold), polarity)
        return best, max(best_err, 1e-12)


@dataclass
class AdaBoost:
    """SAMME-style AdaBoost for binary labels in {-1, +1}."""

    n_estimators: int = 40
    stumps: list = field(default_factory=list)
    alphas: list = field(default_factory=list)
    n_features_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaBoost":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n = len(y)
        if n == 0:
            raise ValueError("empty training set")
        self.n_features_ = X.shape[1]
        weights = np.full(n, 1.0 / n)
        self.stumps = []
        self.alphas = []
        for _ in range(self.n_estimators):
            stump, err = DecisionStump.fit_weighted(X, y, weights)
            err = min(max(err, 1e-12), 1 - 1e-12)
            alpha = 0.5 * np.log((1.0 - err) / err)
            if alpha <= 0:
                break
            pred = stump.predict(X)
            weights = weights * np.exp(-alpha * y * pred)
            total = weights.sum()
            if total <= 0:  # pragma: no cover - numeric guard
                break
            weights /= total
            self.stumps.append(stump)
            self.alphas.append(float(alpha))
            if err < 1e-9:
                break
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        scores = np.zeros(len(X))
        for stump, alpha in zip(self.stumps, self.alphas):
            scores += alpha * stump.predict(X)
        return scores

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.where(self.decision_function(X) >= 0, 1.0, -1.0)

    def feature_importances(self) -> np.ndarray:
        """Normalised weighted error reduction per feature (Table 5.2)."""
        imp = np.zeros(self.n_features_)
        for stump, alpha in zip(self.stumps, self.alphas):
            imp[stump.feature] += alpha
        total = imp.sum()
        return imp / total if total > 0 else imp


def classification_scores(
    y_true: np.ndarray, y_pred: np.ndarray
) -> dict[str, float]:
    """accuracy / precision / recall / F1 for the positive class (+1)."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    tp = float(np.sum((y_pred == 1) & (y_true == 1)))
    fp = float(np.sum((y_pred == 1) & (y_true == -1)))
    fn = float(np.sum((y_pred == -1) & (y_true == 1)))
    tn = float(np.sum((y_pred == -1) & (y_true == -1)))
    total = tp + fp + fn + tn
    accuracy = (tp + tn) / total if total else 0.0
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return {
        "accuracy": accuracy,
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }


def train_test_split(
    X: np.ndarray, y: np.ndarray, test_fraction: float = 0.3, seed: int = 0
):
    """Deterministic shuffled split."""
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(y))
    cut = max(1, int(len(y) * (1 - test_fraction)))
    train, test = idx[:cut], idx[cut:]
    if len(test) == 0:
        test = train[-1:]
    return X[train], y[train], X[test], y[test]
