"""Further applications of the framework (Chapter 5).

* :mod:`repro.apps.features` / :mod:`repro.apps.ml` /
  :mod:`repro.apps.doall_classifier` — characterizing features for DOALL
  loops (§5.1, Tables 5.1–5.3): dynamic loop features + an AdaBoost
  ensemble of decision stumps (implemented from scratch on NumPy — no
  sklearn offline) with weighted-error-reduction feature importances.
* :mod:`repro.apps.stm` — determining optimal parameters for software
  transactional memory (§5.2, Table 5.4): transactions and their read/write
  set sizes derived from the profiler's output.
* :mod:`repro.apps.commpattern` — detecting communication patterns on
  multicore systems (§5.3, Fig. 5.1): thread-to-thread communication
  matrices from cross-thread dependences.
"""

from repro.apps.features import LOOP_FEATURES, loop_feature_vector
from repro.apps.ml import AdaBoost, DecisionStump, classification_scores
from repro.apps.doall_classifier import DoallClassifier, build_dataset
from repro.apps.stm import TransactionAnalysis, analyze_transactions
from repro.apps.commpattern import (
    CommunicationMatrix,
    communication_matrix,
)

__all__ = [
    "LOOP_FEATURES",
    "loop_feature_vector",
    "AdaBoost",
    "DecisionStump",
    "classification_scores",
    "DoallClassifier",
    "build_dataset",
    "TransactionAnalysis",
    "analyze_transactions",
    "CommunicationMatrix",
    "communication_matrix",
]
