"""DOALL loop classification (§5.1, Tables 5.1–5.3).

Builds a dataset of (feature vector, label) pairs from discovery results
over a corpus of programs, trains the AdaBoost ensemble, and reports
feature importances and held-out classification scores — separated, like
Table 5.3, into loops that carry ground-truth annotations ("loops with
pragmas", i.e. loops the reference parallel implementation parallelizes)
and loops without.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.apps.features import LOOP_FEATURES, loop_feature_vector
from repro.apps.ml import AdaBoost, classification_scores, train_test_split
from repro.discovery.loops import LoopInfo
from repro.discovery.pipeline import DiscoveryResult


@dataclass
class LoopSample:
    program: str
    loop: LoopInfo
    features: np.ndarray
    label: int  # +1 parallelizable, -1 not
    has_pragma: bool  # ground-truth annotation exists (reference version)


def build_dataset(
    corpus: Iterable[tuple[str, DiscoveryResult, dict[int, bool]]],
) -> list[LoopSample]:
    """``corpus`` items: (program_name, discovery_result, ground_truth)
    where ground_truth maps loop header lines to "is parallel in the
    reference implementation".  Loops without a ground-truth entry are
    labelled by the detector (self-training labels) and marked
    ``has_pragma=False``."""
    samples: list[LoopSample] = []
    for name, result, truth in corpus:
        for info in result.loops:
            vec = loop_feature_vector(result, info)
            if info.start_line in truth:
                label = 1 if truth[info.start_line] else -1
                has_pragma = True
            else:
                label = 1 if info.is_parallelizable else -1
                has_pragma = False
            samples.append(LoopSample(name, info, vec, label, has_pragma))
    return samples


@dataclass
class DoallClassifier:
    """Trained classifier + evaluation artefacts."""

    model: AdaBoost = field(default_factory=lambda: AdaBoost(n_estimators=60))
    feature_names: tuple = LOOP_FEATURES

    def fit(self, samples: list[LoopSample], seed: int = 0) -> dict:
        """Train/evaluate; returns the Table 5.2 + 5.3 style report."""
        if not samples:
            raise ValueError("empty corpus")
        X = np.stack([s.features for s in samples])
        y = np.array([s.label for s in samples], dtype=np.float64)
        pragma = np.array([s.has_pragma for s in samples])
        # normalise features to comparable scales for stump thresholds
        scale = np.maximum(X.max(axis=0) - X.min(axis=0), 1e-9)
        Xn = (X - X.min(axis=0)) / scale

        idx = np.arange(len(y))
        X_tr, y_tr, X_te, y_te = train_test_split(Xn, y, 0.3, seed)
        idx_tr_arr, _, idx_te_arr, _ = train_test_split(
            idx.reshape(-1, 1), y, 0.3, seed
        )
        self.model.fit(X_tr, y_tr)

        pred_te = self.model.predict(X_te)
        report = {
            "importances": dict(
                zip(self.feature_names, self.model.feature_importances())
            ),
            "overall": classification_scores(y_te, pred_te),
        }
        te_rows = idx_te_arr.reshape(-1).astype(int)
        mask_pragma = pragma[te_rows]
        if mask_pragma.any():
            report["with_pragmas"] = classification_scores(
                y_te[mask_pragma], pred_te[mask_pragma]
            )
        if (~mask_pragma).any():
            report["without_pragmas"] = classification_scores(
                y_te[~mask_pragma], pred_te[~mask_pragma]
            )
        return report
