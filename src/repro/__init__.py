"""repro — a reproduction of *Discovery of Potential Parallelism in
Sequential Programs* (DiscoPoP: data-dependence profiler + computational
units + CU-based parallelism discovery).

Public API tour
---------------

Run the whole pipeline on MiniC source::

    from repro import discover_source
    result = discover_source(open("prog.mc").read())
    print(result.format_report())

Profile only (Chapter 2)::

    from repro import profile_source
    profiler, vm, exit_value = profile_source(source,
                                              signature_slots=1 << 20)
    for dep in profiler.store.all():
        ...

Lower-level layers are exposed as subpackages: :mod:`repro.minic` (the
C-like language), :mod:`repro.mir` (the LLVM-like IR), :mod:`repro.runtime`
(the instrumenting VM), :mod:`repro.profiler`, :mod:`repro.cu`,
:mod:`repro.discovery`, :mod:`repro.simulate`, :mod:`repro.apps`, and
:mod:`repro.workloads` (the benchmark suite with ground truth).
"""

from repro.mir.lowering import compile_source
from repro.runtime.interpreter import VM, run_source
from repro.profiler.serial import SerialProfiler, profile_source
from repro.profiler.shadow import PerfectShadow, SignatureShadow
from repro.profiler.parallel import ParallelProfiler
from repro.profiler.skipping import SkippingProfiler
from repro.profiler.reportfmt import format_report
from repro.cu import build_cu_graph, build_cus
from repro.discovery import discover, discover_source

__version__ = "1.0.0"

__all__ = [
    "compile_source",
    "VM",
    "run_source",
    "SerialProfiler",
    "profile_source",
    "PerfectShadow",
    "SignatureShadow",
    "ParallelProfiler",
    "SkippingProfiler",
    "format_report",
    "build_cus",
    "build_cu_graph",
    "discover",
    "discover_source",
    "__version__",
]
