"""repro — a reproduction of *Discovery of Potential Parallelism in
Sequential Programs* (DiscoPoP: data-dependence profiler + computational
units + CU-based parallelism discovery).

Public API tour
---------------

The staged engine is the front door.  Phases run independently, cache
their artifacts, and cheap phases re-run against cached expensive ones::

    from repro import DiscoveryEngine

    engine = DiscoveryEngine.from_source(open("prog.mc").read())
    profile = engine.profile()      # Phase 1: the only VM execution
    cus     = engine.build_cus()    # Phase 2a: CU construction
    detect  = engine.detect()       # Phase 2b: loop + task detection
    ranked  = engine.rank()         # Phase 3: scored suggestions
    ranked8 = engine.rank(n_threads=8)   # re-rank WITHOUT re-profiling

    result = engine.run()           # assembled DiscoveryResult
    print(result.format_report())

Configuration is a value object instead of loose kwargs::

    from repro import DiscoveryConfig
    config = DiscoveryConfig(source=src, n_threads=8,
                             signature_slots=1 << 20, seed=7)
    result = DiscoveryEngine(config=config).run()

Every artifact — ``DiscoveryResult``, ``Suggestion``, ``LoopInfo``,
``TaskGraph``, ``SPMDTaskGroup``, ``RankingScores``, the phase artifacts —
round-trips through JSON::

    from repro.engine import save_artifact, load_artifact
    save_artifact(result, "out.json")
    same_report = load_artifact("out.json").format_report()

Batch analysis fans workloads across a process pool (also available as
``repro batch`` on the command line)::

    from repro.engine import job_for_workload, run_batch
    rows = run_batch([job_for_workload(n) for n in ("fib", "sort", "CG")])

Live Python functions analyze directly — no MiniC port needed
(:mod:`repro.frontend` lowers a typed Python subset to the same MIR)::

    import repro

    @repro.candidate
    def saxpy(x: list, y: list, a: float, n: int) -> float:
        for i in range(n):
            y[i] = a * x[i] + y[i]
        return y[0]

    result = repro.analyze(saxpy,
                           args=([1.0] * 64, [2.0] * 64, 3.0, 64))
    print(result.format_report())   # lines point at this file

One-shot wrappers (the pre-engine API, still fully supported)::

    from repro import discover_source
    result = discover_source(open("prog.mc").read())

    from repro import profile_source
    profiler, vm, exit_value = profile_source(source,
                                              signature_slots=1 << 20)

Lower-level layers are exposed as subpackages: :mod:`repro.minic` (the
C-like language), :mod:`repro.mir` (the LLVM-like IR), :mod:`repro.runtime`
(the instrumenting VM), :mod:`repro.profiler`, :mod:`repro.cu`,
:mod:`repro.discovery`, :mod:`repro.engine`, :mod:`repro.simulate`,
:mod:`repro.apps`, and :mod:`repro.workloads` (the benchmark suite with
ground truth).  The command line lives in :mod:`repro.cli` (``repro
profile|discover|report|batch``).
"""

from repro.mir.lowering import compile_source
from repro.runtime.interpreter import VM, run_source
from repro.profiler.serial import SerialProfiler, profile_source
from repro.profiler.shadow import PerfectShadow, SignatureShadow
from repro.profiler.parallel import ParallelProfiler
from repro.profiler.skipping import SkippingProfiler
from repro.profiler.reportfmt import format_report
from repro.cu import build_cu_graph, build_cus
from repro.discovery import discover, discover_source
from repro.engine import (
    DiscoveryConfig,
    DiscoveryEngine,
    DiscoveryResult,
    load_artifact,
    save_artifact,
)
from repro.frontend import (
    FrontendError,
    analyze,
    candidate,
    compile_python_source,
)

__version__ = "1.1.0"

__all__ = [
    "compile_source",
    "VM",
    "run_source",
    "SerialProfiler",
    "profile_source",
    "PerfectShadow",
    "SignatureShadow",
    "ParallelProfiler",
    "SkippingProfiler",
    "format_report",
    "build_cus",
    "build_cu_graph",
    "discover",
    "discover_source",
    "DiscoveryConfig",
    "DiscoveryEngine",
    "DiscoveryResult",
    "load_artifact",
    "save_artifact",
    "analyze",
    "candidate",
    "compile_python_source",
    "FrontendError",
    "__version__",
]
