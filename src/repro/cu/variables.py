"""Global/local variable analysis per control region (§3.2.1, §3.2.5).

The lowering already records, per region, which variables are declared
inside (local) and which are referenced but declared outside (global to the
region).  This module applies the paper's special rules on top:

* function parameters are included in the read set; parameters passed by
  value are excluded from the write set (MiniC scalars are by-value; array
  parameters are by-reference and stay writable);
* the return value is the virtual variable ``ret`` in the write set;
* loop iteration variables are local to the loop by default, global when
  the loop body also writes them.

It also implements the EM-style refinement sketched in §3.2.1: start from
the lexically-global variables, build CUs, restrict to *communicating*
variables (those that actually cause inter-CU dependences), and iterate to
a fixed point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.mir.module import Module, Region

#: sentinel var_id for the virtual return-value variable (§3.2.5)
RET_VAR = -1


def effective_global_vars(module: Module, region: Region) -> frozenset:
    """The paper's ``globalVars`` of a region after the §3.2.5 rules."""
    global_vars = set(region.global_vars)
    if region.kind == "loop" and region.iter_var is not None:
        if not region.iter_var_written_in_body:
            global_vars.discard(region.iter_var)
    if region.kind == "func":
        func = module.functions.get(region.func)
        if func is not None:
            for pinfo in func.params:
                global_vars.add(pinfo.var_id)
    return frozenset(global_vars)


def read_write_sets(
    module: Module, region: Region, global_vars: frozenset
) -> tuple[frozenset, frozenset]:
    """(read_set, write_set) of region-global variables, §3.2.5 rules:
    params always read; by-value params never written; ``ret`` written by
    non-void functions."""
    reads = set(region.read_vars & global_vars)
    writes = set(region.written_vars & global_vars)
    if region.kind == "func":
        func = module.functions.get(region.func)
        if func is not None:
            for pinfo in func.params:
                reads.add(pinfo.var_id)
                if not pinfo.is_array:
                    writes.discard(pinfo.var_id)
            if func.return_type != "void":
                writes.add(RET_VAR)
    return frozenset(reads), frozenset(writes)


def communicating_vars_refinement(
    module: Module,
    region: Region,
    build: Callable[[frozenset], object],
    communicating_of: Callable[[object], frozenset],
    max_iterations: int = 8,
) -> tuple[frozenset, object]:
    """EM-style refinement (§3.2.1): global vars are the initial guess of
    the communicating variables; rebuild CUs until the set stabilises.

    ``build(vars)`` constructs CUs from a candidate variable set;
    ``communicating_of(result)`` extracts the variables that actually carry
    inter-CU dependences.  Returns the fixed point.
    """
    candidate = effective_global_vars(module, region)
    result = build(candidate)
    for _ in range(max_iterations):
        refined = frozenset(communicating_of(result)) & candidate
        if refined == candidate:
            break
        if not refined:
            break
        candidate = refined
        result = build(candidate)
    return candidate, result
