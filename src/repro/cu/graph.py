"""CU graphs (§3.4).

Vertices are CUs; edges are the data dependences between their read/write
phases, restricted by the Table 3.1 rules:

* between different CUs: RAW, WAR, WAW all included;
* within one CU: only the RAW self-edge (the iterative read-previous-
  result pattern) is kept — intra-CU WAR is implied by read-compute-write,
  intra-CU WAW is a compiler concern, neither contributes to parallelism
  discovery.

Because the number of region-global variables is much smaller than the
number of locals, a CU graph is a drastic simplification of the classic
dependence graph — the property the discovery algorithms in Chapter 4
exploit.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Optional

import networkx as nx

from repro.cu.model import CU, CURegistry
from repro.mir.module import Module, Region
from repro.profiler.deps import Dependence, DependenceStore, DepType


class CUGraph:
    """A networkx DiGraph over CUs with dependence-typed edges."""

    def __init__(self, cus: list[CU]) -> None:
        self.cus = list(cus)
        self.graph = nx.DiGraph()
        for cu in self.cus:
            self.graph.add_node(cu.cu_id, cu=cu)
        self._line2cu: dict[int, int] = {}
        for cu in self.cus:
            for line in cu.lines:
                # prefer the smaller CU when lines overlap (nested regions)
                existing = self._line2cu.get(line)
                if existing is None or len(cu.lines) < len(
                    self.cu(existing).lines
                ):
                    self._line2cu[line] = cu.cu_id

    # ------------------------------------------------------------------

    def cu(self, cu_id: int) -> CU:
        return self.graph.nodes[cu_id]["cu"]

    def cu_of_line(self, line: int) -> Optional[CU]:
        cu_id = self._line2cu.get(line)
        return self.cu(cu_id) if cu_id is not None else None

    def add_dependences(self, store: DependenceStore) -> None:
        """Map line-level dependences onto CU edges (sink CU -> source CU)."""
        graph = self.graph
        for dep in store:
            a = self._line2cu.get(dep.sink_line)
            b = self._line2cu.get(dep.source_line)
            if a is None or b is None:
                continue
            if a == b:
                # Table 3.1: keep only the RAW self-edge, and only when it
                # spans executions (loop-carried) — intra-execution RAW is
                # the CU's internal read-compute-write order.
                if dep.type != DepType.RAW or not dep.loop_carried:
                    continue
            edge = graph.get_edge_data(a, b)
            if edge is None:
                graph.add_edge(
                    a, b, types=set(), vars=set(), loop_carried=False,
                    carriers=set()
                )
                edge = graph.get_edge_data(a, b)
            edge["types"].add(dep.type)
            edge["vars"].add(dep.var)
            edge["loop_carried"] |= dep.loop_carried
            edge["carriers"] |= dep.carriers

    # ------------------------------------------------------------------
    # structure queries used by Chapter 4
    # ------------------------------------------------------------------

    def raw_subgraph(self) -> nx.DiGraph:
        """Only true-dependence edges — the ones that cannot be broken."""
        sub = nx.DiGraph()
        sub.add_nodes_from(self.graph.nodes(data=True))
        for a, b, data in self.graph.edges(data=True):
            if DepType.RAW in data["types"]:
                sub.add_edge(a, b, **data)
        return sub

    def sccs(self) -> list[set]:
        """Strongly connected components of the RAW subgraph (§4.2.2)."""
        return [set(c) for c in nx.strongly_connected_components(
            self.raw_subgraph()
        )]

    def condensation(self) -> nx.DiGraph:
        """SCC condensation of the RAW subgraph — the task graph skeleton
        after substituting SCCs with single vertices (Fig. 4.5)."""
        return nx.condensation(self.raw_subgraph())

    def chains(self) -> list[list]:
        """Maximal chains (paths of nodes with in/out degree <= 1) in the
        condensation — merged into single vertices by Fig. 4.5's
        simplification."""
        cond = self.condensation()
        chains: list[list] = []
        visited: set = set()
        for node in nx.topological_sort(cond):
            if node in visited:
                continue
            if cond.in_degree(node) > 1:
                continue
            chain = [node]
            visited.add(node)
            current = node
            while True:
                succs = list(cond.successors(current))
                if len(succs) != 1:
                    break
                nxt = succs[0]
                if cond.in_degree(nxt) != 1 or nxt in visited:
                    break
                chain.append(nxt)
                visited.add(nxt)
                current = nxt
            chains.append(chain)
        return chains

    def independent_groups(self) -> list[set]:
        """Weakly connected components — groups with no dependences between
        them can run fully in parallel."""
        return [set(c) for c in nx.weakly_connected_components(self.graph)]

    def format_text(self) -> str:
        """ASCII rendering in the spirit of Fig. 3.6."""
        lines = []
        for cu in self.cus:
            succs = [
                (b, d) for a, b, d in self.graph.out_edges(cu.cu_id, data=True)
            ]
            deps = ", ".join(
                f"{self.cu(b).name}({'/'.join(sorted(d['types']))})"
                for b, d in succs
            )
            lines.append(f"{cu.name} -> [{deps}]")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# partitioning helpers
# ---------------------------------------------------------------------------


def container_cus(
    registry: CURegistry,
    module: Module,
    region: Region,
    line_counts: Optional[dict] = None,
) -> list[CU]:
    """The CU partition of a region's *direct* content: child regions appear
    as their own CUs (single-CU regions) or their segment CUs, and the
    region's own lines (outside any child) contribute the region's
    segment/region CUs restricted to those lines.  ``line_counts`` (dynamic
    memory instructions per line) lets trimmed CUs carry accurate work."""
    child_lines: set[int] = set()
    cus: list[CU] = []
    for child_id in region.children:
        child = module.regions[child_id]
        for cu in registry.cus_of_region(child_id):
            cus.append(cu)
        child_lines.update(
            range(child.start_line, child.end_line + 1)
        )
    for cu in registry.cus_of_region(region.region_id):
        own = frozenset(l for l in cu.lines if l not in child_lines)
        if own:
            if line_counts is not None:
                instructions = sum(line_counts.get(l, 0) for l in own)
            else:
                # fall back to a proportional estimate by line share
                share = len(own) / max(1, len(cu.lines))
                instructions = int(cu.instructions * share)
            trimmed = CU(
                cu_id=cu.cu_id,
                region_id=cu.region_id,
                func=cu.func,
                kind=cu.kind,
                start_line=min(own),
                end_line=max(own),
                lines=own,
                read_set=cu.read_set,
                write_set=cu.write_set,
                read_phase=frozenset(p for p in cu.read_phase if p[0] in own),
                write_phase=frozenset(p for p in cu.write_phase if p[0] in own),
                instructions=instructions,
            )
            cus.append(trimmed)
    return cus


def split_cus_at_lines(
    cus: list[CU],
    isolate: frozenset,
    line_counts: Optional[dict] = None,
) -> list[CU]:
    """Isolate given lines (call sites) into their own CUs.

    Task detection treats each call site as a schedulable unit — the PET
    view of §2.3.6, where function nodes are first-class.  Segment CUs that
    contain call lines are split so every call line stands alone; region
    CUs (whole child constructs) are left intact.
    """
    next_id = max((cu.cu_id for cu in cus), default=0) + 1
    out: list[CU] = []
    for cu in cus:
        targets = sorted(cu.lines & isolate)
        if not targets or cu.kind == "region":
            out.append(cu)
            continue
        pieces: list[list[int]] = []
        current: list[int] = []
        for line in sorted(cu.lines):
            if line in isolate:
                if current:
                    pieces.append(current)
                pieces.append([line])
                current = []
            else:
                current.append(line)
        if current:
            pieces.append(current)
        for piece in pieces:
            piece_set = frozenset(piece)
            instructions = (
                sum(line_counts.get(l, 0) for l in piece)
                if line_counts
                else max(1, cu.instructions // max(1, len(pieces)))
            )
            out.append(
                CU(
                    cu_id=next_id,
                    region_id=cu.region_id,
                    func=cu.func,
                    kind="segment",
                    start_line=min(piece),
                    end_line=max(piece),
                    lines=piece_set,
                    read_set=cu.read_set,
                    write_set=cu.write_set,
                    read_phase=frozenset(
                        p for p in cu.read_phase if p[0] in piece_set
                    ),
                    write_phase=frozenset(
                        p for p in cu.write_phase if p[0] in piece_set
                    ),
                    instructions=instructions,
                )
            )
            next_id += 1
    return out


def build_cu_graph(
    cus_or_registry,
    store: DependenceStore,
    module: Optional[Module] = None,
    region: Optional[Region] = None,
    *,
    isolate_lines: Optional[frozenset] = None,
    line_counts: Optional[dict] = None,
) -> CUGraph:
    """Build a CU graph either from an explicit CU list or from a registry +
    container region (using :func:`container_cus`)."""
    if isinstance(cus_or_registry, CURegistry):
        assert module is not None and region is not None
        cus = container_cus(cus_or_registry, module, region, line_counts)
    else:
        cus = list(cus_or_registry)
    if isolate_lines:
        cus = split_cus_at_lines(cus, frozenset(isolate_lines), line_counts)
    graph = CUGraph(cus)
    graph.add_dependences(store)
    return graph
