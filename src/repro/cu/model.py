"""CU data model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CU:
    """One computational unit.

    ``read_set`` / ``write_set`` hold the region-global variables read /
    written (§3.1); ``read_phase`` / ``write_phase`` the (line, var_id)
    pairs of the load/store instructions forming the phases.  ``lines`` is
    the set of source lines the CU covers — the currency for mapping
    dependences onto CU-graph edges.
    """

    cu_id: int
    region_id: int
    func: str
    kind: str  # 'region' (whole region is a CU) | 'segment' (split result)
    start_line: int
    end_line: int
    lines: frozenset = frozenset()
    read_set: frozenset = frozenset()
    write_set: frozenset = frozenset()
    read_phase: frozenset = frozenset()
    write_phase: frozenset = frozenset()
    #: dynamic cost: memory instructions executed inside this CU
    instructions: int = 0

    @property
    def name(self) -> str:
        return f"CU{self.cu_id}[{self.start_line}-{self.end_line}]"

    def covers(self, line: int) -> bool:
        return line in self.lines

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{self.name} {self.kind} R{self.region_id} "
            f"r={len(self.read_set)} w={len(self.write_set)}>"
        )


@dataclass
class RegionCUInfo:
    """Construction result for one control region."""

    region_id: int
    is_single_cu: bool
    #: the whole-region CU when is_single_cu, else None
    region_cu: Optional[CU] = None
    #: split CUs when the region violated the read-compute-write pattern
    segments: list[CU] = field(default_factory=list)
    #: (line, var_id) reads that violated the pattern
    violations: frozenset = frozenset()

    def cus(self) -> list[CU]:
        if self.is_single_cu and self.region_cu is not None:
            return [self.region_cu]
        return list(self.segments)


class CURegistry:
    """All CUs built for one module execution."""

    def __init__(self) -> None:
        self.by_region: dict[int, RegionCUInfo] = {}
        self.all_cus: dict[int, CU] = {}
        self._next_id = 0

    def new_cu(self, **kwargs) -> CU:
        cu = CU(cu_id=self._next_id, **kwargs)
        self._next_id += 1
        self.all_cus[cu.cu_id] = cu
        return cu

    def info(self, region_id: int) -> RegionCUInfo:
        return self.by_region[region_id]

    def cus_of_region(self, region_id: int) -> list[CU]:
        info = self.by_region.get(region_id)
        return info.cus() if info else []

    def cu_covering(self, line: int, region_id: int) -> Optional[CU]:
        for cu in self.cus_of_region(region_id):
            if cu.covers(line):
                return cu
        return None

    def __len__(self) -> int:
        return len(self.all_cus)
