"""CU data model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class CU:
    """One computational unit.

    ``read_set`` / ``write_set`` hold the region-global variables read /
    written (§3.1); ``read_phase`` / ``write_phase`` the (line, var_id)
    pairs of the load/store instructions forming the phases.  ``lines`` is
    the set of source lines the CU covers — the currency for mapping
    dependences onto CU-graph edges.
    """

    cu_id: int
    region_id: int
    func: str
    kind: str  # 'region' (whole region is a CU) | 'segment' (split result)
    start_line: int
    end_line: int
    lines: frozenset = frozenset()
    read_set: frozenset = frozenset()
    write_set: frozenset = frozenset()
    read_phase: frozenset = frozenset()
    write_phase: frozenset = frozenset()
    #: dynamic cost: memory instructions executed inside this CU
    instructions: int = 0

    @property
    def name(self) -> str:
        return f"CU{self.cu_id}[{self.start_line}-{self.end_line}]"

    def covers(self, line: int) -> bool:
        return line in self.lines

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<{self.name} {self.kind} R{self.region_id} "
            f"r={len(self.read_set)} w={len(self.write_set)}>"
        )

    def to_dict(self) -> dict:
        """Stable JSON form: frozensets become sorted lists, phase pairs
        become two-element lists."""
        return {
            "cu_id": self.cu_id,
            "region_id": self.region_id,
            "func": self.func,
            "kind": self.kind,
            "start_line": self.start_line,
            "end_line": self.end_line,
            "lines": sorted(self.lines),
            "read_set": sorted(self.read_set),
            "write_set": sorted(self.write_set),
            "read_phase": sorted(list(p) for p in self.read_phase),
            "write_phase": sorted(list(p) for p in self.write_phase),
            "instructions": self.instructions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CU":
        return cls(
            cu_id=data["cu_id"],
            region_id=data["region_id"],
            func=data["func"],
            kind=data["kind"],
            start_line=data["start_line"],
            end_line=data["end_line"],
            lines=frozenset(data["lines"]),
            read_set=frozenset(data["read_set"]),
            write_set=frozenset(data["write_set"]),
            read_phase=frozenset(tuple(p) for p in data["read_phase"]),
            write_phase=frozenset(tuple(p) for p in data["write_phase"]),
            instructions=data["instructions"],
        )


@dataclass
class RegionCUInfo:
    """Construction result for one control region."""

    region_id: int
    is_single_cu: bool
    #: the whole-region CU when is_single_cu, else None
    region_cu: Optional[CU] = None
    #: split CUs when the region violated the read-compute-write pattern
    segments: list[CU] = field(default_factory=list)
    #: (line, var_id) reads that violated the pattern
    violations: frozenset = frozenset()

    def cus(self) -> list[CU]:
        if self.is_single_cu and self.region_cu is not None:
            return [self.region_cu]
        return list(self.segments)


class CURegistry:
    """All CUs built for one module execution."""

    def __init__(self) -> None:
        self.by_region: dict[int, RegionCUInfo] = {}
        self.all_cus: dict[int, CU] = {}
        self._next_id = 0

    def new_cu(self, **kwargs) -> CU:
        cu = CU(cu_id=self._next_id, **kwargs)
        self._next_id += 1
        self.all_cus[cu.cu_id] = cu
        return cu

    def info(self, region_id: int) -> RegionCUInfo:
        return self.by_region[region_id]

    def cus_of_region(self, region_id: int) -> list[CU]:
        info = self.by_region.get(region_id)
        return info.cus() if info else []

    def cu_covering(self, line: int, region_id: int) -> Optional[CU]:
        for cu in self.cus_of_region(region_id):
            if cu.covers(line):
                return cu
        return None

    def __len__(self) -> int:
        return len(self.all_cus)

    def to_dict(self) -> dict:
        """JSON form suitable for persisting CU artifacts to disk (the
        DiscoPoP cu-graph-analyzer pattern: downstream analyses consume the
        persisted CU set without re-running the program)."""
        return {
            "next_id": self._next_id,
            "cus": [
                cu.to_dict()
                for _, cu in sorted(self.all_cus.items())
            ],
            "regions": [
                {
                    "region_id": info.region_id,
                    "is_single_cu": info.is_single_cu,
                    "region_cu": (
                        info.region_cu.cu_id
                        if info.region_cu is not None
                        else None
                    ),
                    "segments": [cu.cu_id for cu in info.segments],
                    "violations": sorted(
                        list(v) for v in info.violations
                    ),
                }
                for _, info in sorted(self.by_region.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CURegistry":
        registry = cls()
        registry._next_id = data["next_id"]
        for entry in data["cus"]:
            cu = CU.from_dict(entry)
            registry.all_cus[cu.cu_id] = cu
        for entry in data["regions"]:
            registry.by_region[entry["region_id"]] = RegionCUInfo(
                region_id=entry["region_id"],
                is_single_cu=entry["is_single_cu"],
                region_cu=(
                    registry.all_cus[entry["region_cu"]]
                    if entry["region_cu"] is not None
                    else None
                ),
                segments=[
                    registry.all_cus[cu_id] for cu_id in entry["segments"]
                ],
                violations=frozenset(
                    tuple(v) for v in entry["violations"]
                ),
            )
        return registry
