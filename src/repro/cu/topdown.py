"""Top-down CU construction (Algorithm 3).

For every control region the builder checks — against the executed trace —
whether the whole region satisfies the read-compute-write pattern over its
region-global variables: no read of a global variable may *happen after* a
write to it within one execution instance of the region.  Instances are one
function invocation, one loop iteration (the per-iteration analysis behind
Fig. 3.4: the write of ``x`` at the end of an iteration does not violate the
pattern for the next iteration — it becomes the CU's RAW self-edge), or one
branch execution.

Regions that pass are single CUs.  Regions that fail are split at the
violating read lines: every violating read starts a new segment, and each
segment becomes a CU (the "build CUs for all code snippets separated by the
violating read instructions" step of Algorithm 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.cu.model import CU, CURegistry, RegionCUInfo
from repro.cu.variables import effective_global_vars, read_write_sets
from repro.mir.instructions import Opcode
from repro.mir.module import Module, Region
from repro.runtime.events import (
    COL_ADDR,
    COL_KIND,
    COL_LINE,
    COL_NAME,
    COL_TID,
    COL_VAR,
    EV_BGN,
    EV_END,
    EV_FENTRY,
    EV_FEXIT,
    EV_ITER,
    EV_READ,
    EV_WRITE,
    EventChunk,
    K_BGN,
    K_END,
    K_FENTRY,
    K_FEXIT,
    K_ITER,
    K_READ,
    K_WRITE,
)


@dataclass
class _Instance:
    """One dynamic execution instance of a region (per thread)."""

    region_id: int
    start_line: int
    end_line: int
    gv: frozenset
    written: set = field(default_factory=set)


@dataclass
class _RegionAccum:
    """Aggregated observations for one static region."""

    executed: bool = False
    violations: set = field(default_factory=set)  # (line, var_id)
    read_phase: set = field(default_factory=set)  # (line, var_id)
    write_phase: set = field(default_factory=set)


class TopDownBuilder:
    """Builds the CU registry from a module + recorded trace."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self._accum: dict[int, _RegionAccum] = {
            rid: _RegionAccum() for rid in module.regions
        }
        self._gv_cache: dict[int, frozenset] = {
            rid: effective_global_vars(module, region)
            for rid, region in module.regions.items()
        }
        #: per-thread stack of open instances
        self._stacks: dict[int, list[_Instance]] = {}
        #: dynamic memory-instruction count per source line
        self.line_counts: dict[int, int] = {}
        #: map function name -> its region id
        self._func_region = {
            name: func.region_id for name, func in module.functions.items()
        }
        #: per-thread var_id -> instances whose gv contain it, valid for the
        #: current stack state (columnar walk; invalidated on open/close)
        self._filters: dict[int, dict] = {}

    # ------------------------------------------------------------------
    # trace consumption
    # ------------------------------------------------------------------

    def _open(self, tid: int, region_id: int) -> None:
        region = self.module.regions[region_id]
        inst = _Instance(
            region_id, region.start_line, region.end_line, self._gv_cache[region_id]
        )
        self._stacks.setdefault(tid, []).append(inst)
        self._accum[region_id].executed = True
        self._filters.pop(tid, None)

    def _close(self, tid: int, region_id: int) -> None:
        self._filters.pop(tid, None)
        stack = self._stacks.get(tid)
        if not stack:
            return
        # pop until the matching region is closed (robust to early returns)
        while stack:
            inst = stack.pop()
            if inst.region_id == region_id:
                break

    def process(self, events: Iterable[tuple]) -> None:
        stacks = self._stacks
        accum = self._accum
        line_counts = self.line_counts
        for ev in events:
            kind = ev[0]
            if kind == EV_READ:
                line = ev[2]
                tid = ev[5]
                var_id = ev[8]
                line_counts[line] = line_counts.get(line, 0) + 1
                for inst in stacks.get(tid, ()):
                    if var_id in inst.gv:
                        acc = accum[inst.region_id]
                        in_range = inst.start_line <= line <= inst.end_line
                        if in_range:
                            acc.read_phase.add((line, var_id))
                        if var_id in inst.written and in_range:
                            acc.violations.add((line, var_id))
            elif kind == EV_WRITE:
                line = ev[2]
                tid = ev[5]
                var_id = ev[8]
                line_counts[line] = line_counts.get(line, 0) + 1
                for inst in stacks.get(tid, ()):
                    if var_id in inst.gv:
                        acc = accum[inst.region_id]
                        if inst.start_line <= line <= inst.end_line:
                            acc.write_phase.add((line, var_id))
                        inst.written.add(var_id)
            elif kind == EV_BGN:
                self._open(ev[4], ev[1])
            elif kind == EV_END:
                self._close(ev[4], ev[1])
            elif kind == EV_ITER:
                # new loop iteration: per-iteration happens-before resets
                stack = stacks.get(ev[2], ())
                for inst in reversed(stack):
                    if inst.region_id == ev[1]:
                        inst.written.clear()
                        break
            elif kind == EV_FENTRY:
                region_id = self._func_region.get(ev[1])
                if region_id is not None:
                    self._open(ev[3], region_id)
            elif kind == EV_FEXIT:
                region_id = self._func_region.get(ev[1])
                if region_id is not None:
                    self._close(ev[2], region_id)

    def process_chunks(self, chunks: Iterable) -> None:
        """Walk a chunked trace; packed chunks take the columnar fast path.

        Accepts the output of ``TraceSink.iter_chunks`` /
        ``SpillingTraceSink.iter_chunks`` — tuple chunks go through
        :meth:`process` unchanged.
        """
        for chunk in chunks:
            if isinstance(chunk, EventChunk):
                self._process_columnar(chunk)
            else:
                self.process(chunk)

    def _process_columnar(self, chunk: EventChunk) -> None:
        """Columnar trace walk.

        Line counts are accumulated with one vectorized ``np.unique`` per
        chunk instead of two dict operations per event, and the per-event
        loop runs over bulk-extracted int columns.  The open-instance scan
        is memoized per ``(stack state, var_id)`` — stacks only change at
        region markers, so between markers the set of instances whose
        region-global variables contain a given var is a dict hit instead
        of a walk with per-instance frozenset probes.  Output
        (violations, phases, written-sets) is identical to :meth:`process`.
        """
        rows = chunk.rows
        if rows.shape[0] == 0:
            return
        kinds = rows[:, COL_KIND]
        mem_mask = kinds <= K_WRITE
        if mem_mask.any():
            uniq, counts = np.unique(
                rows[mem_mask, COL_LINE], return_counts=True
            )
            line_counts = self.line_counts
            for line, count in zip(uniq.tolist(), counts.tolist()):
                line_counts[line] = line_counts.get(line, 0) + count
        klist = kinds.tolist()
        regs = rows[:, COL_ADDR].tolist()
        lines = rows[:, COL_LINE].tolist()
        nids = rows[:, COL_NAME].tolist()
        tids = rows[:, COL_TID].tolist()
        vids = rows[:, COL_VAR].tolist()
        names = chunk.strings.values
        stacks = self._stacks
        accum = self._accum
        filters = self._filters
        idx = -1
        for k, tid in zip(klist, tids):
            idx += 1
            if k == K_READ:
                var_id = vids[idx]
                flt = filters.get(tid)
                if flt is None:
                    flt = filters[tid] = {}
                insts = flt.get(var_id)
                if insts is None:
                    insts = flt[var_id] = tuple(
                        inst
                        for inst in stacks.get(tid, ())
                        if var_id in inst.gv
                    )
                if insts:
                    line = lines[idx]
                    for inst in insts:
                        acc = accum[inst.region_id]
                        if inst.start_line <= line <= inst.end_line:
                            acc.read_phase.add((line, var_id))
                            if var_id in inst.written:
                                acc.violations.add((line, var_id))
            elif k == K_WRITE:
                var_id = vids[idx]
                flt = filters.get(tid)
                if flt is None:
                    flt = filters[tid] = {}
                insts = flt.get(var_id)
                if insts is None:
                    insts = flt[var_id] = tuple(
                        inst
                        for inst in stacks.get(tid, ())
                        if var_id in inst.gv
                    )
                if insts:
                    line = lines[idx]
                    for inst in insts:
                        if inst.start_line <= line <= inst.end_line:
                            accum[inst.region_id].write_phase.add(
                                (line, var_id)
                            )
                        inst.written.add(var_id)
            elif k == K_BGN:
                self._open(tid, regs[idx])
            elif k == K_END:
                self._close(tid, regs[idx])
            elif k == K_ITER:
                stack = stacks.get(tid, ())
                region_id = regs[idx]
                for inst in reversed(stack):
                    if inst.region_id == region_id:
                        inst.written.clear()
                        break
            elif k == K_FENTRY:
                region_id = self._func_region.get(names[nids[idx]])
                if region_id is not None:
                    self._open(tid, region_id)
            elif k == K_FEXIT:
                region_id = self._func_region.get(names[nids[idx]])
                if region_id is not None:
                    self._close(tid, region_id)

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------

    def _static_mem_lines(self, region: Region) -> list[int]:
        """Source lines with memory operations lexically inside the region."""
        func = self.module.functions.get(region.func)
        if func is None:
            return []
        lines = {
            instr.line
            for instr in func.code
            if instr.is_memory() and region.contains_line(instr.line)
        }
        return sorted(lines)

    def build(self) -> CURegistry:
        registry = CURegistry()
        for region_id, region in self.module.regions.items():
            acc = self._accum[region_id]
            if not acc.executed:
                continue
            gv = self._gv_cache[region_id]
            read_set, write_set = read_write_sets(self.module, region, gv)
            lines = self._static_mem_lines(region)
            instructions = sum(self.line_counts.get(l, 0) for l in lines)
            if not acc.violations:
                cu = registry.new_cu(
                    region_id=region_id,
                    func=region.func,
                    kind="region",
                    start_line=region.start_line,
                    end_line=region.end_line,
                    lines=frozenset(lines) | {region.start_line, region.end_line},
                    read_set=read_set,
                    write_set=write_set,
                    read_phase=frozenset(acc.read_phase),
                    write_phase=frozenset(acc.write_phase),
                    instructions=instructions,
                )
                registry.by_region[region_id] = RegionCUInfo(
                    region_id, True, region_cu=cu
                )
            else:
                violating_lines = {line for line, _ in acc.violations}
                # CUs never cross control-region boundaries (§3.1): child
                # regions force segment breaks at their start and right
                # after their end.
                child_bounds: set[int] = set()
                for child_id in region.children:
                    child = self.module.regions[child_id]
                    child_bounds.add(child.start_line)
                    child_bounds.add(child.end_line + 1)
                boundary_lines = violating_lines | {
                    _first_line_at_or_after(lines, b) for b in child_bounds
                }
                boundary_lines.discard(None)
                segments = _split_segments(lines, sorted(boundary_lines))
                info = RegionCUInfo(
                    region_id,
                    False,
                    violations=frozenset(acc.violations),
                )
                for seg_lines in segments:
                    seg_set = set(seg_lines)
                    seg_reads = {
                        (l, v) for (l, v) in acc.read_phase if l in seg_set
                    }
                    seg_writes = {
                        (l, v) for (l, v) in acc.write_phase if l in seg_set
                    }
                    cu = registry.new_cu(
                        region_id=region_id,
                        func=region.func,
                        kind="segment",
                        start_line=min(seg_lines),
                        end_line=max(seg_lines),
                        lines=frozenset(seg_lines),
                        read_set=frozenset(v for _, v in seg_reads),
                        write_set=frozenset(v for _, v in seg_writes),
                        read_phase=frozenset(seg_reads),
                        write_phase=frozenset(seg_writes),
                        instructions=sum(
                            self.line_counts.get(l, 0) for l in seg_lines
                        ),
                    )
                    info.segments.append(cu)
                registry.by_region[region_id] = info
        return registry


def _first_line_at_or_after(lines: list[int], bound: int):
    """First executed-line value >= bound, or None."""
    from bisect import bisect_left

    idx = bisect_left(lines, bound)
    return lines[idx] if idx < len(lines) else None


def _split_segments(
    lines: list[int], violating_lines: list[int]
) -> list[list[int]]:
    """Split an ordered line list into segments; every violating read line
    *starts* a new segment."""
    if not lines:
        return []
    boundaries = set(violating_lines)
    segments: list[list[int]] = []
    current: list[int] = []
    for line in lines:
        if line in boundaries and current:
            segments.append(current)
            current = []
        current.append(line)
    if current:
        segments.append(current)
    return segments


def build_cus(module: Module, events: Iterable[tuple]) -> CURegistry:
    """One-call top-down CU construction from a module + event iterable."""
    builder = TopDownBuilder(module)
    builder.process(events)
    return builder.build()
