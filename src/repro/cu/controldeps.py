"""Re-convergence points and dynamic control dependence (§3.2.2).

A statement is control-dependent on a branch if it executes conditionally on
the branch's outcome — i.e. it lies between the branch and the branch's
*re-convergence point*, the first instruction where the alternatives merge
and unconditional execution resumes.

With the CFG available (we compile from source) the re-convergence point is
the branch block's immediate post-dominator.  :func:`lookahead_reconvergence`
also implements the paper's *look-ahead* technique for the no-source case:
walk every branch alternative, following jumps without executing, until the
paths meet (Fig. 3.1).
"""

from __future__ import annotations

from typing import Optional

from repro.mir.cfg import build_cfg, immediate_postdominator, postdominators
from repro.mir.instructions import Opcode
from repro.mir.module import Function, Module


def reconvergence_points(func: Function) -> dict[int, Optional[int]]:
    """Map every branching block label to its re-convergence block label
    (immediate post-dominator), computed from the CFG."""
    cfg = build_cfg(func)
    pdom = postdominators(cfg)
    out: dict[int, Optional[int]] = {}
    for block in func.blocks:
        term = block.terminator
        if term is not None and term.op == Opcode.BR:
            out[block.label] = immediate_postdominator(cfg, block.label, pdom)
    return out


def lookahead_reconvergence(func: Function, branch_label: int) -> Optional[int]:
    """The dynamic look-ahead: traverse both branch alternatives without
    executing, following jumps, until a common block is found.

    Mirrors the Valgrind-based implementation of §3.2.2, which disassembles
    the alternatives' basic blocks and walks them to the merge point.
    """
    cfg = build_cfg(func)
    succs = cfg.succs.get(branch_label, [])
    if len(succs) != 2:
        return None
    left, right = succs
    if left == right:
        return left
    seen_left: set[int] = set()
    seen_right: set[int] = set()
    frontier_left = [left]
    frontier_right = [right]
    # breadth-first expansion of both alternatives; the first block reached
    # by both walks is the re-convergence point
    for _ in range(len(func.blocks) * 2 + 4):
        meet = (seen_left | set(frontier_left)) & (seen_right | set(frontier_right))
        if meet:
            # prefer the meeting block closest to the branch (smallest
            # discovery order): frontier order approximates that
            for candidate in frontier_left + frontier_right + sorted(meet):
                if candidate in meet:
                    return candidate
        next_left: list[int] = []
        for node in frontier_left:
            if node in seen_left:
                continue
            seen_left.add(node)
            next_left.extend(
                s for s in cfg.succs.get(node, ()) if s not in seen_left
            )
        next_right: list[int] = []
        for node in frontier_right:
            if node in seen_right:
                continue
            seen_right.add(node)
            next_right.extend(
                s for s in cfg.succs.get(node, ()) if s not in seen_right
            )
        if not next_left and not next_right:
            break
        frontier_left = next_left
        frontier_right = next_right
    meet = seen_left & seen_right
    return min(meet) if meet else None


def control_dependent_blocks(func: Function) -> dict[int, set[int]]:
    """branch block label -> blocks control-dependent on it (between the
    branch and its re-convergence point)."""
    cfg = build_cfg(func)
    pdom = postdominators(cfg)
    out: dict[int, set[int]] = {}
    for block in func.blocks:
        term = block.terminator
        if term is None or term.op != Opcode.BR:
            continue
        reconv = immediate_postdominator(cfg, block.label, pdom)
        dependent: set[int] = set()
        stack = [s for s in cfg.succs.get(block.label, ())]
        while stack:
            node = stack.pop()
            if node == reconv or node in dependent or node == block.label:
                continue
            dependent.add(node)
            stack.extend(cfg.succs.get(node, ()))
        out[block.label] = dependent
    return out
