"""Bottom-up CU construction (§3.2.3).

Processes the dynamic instruction stream of one region instance: every
instrumented instruction initially forms its own CU; a CU is merged with the
CUs of instructions it *anti-depends* on (write-after-read keeps the
read-compute-write order intact), while true dependences become directed
edges between CUs.  Instructions on variables local to the region are
ignored; adjacent first-writes merge into an INIT node.

As §3.2.3 discusses, this produces very fine-grained CUs (often single
source lines) and is retained for the granularity comparison against the
top-down approach (§3.3); the discovery pipeline uses top-down CUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.cu.variables import effective_global_vars
from repro.mir.module import Module, Region
from repro.runtime.events import EV_READ, EV_WRITE


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self.parent
        if x not in parent:
            parent[x] = x
            return x
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)
        return min(ra, rb)


@dataclass
class FineCU:
    """A bottom-up CU: a set of dynamic instruction occurrences."""

    cu_id: int
    lines: set = field(default_factory=set)
    vars_read: set = field(default_factory=set)
    vars_written: set = field(default_factory=set)
    is_init: bool = False
    n_instructions: int = 0


@dataclass
class BottomUpResult:
    cus: list[FineCU]
    #: RAW edges between CU ids (sink_cu -> source_cu)
    edges: set

    @property
    def n_cus(self) -> int:
        return len(self.cus)

    def mean_cu_size_lines(self) -> float:
        if not self.cus:
            return 0.0
        return sum(len(c.lines) for c in self.cus) / len(self.cus)


class BottomUpBuilder:
    """Runs the bottom-up algorithm over one region instance's events."""

    def __init__(self, module: Module, region: Region) -> None:
        self.module = module
        self.region = region
        self.gv = effective_global_vars(module, region)

    def build(self, events: Iterable[tuple]) -> BottomUpResult:
        """``events`` must be the memory events of ONE instance of the
        region (same thread), in execution order."""
        uf = _UnionFind()
        #: occurrence index -> (line, var_id, kind)
        occ: list[tuple] = []
        #: var -> list of occurrence ids that read it since its last write
        readers: dict[int, list[int]] = {}
        #: var -> occurrence id of its last write
        writer: dict[int, int] = {}
        raw_edges: set = set()
        init_occs: list[int] = []
        prev_was_init = False

        for ev in events:
            kind = ev[0]
            if kind != EV_READ and kind != EV_WRITE:
                prev_was_init = False
                continue
            line = ev[2]
            var_id = ev[8]
            if var_id not in self.gv:
                # instruction on a region-local variable: ignored and
                # dependences involving it excluded (§3.2.3 step 2)
                continue
            if not (self.region.start_line <= line <= self.region.end_line):
                continue
            idx = len(occ)
            occ.append((line, var_id, kind))
            uf.find(idx)  # register
            if kind == EV_READ:
                readers.setdefault(var_id, []).append(idx)
                w = writer.get(var_id)
                if w is not None:
                    # true dependence: directed edge, no merge
                    raw_edges.add((idx, w))
                prev_was_init = False
            else:
                first_write = var_id not in writer
                # merge with every CU that read the variable before us
                # (anti-dependence keeps read before write in one CU)
                for r in readers.pop(var_id, []):
                    uf.union(idx, r)
                writer[var_id] = idx
                if first_write and var_id not in readers:
                    if prev_was_init and init_occs:
                        uf.union(idx, init_occs[-1])
                    init_occs.append(idx)
                    prev_was_init = True
                else:
                    prev_was_init = False

        # materialise CUs
        groups: dict[int, FineCU] = {}
        roots: dict[int, int] = {}
        for idx, (line, var_id, kind) in enumerate(occ):
            root = uf.find(idx)
            cu = groups.get(root)
            if cu is None:
                cu = FineCU(cu_id=len(groups))
                groups[root] = cu
            roots[idx] = cu.cu_id
            cu.lines.add(line)
            cu.n_instructions += 1
            if kind == EV_READ:
                cu.vars_read.add(var_id)
            else:
                cu.vars_written.add(var_id)
        for root_idx in init_occs:
            root = uf.find(root_idx)
            if root in groups:
                groups[root].is_init = True
        edges = {
            (roots[a], roots[b])
            for a, b in raw_edges
            if roots[a] != roots[b]
        }
        return BottomUpResult(list(groups.values()), edges)


def first_instance_events(
    events: Iterable[tuple], module: Module, region: Region
) -> list[tuple]:
    """Extract the memory events of the first complete instance of a region
    (first iteration for loops) — the slice the bottom-up builder analyses."""
    from repro.runtime.events import EV_BGN, EV_END, EV_FENTRY, EV_FEXIT, EV_ITER

    out: list[tuple] = []
    active = False
    tid_of_instance: Optional[int] = None
    for ev in events:
        kind = ev[0]
        if not active:
            if kind == EV_BGN and ev[1] == region.region_id:
                active = True
                tid_of_instance = ev[4]
            elif (
                kind == EV_FENTRY
                and region.kind == "func"
                and ev[1] == region.func
            ):
                active = True
                tid_of_instance = ev[3]
            continue
        if kind == EV_ITER and ev[1] == region.region_id:
            break  # end of first iteration
        if kind == EV_END and ev[1] == region.region_id:
            break
        if kind == EV_FEXIT and region.kind == "func" and ev[1] == region.func:
            break
        if kind in (EV_READ, EV_WRITE) and ev[5] == tid_of_instance:
            out.append(ev)
    return out


def build_cus_bottom_up(
    module: Module, region: Region, events: Iterable[tuple]
) -> BottomUpResult:
    """Convenience: bottom-up CUs of a region's first execution instance."""
    instance = first_instance_events(events, module, region)
    return BottomUpBuilder(module, region).build(instance)
