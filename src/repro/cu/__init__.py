"""Computational Units (Chapter 3).

A CU is the smallest unit mapped onto a thread: a collection of instructions
following the *read-compute-write* pattern over the variables *global to its
enclosing region*.  A code section C with global variables GV is a CU iff
for every v in GV all reads of v happen before all writes of v (§3.1).

* :mod:`repro.cu.variables` — global/local variable analysis per control
  region, including the special rules of §3.2.5 (parameters, the virtual
  ``ret`` variable, loop iteration variables).
* :mod:`repro.cu.topdown` — the top-down construction (Algorithm 3): check
  whole regions, split at violating reads.
* :mod:`repro.cu.bottomup` — the bottom-up construction (§3.2.3): per-
  instruction CUs merged along anti-dependences.
* :mod:`repro.cu.graph` — CU graphs: vertices are CUs, edges the data
  dependences between their phases, with the Table 3.1 edge rules.
* :mod:`repro.cu.controldeps` — re-convergence points (immediate post-
  dominators) and the dynamic look-ahead variant of §3.2.2.
"""

from repro.cu.model import CU, CURegistry
from repro.cu.variables import effective_global_vars
from repro.cu.topdown import TopDownBuilder, build_cus
from repro.cu.bottomup import BottomUpBuilder, build_cus_bottom_up
from repro.cu.graph import CUGraph, build_cu_graph
from repro.cu.controldeps import reconvergence_points, lookahead_reconvergence

__all__ = [
    "CU",
    "CURegistry",
    "effective_global_vars",
    "TopDownBuilder",
    "build_cus",
    "BottomUpBuilder",
    "build_cus_bottom_up",
    "CUGraph",
    "build_cu_graph",
    "reconvergence_points",
    "lookahead_reconvergence",
]
