"""Parallel-execution simulation for speedup prediction.

The paper evaluates its suggestions by *implementing* them and measuring
speedups on real multicores (Tables 4.2, 4.5, 4.7; Fig. 4.11).  The
reproduction's substrate is an interpreter, so re-implementing suggestions
natively is not meaningful; instead this package predicts the speedups with
standard execution models driven by the *measured* work distributions (CU
instruction counts, iteration counts, task graphs): DOALL chunking,
DOACROSS/pipeline staging, and greedy list scheduling of task graphs, plus
per-thread spawn/synchronisation overheads so speedups saturate the way the
paper's measurements do.
"""

from repro.simulate.exec_model import (
    ExecutionModel,
    collect_iteration_costs,
    loop_iteration_costs,
    simulate_doall,
    simulate_pipeline,
    simulate_task_graph,
    whole_program_speedup,
)

__all__ = [
    "ExecutionModel",
    "collect_iteration_costs",
    "loop_iteration_costs",
    "simulate_doall",
    "simulate_pipeline",
    "simulate_task_graph",
    "whole_program_speedup",
]
