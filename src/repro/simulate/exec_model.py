"""Execution models turning measured work distributions into speedups."""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.discovery.tasks import TaskGraph
from repro.runtime.events import (
    COL_ADDR,
    COL_KIND,
    COL_TID,
    COL_TS,
    EV_BGN,
    EV_ITER,
    EventChunk,
    K_BGN,
    K_ITER,
)


@dataclass
class ExecutionModel:
    """Machine/runtime parameters of the simulated multicore.

    ``spawn_overhead`` — cost of creating/dispatching one task, thread,
    or DOALL chunk, in work units (one work unit = one profiled memory
    instruction).
    ``barrier_overhead`` — per-thread cost of a join/barrier.
    """

    spawn_overhead: float = 40.0
    barrier_overhead: float = 20.0

    def parallel_setup_cost(self, n_threads: int) -> float:
        return self.spawn_overhead * n_threads + self.barrier_overhead * n_threads


DEFAULT_MODEL = ExecutionModel()


def simulate_doall(
    iteration_costs: Sequence[float],
    n_threads: int,
    model: ExecutionModel = DEFAULT_MODEL,
    *,
    n_chunks: Optional[int] = None,
) -> float:
    """Speedup of a DOALL loop under the work-stealing scheduler's model.

    ``iteration_costs`` is the per-iteration work (uniform loops may pass
    ``[cost] * iterations``; :func:`loop_iteration_costs` recovers the
    real distribution from a recorded trace).  Iterations split into
    ``n_chunks`` *contiguous* chunks — the transform's actual granularity
    (:mod:`repro.parallelize.transforms` outlines ``min(n_workers,
    iterations)`` chunks, the default here).  Chunks are greedily
    assigned in order to the least-loaded worker, mirroring how idle
    workers steal queued chunks, and each chunk charges the scheduler's
    per-chunk spawn cost to its worker.  The makespan is the heaviest
    worker plus the join barrier — exactly the quantity the scheduler's
    ``makespan_units`` measures for one fork/join region.
    """
    if not iteration_costs or n_threads <= 1:
        # nothing to divide, or no parallelism requested: running the loop
        # unchanged costs exactly the sequential time
        return 1.0
    total = float(sum(iteration_costs))
    if total <= 0:
        return 1.0
    n = max(1, min(n_threads, len(iteration_costs)))
    if n_chunks is None:
        n_chunks = n
    n_chunks = max(1, min(n_chunks, len(iteration_costs)))
    chunks = _block_partition(list(iteration_costs), n_chunks)
    loads = [0.0] * n
    for chunk in chunks:
        wid = loads.index(min(loads))
        loads[wid] += sum(chunk) + model.spawn_overhead
    makespan = max(loads) + model.barrier_overhead
    return total / makespan if makespan > 0 else 1.0


def simulate_pipeline(
    stage_costs: Sequence[float],
    iterations: int,
    n_threads: int,
    model: ExecutionModel = DEFAULT_MODEL,
) -> float:
    """Speedup of a DOACROSS loop run as a pipeline over its stages.

    Each iteration flows through the stages; with S stages on
    min(S, threads) workers the steady-state rate is one iteration per
    ``max_stage`` units: makespan = fill + drain + (iters-1)*bottleneck."""
    stages = [c for c in stage_costs if c > 0]
    if not stages or iterations <= 0:
        return 1.0
    workers = max(1, min(n_threads, len(stages)))
    if workers < len(stages):
        # fuse lightest adjacent stages until they fit the workers
        stages = _fuse_stages(stages, workers)
    total = sum(stage_costs) * iterations
    bottleneck = max(stages)
    fill = sum(stages)
    makespan = fill + (iterations - 1) * bottleneck
    makespan += model.parallel_setup_cost(workers)
    return total / makespan if makespan > 0 else 1.0


def simulate_task_graph(
    graph: TaskGraph,
    n_threads: int,
    model: ExecutionModel = DEFAULT_MODEL,
) -> float:
    """Greedy list scheduling of a task graph on ``n_threads`` workers.

    Returns the speedup over serial execution of the same total work.
    """
    g = graph.graph()
    work = {n.node_id: float(max(1, n.work)) for n in graph.nodes}
    total = sum(work.values())
    if not work:
        return 1.0
    indegree = {node: g.in_degree(node) for node in g.nodes}
    ready = [node for node, deg in indegree.items() if deg == 0]
    # (finish_time, node) per busy worker
    busy: list[tuple[float, int]] = []
    idle = max(1, n_threads)
    clock = 0.0
    makespan = 0.0
    pending = set(g.nodes)
    while pending:
        while ready and idle > 0:
            node = ready.pop()
            cost = work[node] + model.spawn_overhead
            heapq.heappush(busy, (clock + cost, node))
            idle -= 1
        if not busy:  # pragma: no cover - graph must be a DAG
            break
        finish, node = heapq.heappop(busy)
        clock = finish
        makespan = max(makespan, finish)
        idle += 1
        pending.discard(node)
        for succ in g.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    makespan += model.barrier_overhead * min(n_threads, len(work))
    return total / makespan if makespan > 0 else 1.0


def loop_iteration_costs(trace, region_id: int) -> Optional[list[int]]:
    """Per-iteration step costs of one loop, recovered from a trace.

    The trace's ``ts`` column ticks once per executed instruction, so the
    gap between consecutive ``ITER`` markers of a loop region (and from
    ``BGN`` to the first ``ITER``) *is* that iteration's cost in the same
    simulated work units the scheduler's makespan counts — inner loops,
    calls, everything attributed to the iteration that ran it.

    Returns ``None`` when the loop executed more than once (chunk
    alignment against a single fork would be ambiguous), recorded no
    iterations, or the trace is multi-threaded (the global ``ts``
    counter then also ticks for concurrently interleaved threads, which
    would inflate the gaps); callers fall back to a uniform-cost
    estimate.
    """
    return collect_iteration_costs(trace, {region_id}).get(region_id)


def collect_iteration_costs(trace, region_ids) -> dict[int, list[int]]:
    """:func:`loop_iteration_costs` for several loops in one trace scan.

    Regions that fail the single-execution / single-thread conditions
    are simply absent from the result.
    """
    wanted = set(region_ids)
    markers: dict[int, list[tuple[int, int]]] = {r: [] for r in wanted}
    if not wanted:
        return {}
    multi_threaded = False
    tid0 = None
    for chunk in trace.iter_chunks():
        if isinstance(chunk, EventChunk):
            rows = chunk.rows
            if rows.shape[0] == 0:
                continue
            tids = rows[:, COL_TID]
            if tid0 is None:
                tid0 = int(tids[0])
            if not (tids == tid0).all():
                multi_threaded = True
                break
            kinds = rows[:, COL_KIND]
            mask = (kinds == K_ITER) | (kinds == K_BGN)
            for code, rid, ts in zip(
                kinds[mask].tolist(),
                rows[mask, COL_ADDR].tolist(),
                rows[mask, COL_TS].tolist(),
            ):
                if rid in wanted:
                    markers[rid].append((code, ts))
        else:
            for event in chunk:
                kind = event[0]
                if kind == EV_ITER:
                    if tid0 is None:
                        tid0 = event[2]
                    elif event[2] != tid0:
                        multi_threaded = True
                        break
                    if event[1] in wanted:
                        markers[event[1]].append((K_ITER, event[3]))
                elif kind == EV_BGN:
                    if tid0 is None:
                        tid0 = event[4]
                    elif event[4] != tid0:
                        multi_threaded = True
                        break
                    if event[1] in wanted:
                        markers[event[1]].append((K_BGN, event[5]))
                else:
                    tid = _event_tid(event)
                    if tid is not None:
                        if tid0 is None:
                            tid0 = tid
                        elif tid != tid0:
                            multi_threaded = True
                            break
        if multi_threaded:
            break
    if multi_threaded:
        return {}
    out: dict[int, list[int]] = {}
    for rid, entries in markers.items():
        costs: list[int] = []
        executions = 0
        last = None
        for code, ts in entries:
            if code == K_BGN:
                executions += 1
                last = ts
            elif last is not None:
                costs.append(ts - last)
                last = ts
        if executions == 1 and costs:
            out[rid] = costs
    return out


#: legacy tuple layouts: event kind -> index of the tid field
_TUPLE_TID_INDEX = {
    "R": 5, "W": 5, "G": 4, "E": 4, "I": 2, "C": 3, "X": 2,
    "A": 3, "F": 3, "L": 2, "U": 2, "S": 2, "J": 2,
}


def _event_tid(event) -> Optional[int]:
    index = _TUPLE_TID_INDEX.get(event[0])
    return event[index] if index is not None else None


def whole_program_speedup(
    region_fractions: Iterable[tuple[float, float]],
) -> float:
    """Amdahl composition: ``region_fractions`` is (coverage, local_speedup)
    per parallelized region; the rest runs serially."""
    serial = 1.0
    parallel_time = 0.0
    for coverage, local in region_fractions:
        coverage = max(0.0, min(1.0, coverage))
        serial -= coverage
        parallel_time += coverage / max(1.0, local)
    serial = max(0.0, serial)
    denom = serial + parallel_time
    return 1.0 / denom if denom > 0 else 1.0


# ---------------------------------------------------------------------------


def _block_partition(costs: list[float], n: int) -> list[list[float]]:
    """Split costs into n contiguous blocks of near-equal element count
    (static OpenMP-style scheduling)."""
    length = len(costs)
    out: list[list[float]] = []
    base = length // n
    extra = length % n
    idx = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        out.append(costs[idx : idx + size])
        idx += size
    return out


def _fuse_stages(stages: list[float], workers: int) -> list[float]:
    """Merge adjacent pipeline stages until only ``workers`` remain,
    greedily fusing the pair with the smallest combined cost."""
    fused = list(stages)
    while len(fused) > workers:
        best_idx = min(
            range(len(fused) - 1), key=lambda i: fused[i] + fused[i + 1]
        )
        fused[best_idx : best_idx + 2] = [fused[best_idx] + fused[best_idx + 1]]
    return fused
