"""Execution models turning measured work distributions into speedups."""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.discovery.tasks import TaskGraph


@dataclass
class ExecutionModel:
    """Machine/runtime parameters of the simulated multicore.

    ``spawn_overhead`` — cost of creating/dispatching one task or thread,
    in work units (one work unit = one profiled memory instruction).
    ``barrier_overhead`` — per-thread cost of a join/barrier.
    ``chunk_overhead`` — per-chunk scheduling cost in DOALL loops.
    """

    spawn_overhead: float = 40.0
    barrier_overhead: float = 20.0
    chunk_overhead: float = 10.0

    def parallel_setup_cost(self, n_threads: int) -> float:
        return self.spawn_overhead * n_threads + self.barrier_overhead * n_threads


DEFAULT_MODEL = ExecutionModel()


def simulate_doall(
    iteration_costs: Sequence[float],
    n_threads: int,
    model: ExecutionModel = DEFAULT_MODEL,
) -> float:
    """Speedup of a DOALL loop with static chunking.

    ``iteration_costs`` is the per-iteration work (uniform loops may pass
    ``[cost] * iterations``).  Iterations are divided "as evenly as
    possible" (§1.3.3's description of auto-parallelizers, which the
    paper's suggestions target).
    """
    if not iteration_costs or n_threads <= 1:
        # nothing to divide, or no parallelism requested: running the loop
        # unchanged costs exactly the sequential time
        return 1.0
    total = float(sum(iteration_costs))
    if total <= 0:
        return 1.0
    n = max(1, min(n_threads, len(iteration_costs)))
    # static block partition
    chunks = _block_partition(list(iteration_costs), n)
    makespan = max(sum(c) for c in chunks) + model.parallel_setup_cost(n)
    makespan += model.chunk_overhead * n
    return total / makespan if makespan > 0 else 1.0


def simulate_pipeline(
    stage_costs: Sequence[float],
    iterations: int,
    n_threads: int,
    model: ExecutionModel = DEFAULT_MODEL,
) -> float:
    """Speedup of a DOACROSS loop run as a pipeline over its stages.

    Each iteration flows through the stages; with S stages on
    min(S, threads) workers the steady-state rate is one iteration per
    ``max_stage`` units: makespan = fill + drain + (iters-1)*bottleneck."""
    stages = [c for c in stage_costs if c > 0]
    if not stages or iterations <= 0:
        return 1.0
    workers = max(1, min(n_threads, len(stages)))
    if workers < len(stages):
        # fuse lightest adjacent stages until they fit the workers
        stages = _fuse_stages(stages, workers)
    total = sum(stage_costs) * iterations
    bottleneck = max(stages)
    fill = sum(stages)
    makespan = fill + (iterations - 1) * bottleneck
    makespan += model.parallel_setup_cost(workers)
    return total / makespan if makespan > 0 else 1.0


def simulate_task_graph(
    graph: TaskGraph,
    n_threads: int,
    model: ExecutionModel = DEFAULT_MODEL,
) -> float:
    """Greedy list scheduling of a task graph on ``n_threads`` workers.

    Returns the speedup over serial execution of the same total work.
    """
    g = graph.graph()
    work = {n.node_id: float(max(1, n.work)) for n in graph.nodes}
    total = sum(work.values())
    if not work:
        return 1.0
    indegree = {node: g.in_degree(node) for node in g.nodes}
    ready = [node for node, deg in indegree.items() if deg == 0]
    # (finish_time, node) per busy worker
    busy: list[tuple[float, int]] = []
    idle = max(1, n_threads)
    clock = 0.0
    makespan = 0.0
    pending = set(g.nodes)
    while pending:
        while ready and idle > 0:
            node = ready.pop()
            cost = work[node] + model.spawn_overhead
            heapq.heappush(busy, (clock + cost, node))
            idle -= 1
        if not busy:  # pragma: no cover - graph must be a DAG
            break
        finish, node = heapq.heappop(busy)
        clock = finish
        makespan = max(makespan, finish)
        idle += 1
        pending.discard(node)
        for succ in g.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    makespan += model.barrier_overhead * min(n_threads, len(work))
    return total / makespan if makespan > 0 else 1.0


def whole_program_speedup(
    region_fractions: Iterable[tuple[float, float]],
) -> float:
    """Amdahl composition: ``region_fractions`` is (coverage, local_speedup)
    per parallelized region; the rest runs serially."""
    serial = 1.0
    parallel_time = 0.0
    for coverage, local in region_fractions:
        coverage = max(0.0, min(1.0, coverage))
        serial -= coverage
        parallel_time += coverage / max(1.0, local)
    serial = max(0.0, serial)
    denom = serial + parallel_time
    return 1.0 / denom if denom > 0 else 1.0


# ---------------------------------------------------------------------------


def _block_partition(costs: list[float], n: int) -> list[list[float]]:
    """Split costs into n contiguous blocks of near-equal element count
    (static OpenMP-style scheduling)."""
    length = len(costs)
    out: list[list[float]] = []
    base = length // n
    extra = length % n
    idx = 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        out.append(costs[idx : idx + size])
        idx += size
    return out


def _fuse_stages(stages: list[float], workers: int) -> list[float]:
    """Merge adjacent pipeline stages until only ``workers`` remain,
    greedily fusing the pair with the smallest combined cost."""
    fused = list(stages)
    while len(fused) > workers:
        best_idx = min(
            range(len(fused) - 1), key=lambda i: fused[i] + fused[i + 1]
        )
        fused[best_idx : best_idx + 2] = [fused[best_idx] + fused[best_idx + 1]]
    return fused
