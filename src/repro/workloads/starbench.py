"""Starbench parallel benchmark suite kernels in MiniC.

Image processing (rgbyuv, rotate, rot-cc — the Fig. 4.7/4.8 and Fig. 3.6
subjects), raytracing (c-ray, ray-rot), crypto (md5), machine learning
(kmeans, streamcluster), media decoding (tinyjpeg, h264dec) and vision
(bodytrack).  Markers encode the pthread reference parallelization.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register


def _src(template: str, **params) -> str:
    out = template
    for key, value in params.items():
        out = out.replace(f"@{key}@", str(value))
    return out.strip() + "\n"


# ---------------------------------------------------------------------------
# c-ray — raytracer: fully independent pixels
# ---------------------------------------------------------------------------

_CRAY = """
float img[@NPIX@];
float sph_x[@NSPH@];
float sph_y[@NSPH@];
float sph_r[@NSPH@];

float shade(float px, float py, int nsph) {
  float best = 1000000.0;
  for (int s = 0; s < nsph; s++) {               // SEQ
    float dx = px - sph_x[s];
    float dy = py - sph_y[s];
    float d2 = dx * dx + dy * dy;
    float r2 = sph_r[s] * sph_r[s];
    if (d2 < r2) {
      float depth = sqrt(r2 - d2);
      if (depth < best) {
        best = depth;
      }
    }
  }
  if (best > 999999.0) { return 0.0; }
  return 1.0 / (1.0 + best);
}

int main() {
  int w = @W@;
  int h = @H@;
  int nsph = @NSPH@;
  for (int s = 0; s < nsph; s++) {               // PAR
    sph_x[s] = (s * 37 % 100) * 0.01;
    sph_y[s] = (s * 53 % 100) * 0.01;
    sph_r[s] = 0.05 + (s % 5) * 0.03;
  }
  for (int y = 0; y < h; y++) {                  // PAR
    for (int x = 0; x < w; x++) {                // PAR
      float px = x * 1.0 / w;
      float py = y * 1.0 / h;
      img[y * w + x] = shade(px, py, nsph);
    }
  }
  float total = 0.0;
  for (int i = 0; i < w * h; i++) {              // PAR
    total += img[i];
  }
  return __int(total * 100.0);
}
"""


def cray_source(scale: int = 1) -> str:
    w = 24 * scale
    h = 16 * scale
    return _src(_CRAY, W=w, H=h, NPIX=w * h, NSPH=8)


register(Workload("c-ray", "starbench", cray_source,
                  description="raytracer: independent pixels, per-pixel sphere tests"))

# ---------------------------------------------------------------------------
# kmeans — assignment parallel, centroid accumulation privatised in reference
# ---------------------------------------------------------------------------

_KMEANS = """
float px[@NPT@];
float py[@NPT@];
int assign[@NPT@];
float cx[@K@];
float cy[@K@];
float sumx[@K@];
float sumy[@K@];
int   cnt[@K@];

int main() {
  int n = @NPT@;
  int k = @K@;
  for (int i = 0; i < n; i++) {                  // PAR
    px[i] = (i * 29 % 1000) * 0.001;
    py[i] = (i * 67 % 1000) * 0.001;
  }
  for (int c = 0; c < k; c++) {                  // PAR
    cx[c] = (c * 131 % 1000) * 0.001;
    cy[c] = (c * 197 % 1000) * 0.001;
  }
  for (int iter = 0; iter < @ITERS@; iter++) {   // SEQ
    for (int i = 0; i < n; i++) {                // PAR
      float bestd = 1000000.0;
      int bestc = 0;
      for (int c = 0; c < k; c++) {              // SEQ
        float dx = px[i] - cx[c];
        float dy = py[i] - cy[c];
        float d = dx * dx + dy * dy;
        if (d < bestd) {
          bestd = d;
          bestc = c;
        }
      }
      assign[i] = bestc;
    }
    for (int c = 0; c < k; c++) {                // PAR
      sumx[c] = 0.0;
      sumy[c] = 0.0;
      cnt[c] = 0;
    }
    for (int i = 0; i < n; i++) {                // PAR
      int c = assign[i];
      sumx[c] += px[i];
      sumy[c] += py[i];
      cnt[c] += 1;
    }
    for (int c = 0; c < k; c++) {                // PAR
      if (cnt[c] > 0) {
        cx[c] = sumx[c] / cnt[c];
        cy[c] = sumy[c] / cnt[c];
      }
    }
  }
  int code = 0;
  for (int i = 0; i < n; i++) {                  // PAR
    code += assign[i];
  }
  return code;
}
"""


def kmeans_source(scale: int = 1) -> str:
    return _src(_KMEANS, NPT=300 * scale, K=8, ITERS=3)


register(Workload("kmeans", "starbench", kmeans_source,
                  description="k-means: parallel assignment; accumulation loop "
                              "privatised in the reference (intended miss)"))

# ---------------------------------------------------------------------------
# md5 — independent buffers, strictly chained rounds inside
# ---------------------------------------------------------------------------

_MD5 = """
int digests[@NBUF@];

int rotl(int x, int r) {
  return ((x << r) | (x >> (32 - r))) & 2147483647;
}

int md5ish(int seed, int len) {
  int a = 1732584193;
  int b = 4023233417 % 2147483647;
  int c = 2562383102 % 2147483647;
  int d = 271733878;
  int w = seed;
  for (int i = 0; i < len; i++) {                // SEQ
    w = (w * 69069 + 1) % 2147483647;
    int f = (b & c) | ((~b) & d);
    int tmp = d;
    d = c;
    c = b;
    b = b + rotl((a + f + w) % 2147483647, (i % 4) * 5 + 3);
    b = b & 2147483647;
    a = tmp;
  }
  return (a ^ b ^ c ^ d) & 2147483647;
}

int main() {
  int nbuf = @NBUF@;
  for (int i = 0; i < nbuf; i++) {               // PAR
    digests[i] = md5ish(i * 2654435761 % 2147483647, @LEN@);
  }
  int check = 0;
  for (int i = 0; i < nbuf; i++) {               // PAR
    check = (check + digests[i]) % 1000000007;
  }
  return check;
}
"""


def md5_source(scale: int = 1) -> str:
    return _src(_MD5, NBUF=24 * scale, LEN=60)


register(Workload("md5", "starbench", md5_source,
                  description="md5: independent buffers outside, chained rounds inside"))

# ---------------------------------------------------------------------------
# rgbyuv — the Fig. 4.7 target loop: per-pixel colour conversion
# ---------------------------------------------------------------------------

_RGBYUV = """
int r[@NPIX@];
int g[@NPIX@];
int b[@NPIX@];
int yy[@NPIX@];
int u[@NPIX@];
int v[@NPIX@];

int main() {
  int n = @NPIX@;
  for (int i = 0; i < n; i++) {                  // PAR
    r[i] = (i * 7) % 256;
    g[i] = (i * 13) % 256;
    b[i] = (i * 29) % 256;
  }
  for (int i = 0; i < n; i++) {                  // PAR
    int ri = r[i];
    int gi = g[i];
    int bi = b[i];
    yy[i] = (66 * ri + 129 * gi + 25 * bi + 4224) / 256;
    u[i] = (74 * bi - 25 * ri - 49 * gi + 32896) / 256;
    v[i] = (112 * ri - 94 * gi - 18 * bi + 32896) / 256;
  }
  int check = 0;
  for (int i = 0; i < n; i++) {                  // PAR
    check = (check + yy[i] + u[i] + v[i]) % 1000000007;
  }
  return check;
}
"""


def rgbyuv_source(scale: int = 1) -> str:
    return _src(_RGBYUV, NPIX=700 * scale)


register(Workload("rgbyuv", "starbench", rgbyuv_source,
                  description="RGB->YUV conversion: the Fig. 4.7/4.8 DOALL loop "
                              "with three independent output streams"))

# ---------------------------------------------------------------------------
# rotate — pixel remap
# ---------------------------------------------------------------------------

_ROTATE = """
int src[@NPIX@];
int dst[@NPIX@];

int main() {
  int w = @W@;
  int h = @H@;
  for (int i = 0; i < w * h; i++) {              // PAR
    src[i] = (i * 17) % 256;
  }
  for (int y = 0; y < h; y++) {                  // PAR
    for (int x = 0; x < w; x++) {                // PAR
      dst[x * h + (h - 1 - y)] = src[y * w + x];
    }
  }
  int check = 0;
  for (int i = 0; i < w * h; i++) {              // PAR
    check = (check + dst[i] * (i % 3 + 1)) % 1000000007;
  }
  return check;
}
"""


def rotate_source(scale: int = 1) -> str:
    w, h = 30 * scale, 20 * scale
    return _src(_ROTATE, W=w, H=h, NPIX=w * h)


register(Workload("rotate", "starbench", rotate_source,
                  description="90-degree image rotation: independent pixel remap"))

# ---------------------------------------------------------------------------
# rot-cc — rotate + colour conversion (the Fig. 3.6 two-phase CU graph)
# ---------------------------------------------------------------------------

_ROTCC = """
int src[@NPIX@];
int mid[@NPIX@];
int outp[@NPIX@];

void rotate_phase(int w, int h) {
  for (int y = 0; y < h; y++) {                  // PAR
    for (int x = 0; x < w; x++) {                // PAR
      mid[x * h + (h - 1 - y)] = src[y * w + x];
    }
  }
}

void convert_phase(int n) {
  for (int i = 0; i < n; i++) {                  // PAR
    int p = mid[i];
    outp[i] = (66 * p + 129 * p + 25 * p + 4224) / 256;
  }
}

int main() {
  int w = @W@;
  int h = @H@;
  for (int i = 0; i < w * h; i++) {              // PAR
    src[i] = (i * 23) % 256;
  }
  rotate_phase(w, h);
  convert_phase(w * h);
  int check = 0;
  for (int i = 0; i < w * h; i++) {              // PAR
    check = (check + outp[i]) % 1000000007;
  }
  return check;
}
"""


def rotcc_source(scale: int = 1) -> str:
    w, h = 28 * scale, 20 * scale
    return _src(_ROTCC, W=w, H=h, NPIX=w * h)


register(Workload("rot-cc", "starbench", rotcc_source,
                  description="rotate + colour-convert: the Fig. 3.6 phased CU graph"))

# ---------------------------------------------------------------------------
# ray-rot — c-ray followed by rotate
# ---------------------------------------------------------------------------

_RAYROT = """
float img[@NPIX@];
float rot[@NPIX@];

float trace(float px, float py) {
  float dx = px - 0.5;
  float dy = py - 0.5;
  float d2 = dx * dx + dy * dy;
  if (d2 < 0.16) {
    return sqrt(0.16 - d2);
  }
  return 0.0;
}

int main() {
  int w = @W@;
  int h = @H@;
  for (int y = 0; y < h; y++) {                  // PAR
    for (int x = 0; x < w; x++) {                // PAR
      img[y * w + x] = trace(x * 1.0 / w, y * 1.0 / h);
    }
  }
  for (int y = 0; y < h; y++) {                  // PAR
    for (int x = 0; x < w; x++) {                // PAR
      rot[x * h + (h - 1 - y)] = img[y * w + x];
    }
  }
  float total = 0.0;
  for (int i = 0; i < w * h; i++) {              // PAR
    total += rot[i];
  }
  return __int(total * 100.0);
}
"""


def rayrot_source(scale: int = 1) -> str:
    w, h = 26 * scale, 18 * scale
    return _src(_RAYROT, W=w, H=h, NPIX=w * h)


register(Workload("ray-rot", "starbench", rayrot_source,
                  description="raytrace phase followed by rotate phase"))

# ---------------------------------------------------------------------------
# streamcluster — distance sums with reduction
# ---------------------------------------------------------------------------

_STREAMCLUSTER = """
float ptx[@NPT@];
float pty[@NPT@];
float centerx[@KC@];
float centery[@KC@];
float cost;

int main() {
  int n = @NPT@;
  int k = @KC@;
  for (int i = 0; i < n; i++) {                  // PAR
    ptx[i] = (i * 41 % 1000) * 0.001;
    pty[i] = (i * 83 % 1000) * 0.001;
  }
  for (int c = 0; c < k; c++) {                  // PAR
    centerx[c] = (c * 173 % 1000) * 0.001;
    centery[c] = (c * 311 % 1000) * 0.001;
  }
  for (int round = 0; round < @ROUNDS@; round++) {  // SEQ
    cost = 0.0;
    for (int i = 0; i < n; i++) {                // PAR
      float best = 1000000.0;
      for (int c = 0; c < k; c++) {              // SEQ
        float dx = ptx[i] - centerx[c];
        float dy = pty[i] - centery[c];
        float d = dx * dx + dy * dy;
        if (d < best) { best = d; }
      }
      cost += best;
    }
    for (int c = 0; c < k; c++) {                // PAR
      centerx[c] = centerx[c] * 0.9;
      centery[c] = centery[c] * 0.9;
    }
  }
  return __int(cost * 1000.0);
}
"""


def streamcluster_source(scale: int = 1) -> str:
    return _src(_STREAMCLUSTER, NPT=250 * scale, KC=8, ROUNDS=3)


register(Workload("streamcluster", "starbench", streamcluster_source,
                  description="online clustering: per-point nearest-centre cost reduction"))

# ---------------------------------------------------------------------------
# tinyjpeg — sequential entropy decode feeding parallel per-block IDCT
# ---------------------------------------------------------------------------

_TINYJPEG = """
int bitstream[@NBITS@];
int coeffs[@NCOEF@];
int pixels[@NCOEF@];
int bitpos;

int decode_block(int b) {
  int dc = 0;
  for (int i = 0; i < 16; i++) {                 // SEQ
    dc = dc + bitstream[bitpos];
    bitpos++;
  }
  coeffs[b * 16] = dc % 256;
  for (int i = 1; i < 16; i++) {                 // SEQ
    coeffs[b * 16 + i] = (dc * i) % 128;
  }
  return dc;
}

void idct_block(int b) {
  for (int i = 0; i < 16; i++) {                 // SEQ
    int acc = 0;
    for (int j = 0; j < 16; j++) {               // SEQ
      acc = acc + coeffs[b * 16 + j] * ((i * j) % 7 + 1);
    }
    pixels[b * 16 + i] = acc % 256;
  }
}

int main() {
  int nblocks = @NBLK@;
  for (int i = 0; i < @NBITS@; i++) {            // PAR
    bitstream[i] = (i * 31) % 17;
  }
  bitpos = 0;
  for (int b = 0; b < nblocks; b++) {            // SEQ
    decode_block(b);
  }
  for (int b = 0; b < nblocks; b++) {            // PAR
    idct_block(b);
  }
  int check = 0;
  for (int i = 0; i < nblocks * 16; i++) {       // PAR
    check = (check + pixels[i]) % 1000000007;
  }
  return check;
}
"""


def tinyjpeg_source(scale: int = 1) -> str:
    nblk = 16 * scale
    return _src(_TINYJPEG, NBLK=nblk, NCOEF=nblk * 16, NBITS=nblk * 16 + 16)


register(Workload("tinyjpeg", "starbench", tinyjpeg_source,
                  description="JPEG-style: sequential entropy decode (bit cursor), "
                              "parallel per-block IDCT"))

# ---------------------------------------------------------------------------
# bodytrack — per-particle likelihood + sequential resampling scan
# ---------------------------------------------------------------------------

_BODYTRACK = """
float particles[@NP@];
float weights[@NP@];
float cumulative[@NP@];
float observation;

int main() {
  int n = @NP@;
  observation = 0.4;
  for (int i = 0; i < n; i++) {                  // PAR
    particles[i] = (i * 61 % 1000) * 0.001;
  }
  for (int step = 0; step < @STEPS@; step++) {   // SEQ
    for (int i = 0; i < n; i++) {                // PAR
      float diff = particles[i] - observation;
      weights[i] = exp(0.0 - diff * diff * 8.0);
    }
    cumulative[0] = weights[0];
    for (int i = 1; i < n; i++) {                // SEQ
      cumulative[i] = cumulative[i - 1] + weights[i];
    }
    float total = cumulative[n - 1];
    for (int i = 0; i < n; i++) {                // PAR
      float target = (i + 0.5) * total / n;
      int lo = 0;
      while (cumulative[lo] < target && lo < n - 1) {  // SEQ
        lo++;
      }
      particles[i] = particles[lo] * 0.99 + 0.001;
    }
    observation = observation * 0.98 + 0.01;
  }
  float s = 0.0;
  for (int i = 0; i < n; i++) {                  // PAR
    s += particles[i];
  }
  return __int(s * 1000.0);
}
"""


def bodytrack_source(scale: int = 1) -> str:
    return _src(_BODYTRACK, NP=150 * scale, STEPS=3)


register(Workload("bodytrack", "starbench", bodytrack_source,
                  description="particle filter: parallel likelihoods, sequential "
                              "cumulative-sum resampling"))

# ---------------------------------------------------------------------------
# h264dec — macroblock intra prediction: wavefront dependences
# ---------------------------------------------------------------------------

_H264 = """
int mb[@NMB@];
int residual[@NMB@];

int main() {
  int w = @MBW@;
  int h = @MBH@;
  for (int i = 0; i < w * h; i++) {              // PAR
    residual[i] = (i * 19) % 32;
  }
  for (int y = 0; y < h; y++) {                  // SEQ
    for (int x = 0; x < w; x++) {                // SEQ
      int pred = 128;
      if (x > 0 && y > 0) {
        pred = (mb[y * w + x - 1] + mb[(y - 1) * w + x]) / 2;
      } else {
        if (x > 0) { pred = mb[y * w + x - 1]; }
        if (y > 0) { pred = mb[(y - 1) * w + x]; }
      }
      mb[y * w + x] = (pred + residual[y * w + x]) % 256;
    }
  }
  int check = 0;
  for (int i = 0; i < w * h; i++) {              // PAR
    check = (check + mb[i]) % 1000000007;
  }
  return check;
}
"""


def h264_source(scale: int = 1) -> str:
    w, h = 20 * scale, 14 * scale
    return _src(_H264, MBW=w, MBH=h, NMB=w * h)


register(Workload("h264dec", "starbench", h264_source,
                  description="H.264-style intra prediction: left/top macroblock "
                              "wavefront dependences"))

STARBENCH_NAMES = (
    "c-ray", "kmeans", "md5", "ray-rot", "rgbyuv", "rotate", "rot-cc",
    "streamcluster", "tinyjpeg", "bodytrack", "h264dec",
)
