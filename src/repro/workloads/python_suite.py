"""Python-source workloads (the ``python`` suite).

Ports of the curated kernels to the typed Python subset the frontend
lowers (:mod:`repro.frontend`), so every registry-wide sweep — the
determinism tests, the detection benches, the batch runner — exercises
the Python → MIR path end to end.  Loop ground truth uses the Python
marker form (``# PAR`` / ``# SEQ`` on the header line), recognized by
:func:`repro.workloads.registry.ground_truth_from_source` alongside the
MiniC ``//`` comments.

``matmul_py`` is line-for-line the Python rendering of the MiniC
``matmul`` workload; the cross-frontend equivalence test relies on the
two producing the same loop classifications and the same return value.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register


def _src(template: str, **params) -> str:
    out = template
    for key, value in params.items():
        out = out.replace(f"@{key}@", str(value))
    return out.strip() + "\n"


_MATMUL_PY = '''
N = @N@
a = [0.0] * @NN@
b = [0.0] * @NN@
c = [0.0] * @NN@

def main() -> int:
    n = N
    for i in range(n * n):  # PAR
        a[i] = (i % 13) * 0.25
        b[i] = (i % 7) * 0.5
    for i in range(n):  # PAR
        for j in range(n):  # PAR
            acc = 0.0
            for k in range(n):  # SEQ
                acc += a[i * n + k] * b[k * n + j]
            c[i * n + j] = acc
    check = 0.0
    for i in range(n * n):  # PAR
        check += c[i]
    return int(check)
'''


def matmul_py_source(scale: int = 1) -> str:
    n = 16 * scale
    return _src(_MATMUL_PY, N=n, NN=n * n)


register(Workload("matmul_py", "python", matmul_py_source,
                  description="dense matrix multiply (Python port of "
                              "the MiniC matmul workload)",
                  frontend="python"))


_CG_PY = '''
N = @N@
a = [0.0] * @NN@
x = [0.0] * @N@
r = [0.0] * @N@
p = [0.0] * @N@
q = [0.0] * @N@

def main() -> int:
    n = N
    for i in range(n):  # PAR
        for j in range(n):  # PAR
            v = 0.0
            if i == j:
                v = 4.0
            if i == j + 1 or i + 1 == j:
                v = -1.0
            a[i * n + j] = v
    for i in range(n):  # PAR
        x[i] = 0.0
        r[i] = (i % 5) * 0.2 + 1.0
        p[i] = r[i]
    rho = 0.0
    for i in range(n):  # PAR
        rho += r[i] * r[i]
    for it in range(@STEPS@):  # SEQ
        for i in range(n):  # PAR
            s = 0.0
            for j in range(n):  # SEQ
                s += a[i * n + j] * p[j]
            q[i] = s
        denom = 0.0
        for i in range(n):  # PAR
            denom += p[i] * q[i]
        alpha = rho / denom
        for i in range(n):  # PAR
            x[i] += alpha * p[i]
            r[i] -= alpha * q[i]
        rho_new = 0.0
        for i in range(n):  # PAR
            rho_new += r[i] * r[i]
        beta = rho_new / rho
        rho = rho_new
        for i in range(n):  # PAR
            p[i] = r[i] + beta * p[i]
    total = 0.0
    for i in range(n):  # PAR
        total += x[i]
    return int(total * 1000.0)
'''


def cg_py_source(scale: int = 1) -> str:
    n = 16 * scale
    return _src(_CG_PY, N=n, NN=n * n, STEPS=6)


register(Workload("cg_py", "python", cg_py_source,
                  description="conjugate gradient on a tridiagonal system: "
                              "dot-product reductions around a sequential "
                              "outer iteration",
                  frontend="python"))


_MANDELBROT_PY = '''
W = @W@
H = @H@
MAXITER = @MAXITER@
counts = [0] * @NPIX@

def main() -> int:
    w = W
    h = H
    maxiter = MAXITER
    for py in range(h):  # PAR
        for px in range(w):  # PAR
            x0 = px * 3.0 / w - 2.0
            y0 = py * 2.0 / h - 1.0
            x = 0.0
            y = 0.0
            it = 0
            while x * x + y * y <= 4.0 and it < maxiter:  # SEQ
                xt = x * x - y * y + x0
                y = 2.0 * x * y + y0
                x = xt
                it += 1
            counts[py * w + px] = it
    total = 0
    for i in range(w * h):  # PAR
        total += counts[i]
    return total
'''


def mandelbrot_py_source(scale: int = 1) -> str:
    return _src(_MANDELBROT_PY, W=24 * scale, H=16 * scale,
                NPIX=24 * scale * 16 * scale, MAXITER=32)


register(Workload("mandelbrot_py", "python", mandelbrot_py_source,
                  description="mandelbrot set: independent pixels, "
                              "imbalanced per-pixel work",
                  frontend="python"))


_HISTOGRAM_PY = '''
N = @N@
BINS = @BINS@
image = [0] * @N@
hist = [0] * @BINS@

def main() -> int:
    n = N
    for i in range(n):  # PAR
        image[i] = (i * 2654435761) % BINS
    for i in range(n):  # PAR
        hist[image[i]] += 1
    peak = 0
    for b in range(BINS):  # PAR
        if hist[b] > peak:
            peak = hist[b]
    return peak
'''


def histogram_py_source(scale: int = 1) -> str:
    return _src(_HISTOGRAM_PY, N=2000 * scale, BINS=32)


register(Workload("histogram_py", "python", histogram_py_source,
                  description="histogram fill with bin conflicts plus a "
                              "max-reduction scan",
                  frontend="python"))


_PIPELINE_PY = '''
N = @N@
raw = [0] * @N@
mid = [0] * @N@
out = [0] * @N@

def fill(n: int) -> int:
    for i in range(n):  # PAR
        raw[i] = (i * 31 + 7) % 256
    return 0

def smooth(n: int) -> int:
    for i in range(n):  # PAR
        left = raw[i]
        if i > 0:
            left = raw[i - 1]
        mid[i] = (left + raw[i]) // 2
    return 0

def quantize(n: int) -> int:
    for i in range(n):  # PAR
        out[i] = mid[i] >> 2
    return 0

def checksum(n: int) -> int:
    total = 0
    for i in range(n):  # PAR
        total += out[i]
    return total

def main() -> int:
    n = N
    fill(n)
    smooth(n)
    quantize(n)
    return checksum(n)
'''


def pipeline_py_source(scale: int = 1) -> str:
    return _src(_PIPELINE_PY, N=1200 * scale)


register(Workload("pipeline_py", "python", pipeline_py_source,
                  description="pipeline-style stages (fill → smooth → "
                              "quantize → checksum): DOALL inner loops "
                              "under a sequential stage chain",
                  frontend="python"))


_TASKGRAPH_PY = '''
N = @N@
xs = [0] * @N@
ys = [0] * @N@
zs = [0] * @N@

def fill_x(n: int) -> int:
    for i in range(n):  # PAR
        xs[i] = (i * 17) % 97
    return 0

def fill_y(n: int) -> int:
    for i in range(n):  # PAR
        ys[i] = (i * 29) % 89
    return 0

def fill_z(n: int) -> int:
    for i in range(n):  # PAR
        zs[i] = (i * 41) % 83
    return 0

def main() -> int:
    n = N
    fill_x(n)
    fill_y(n)
    fill_z(n)
    total = 0
    for i in range(n):  # PAR
        total += xs[i] + ys[i] + zs[i]
    return total
'''


def taskgraph_py_source(scale: int = 1) -> str:
    return _src(_TASKGRAPH_PY, N=900 * scale)


register(Workload("taskgraph_py", "python", taskgraph_py_source,
                  description="task-graph program: three independent fill "
                              "tasks joined by a reduction",
                  frontend="python",
                  task_truth={"fill_x": True}))

PYTHON_NAMES = ("matmul_py", "cg_py", "mandelbrot_py", "histogram_py",
                "pipeline_py", "taskgraph_py")
