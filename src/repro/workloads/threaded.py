"""Multi-threaded target programs.

Two families:

* ``*-pthread`` — Starbench-style pthread versions (4 worker threads) used
  by the Fig. 2.10/2.11 experiments (profiling parallel targets);
* ``splash2x-*`` — kernels with the canonical communication shapes of
  Fig. 5.1: neighbour/ring exchange, master-worker distribution, and
  all-to-all reduction.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register


def _src(template: str, **params) -> str:
    out = template
    for key, value in params.items():
        out = out.replace(f"@{key}@", str(value))
    return out.strip() + "\n"


# ---------------------------------------------------------------------------
# Starbench pthread versions (4 workers, block decomposition)
# ---------------------------------------------------------------------------

_KMEANS_PT = """
float px[@NPT@];
float py[@NPT@];
int assign[@NPT@];
float cx[@K@];
float cy[@K@];
float sumx[@K@];
float sumy[@K@];
int cnt[@K@];

void worker(int t, int nthreads) {
  int n = @NPT@;
  int chunk = n / nthreads;
  int lo = t * chunk;
  int hi = lo + chunk;
  for (int i = lo; i < hi; i++) {                // PAR
    float bestd = 1000000.0;
    int bestc = 0;
    for (int c = 0; c < @K@; c++) {              // SEQ
      float dx = px[i] - cx[c];
      float dy = py[i] - cy[c];
      float d = dx * dx + dy * dy;
      if (d < bestd) { bestd = d; bestc = c; }
    }
    assign[i] = bestc;
    lock(1);
    sumx[bestc] += px[i];
    sumy[bestc] += py[i];
    cnt[bestc] += 1;
    unlock(1);
  }
}

int main() {
  int n = @NPT@;
  for (int i = 0; i < n; i++) {                  // PAR
    px[i] = (i * 29 % 1000) * 0.001;
    py[i] = (i * 67 % 1000) * 0.001;
  }
  for (int c = 0; c < @K@; c++) {                // PAR
    cx[c] = (c * 131 % 1000) * 0.001;
    cy[c] = (c * 197 % 1000) * 0.001;
  }
  int t0 = spawn worker(0, 4);
  int t1 = spawn worker(1, 4);
  int t2 = spawn worker(2, 4);
  int t3 = spawn worker(3, 4);
  join(t0); join(t1); join(t2); join(t3);
  int code = 0;
  for (int c = 0; c < @K@; c++) {                // PAR
    code += cnt[c];
  }
  return code;
}
"""


def kmeans_pt_source(scale: int = 1) -> str:
    return _src(_KMEANS_PT, NPT=240 * scale, K=8)


register(Workload("kmeans-pthread", "starbench-pthread", kmeans_pt_source,
                  threaded=True,
                  description="k-means assignment step with lock-protected "
                              "centroid accumulation"))


_MD5_PT = """
int digests[@NBUF@];

int md5ish(int seed, int len) {
  int a = 1732584193;
  int b = 271733878;
  int w = seed;
  for (int i = 0; i < len; i++) {                // SEQ
    w = (w * 69069 + 1) % 2147483647;
    int tmp = b;
    b = (a + ((w >> 3) | (w << 5))) & 2147483647;
    a = tmp;
  }
  return (a ^ b) & 2147483647;
}

void worker(int t, int nthreads) {
  int nbuf = @NBUF@;
  int chunk = nbuf / nthreads;
  for (int i = t * chunk; i < (t + 1) * chunk; i++) {  // PAR
    digests[i] = md5ish(i * 2654435761 % 2147483647, @LEN@);
  }
}

int main() {
  int t0 = spawn worker(0, 4);
  int t1 = spawn worker(1, 4);
  int t2 = spawn worker(2, 4);
  int t3 = spawn worker(3, 4);
  join(t0); join(t1); join(t2); join(t3);
  int check = 0;
  for (int i = 0; i < @NBUF@; i++) {             // PAR
    check = (check + digests[i]) % 1000000007;
  }
  return check;
}
"""


def md5_pt_source(scale: int = 1) -> str:
    return _src(_MD5_PT, NBUF=24 * scale, LEN=50)


register(Workload("md5-pthread", "starbench-pthread", md5_pt_source,
                  threaded=True,
                  description="md5 over independent buffer blocks per thread"))


_RGBYUV_PT = """
int r[@NPIX@];
int g[@NPIX@];
int b[@NPIX@];
int yy[@NPIX@];

void worker(int t, int nthreads) {
  int n = @NPIX@;
  int chunk = n / nthreads;
  for (int i = t * chunk; i < (t + 1) * chunk; i++) {  // PAR
    yy[i] = (66 * r[i] + 129 * g[i] + 25 * b[i] + 4224) / 256;
  }
}

int main() {
  int n = @NPIX@;
  for (int i = 0; i < n; i++) {                  // PAR
    r[i] = (i * 7) % 256;
    g[i] = (i * 13) % 256;
    b[i] = (i * 29) % 256;
  }
  int t0 = spawn worker(0, 4);
  int t1 = spawn worker(1, 4);
  int t2 = spawn worker(2, 4);
  int t3 = spawn worker(3, 4);
  join(t0); join(t1); join(t2); join(t3);
  int check = 0;
  for (int i = 0; i < n; i++) {                  // PAR
    check = (check + yy[i]) % 1000000007;
  }
  return check;
}
"""


def rgbyuv_pt_source(scale: int = 1) -> str:
    return _src(_RGBYUV_PT, NPIX=600 * scale)


register(Workload("rgbyuv-pthread", "starbench-pthread", rgbyuv_pt_source,
                  threaded=True,
                  description="per-thread pixel block colour conversion"))


_CRAY_PT = """
float img[@NPIX@];

float shade(float px, float py) {
  float dx = px - 0.5;
  float dy = py - 0.5;
  float d2 = dx * dx + dy * dy;
  if (d2 < 0.2) {
    return sqrt(0.2 - d2);
  }
  return 0.0;
}

void worker(int t, int nthreads) {
  int w = @W@;
  int h = @H@;
  int rows = h / nthreads;
  for (int y = t * rows; y < (t + 1) * rows; y++) {  // PAR
    for (int x = 0; x < w; x++) {                // PAR
      img[y * w + x] = shade(x * 1.0 / w, y * 1.0 / h);
    }
  }
}

int main() {
  int t0 = spawn worker(0, 4);
  int t1 = spawn worker(1, 4);
  int t2 = spawn worker(2, 4);
  int t3 = spawn worker(3, 4);
  join(t0); join(t1); join(t2); join(t3);
  float total = 0.0;
  for (int i = 0; i < @NPIX@; i++) {             // PAR
    total += img[i];
  }
  return __int(total * 100.0);
}
"""


def cray_pt_source(scale: int = 1) -> str:
    w, h = 24 * scale, 16 * scale
    return _src(_CRAY_PT, W=w, H=h, NPIX=w * h)


register(Workload("c-ray-pthread", "starbench-pthread", cray_pt_source,
                  threaded=True,
                  description="row-block raytracing per thread"))


_ROTATE_PT = """
int src[@NPIX@];
int dst[@NPIX@];

void worker(int t, int nthreads) {
  int w = @W@;
  int h = @H@;
  int rows = h / nthreads;
  for (int y = t * rows; y < (t + 1) * rows; y++) {  // PAR
    for (int x = 0; x < w; x++) {                // PAR
      dst[x * h + (h - 1 - y)] = src[y * w + x];
    }
  }
}

int main() {
  int n = @NPIX@;
  for (int i = 0; i < n; i++) {                  // PAR
    src[i] = (i * 17) % 256;
  }
  int t0 = spawn worker(0, 4);
  int t1 = spawn worker(1, 4);
  int t2 = spawn worker(2, 4);
  int t3 = spawn worker(3, 4);
  join(t0); join(t1); join(t2); join(t3);
  int check = 0;
  for (int i = 0; i < n; i++) {                  // PAR
    check = (check + dst[i]) % 1000000007;
  }
  return check;
}
"""


def rotate_pt_source(scale: int = 1) -> str:
    w, h = 28 * scale, 16 * scale
    return _src(_ROTATE_PT, W=w, H=h, NPIX=w * h)


register(Workload("rotate-pthread", "starbench-pthread", rotate_pt_source,
                  threaded=True,
                  description="row-block image rotation per thread"))

PTHREAD_NAMES = ("kmeans-pthread", "md5-pthread", "rgbyuv-pthread",
                 "c-ray-pthread", "rotate-pthread")

# ---------------------------------------------------------------------------
# splash2x-like communication-pattern kernels (Fig. 5.1)
# ---------------------------------------------------------------------------

_RING = """
float cells[@TOTAL@];
float halo[@NT@];

void worker(int t, int nthreads, int steps) {
  int chunk = @CHUNK@;
  int base = t * chunk;
  for (int s = 0; s < steps; s++) {              // SEQ
    lock(t);
    halo[t] = cells[base + chunk - 1];
    unlock(t);
    int left = (t + nthreads - 1) % nthreads;
    lock(left);
    float incoming = halo[left];
    unlock(left);
    for (int i = chunk - 1; i > 0; i--) {        // SEQ
      cells[base + i] = (cells[base + i] + cells[base + i - 1]) * 0.5;
    }
    cells[base] = (cells[base] + incoming) * 0.5;
  }
}

int main() {
  int nt = @NT@;
  for (int i = 0; i < @TOTAL@; i++) {            // PAR
    cells[i] = (i % 50) * 0.02;
  }
  int t0 = spawn worker(0, nt, @STEPS@);
  int t1 = spawn worker(1, nt, @STEPS@);
  int t2 = spawn worker(2, nt, @STEPS@);
  int t3 = spawn worker(3, nt, @STEPS@);
  join(t0); join(t1); join(t2); join(t3);
  float total = 0.0;
  for (int i = 0; i < @TOTAL@; i++) {            // PAR
    total += cells[i];
  }
  return __int(total * 100.0);
}
"""


def ring_source(scale: int = 1) -> str:
    nt, chunk = 4, 40 * scale
    return _src(_RING, NT=nt, CHUNK=chunk, TOTAL=nt * chunk, STEPS=4)


register(Workload("splash2x-ocean", "splash2x", ring_source, threaded=True,
                  description="ocean-style ring halo exchange: neighbour "
                              "communication pattern"))


_MASTER = """
int work[@NITEMS@];
int results[@NITEMS@];
int next_item;
int done_count;

void worker(int t) {
  int have = 1;
  while (have == 1) {                            // SEQ
    lock(9);
    int item = next_item;
    next_item = next_item + 1;
    unlock(9);
    if (item >= @NITEMS@) {
      have = 0;
    } else {
      int v = work[item];
      int acc = 0;
      for (int i = 0; i < 20 + v % 13; i++) {    // SEQ
        acc = (acc + v * i) % 997;
      }
      results[item] = acc;
    }
  }
  lock(8);
  done_count += 1;
  unlock(8);
}

int main() {
  next_item = 0;
  done_count = 0;
  for (int i = 0; i < @NITEMS@; i++) {           // PAR
    work[i] = (i * 2654435761) % 101;
  }
  int t0 = spawn worker(0);
  int t1 = spawn worker(1);
  int t2 = spawn worker(2);
  int t3 = spawn worker(3);
  join(t0); join(t1); join(t2); join(t3);
  int check = 0;
  for (int i = 0; i < @NITEMS@; i++) {           // PAR
    check = (check + results[i]) % 1000000007;
  }
  return check;
}
"""


def master_source(scale: int = 1) -> str:
    return _src(_MASTER, NITEMS=40 * scale)


register(Workload("splash2x-radiosity", "splash2x", master_source,
                  threaded=True,
                  description="radiosity-style shared work queue: master-worker "
                              "communication through the queue head"))


_ALLTOALL = """
float partial[@SLOTS@];
float phase2[@SLOTS@];

void worker(int t, int nthreads) {
  for (int i = 0; i < @PERT@; i++) {             // SEQ
    partial[t * @PERT@ + i] = (t * 31 + i * 7) % 100 * 0.01;
  }
  lock(t + 20);
  unlock(t + 20);
  float acc = 0.0;
  for (int other = 0; other < nthreads; other++) {  // SEQ
    for (int i = 0; i < @PERT@; i++) {           // SEQ
      acc += partial[other * @PERT@ + i];
    }
  }
  for (int i = 0; i < @PERT@; i++) {             // SEQ
    phase2[t * @PERT@ + i] = acc / (i + 1.0);
  }
}

int main() {
  int nt = @NT@;
  int t0 = spawn worker(0, nt);
  int t1 = spawn worker(1, nt);
  int t2 = spawn worker(2, nt);
  int t3 = spawn worker(3, nt);
  join(t0); join(t1); join(t2); join(t3);
  float total = 0.0;
  for (int i = 0; i < @SLOTS@; i++) {            // PAR
    total += phase2[i];
  }
  return __int(total);
}
"""


def alltoall_source(scale: int = 1) -> str:
    nt, per_t = 4, 30 * scale
    return _src(_ALLTOALL, NT=nt, PERT=per_t, SLOTS=nt * per_t)


register(Workload("splash2x-fft", "splash2x", alltoall_source, threaded=True,
                  description="fft-style transpose: every thread reads every "
                              "other thread's partial results (all-to-all)"))

SPLASH_NAMES = ("splash2x-ocean", "splash2x-radiosity", "splash2x-fft")
