"""Benchmark workloads in MiniC.

Simplified-but-real kernels mirroring the dependence structure of the
paper's evaluation suites:

* :mod:`repro.workloads.nas` — SNU NAS Parallel Benchmarks (BT CG EP FT IS
  LU MG SP), the basis of Tables 4.1, 5.4 and the Chapter 2 performance
  figures.
* :mod:`repro.workloads.starbench` — Starbench (c-ray kmeans md5 ray-rot
  rgbyuv rotate rot-cc streamcluster tinyjpeg bodytrack h264dec) for
  Table 2.6/4.4 and the parallel-target figures.
* :mod:`repro.workloads.bots` — Barcelona OpenMP Task Suite kernels
  (fib nqueens sort fft strassen sparselu health alignment) for Table 4.6.
* :mod:`repro.workloads.textbook` — the Table 4.2/4.3 textbook programs.
* :mod:`repro.workloads.apps` — gzip/bzip2-like compressors (Table 4.5),
  FaceDetection and libVorbis-like multimedia task graphs and PARSEC-style
  kernels (Table 4.7, Fig. 4.11).
* :mod:`repro.workloads.threaded` — pthread-style kernels with distinct
  communication patterns (Fig. 2.10/2.11, Fig. 5.1).

Every loop in a workload carries a ``// PAR`` or ``// SEQ`` marker encoding
whether the *reference parallel implementation* parallelizes it — the
ground truth the detection tables compare against.
"""

from repro.workloads.registry import (
    REGISTRY,
    Workload,
    get_workload,
    ground_truth_from_source,
    suites,
    workloads_in_suite,
)

# importing the suite modules populates the registry
from repro.workloads import nas as _nas  # noqa: F401
from repro.workloads import starbench as _starbench  # noqa: F401
from repro.workloads import bots as _bots  # noqa: F401
from repro.workloads import textbook as _textbook  # noqa: F401
from repro.workloads import apps as _apps  # noqa: F401
from repro.workloads import threaded as _threaded  # noqa: F401
from repro.workloads import python_suite as _python_suite  # noqa: F401

__all__ = [
    "REGISTRY",
    "Workload",
    "get_workload",
    "ground_truth_from_source",
    "suites",
    "workloads_in_suite",
]
