"""Textbook programs (Tables 4.2 / 4.3).

The classic parallel-programming course examples the paper parallelizes
following the framework's suggestions, reporting four-thread speedups.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register


def _src(template: str, **params) -> str:
    out = template
    for key, value in params.items():
        out = out.replace(f"@{key}@", str(value))
    return out.strip() + "\n"


_MATMUL = """
float a[@NN@];
float b[@NN@];
float c[@NN@];

int main() {
  int n = @N@;
  for (int i = 0; i < n * n; i++) {              // PAR
    a[i] = (i % 13) * 0.25;
    b[i] = (i % 7) * 0.5;
  }
  for (int i = 0; i < n; i++) {                  // PAR
    for (int j = 0; j < n; j++) {                // PAR
      float acc = 0.0;
      for (int k = 0; k < n; k++) {              // SEQ
        acc += a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = acc;
    }
  }
  float check = 0.0;
  for (int i = 0; i < n * n; i++) {              // PAR
    check += c[i];
  }
  return __int(check);
}
"""


def matmul_source(scale: int = 1) -> str:
    n = 16 * scale
    return _src(_MATMUL, N=n, NN=n * n)


register(Workload("matmul", "textbook", matmul_source,
                  description="dense matrix multiply"))


_HISTOGRAM = """
int image[@N@];
int hist[@BINS@];

int main() {
  int n = @N@;
  for (int i = 0; i < n; i++) {                  // PAR
    image[i] = (i * 2654435761) % @BINS@;
  }
  for (int i = 0; i < n; i++) {                  // PAR
    hist[image[i]] += 1;
  }
  int peak = 0;
  for (int b = 0; b < @BINS@; b++) {             // PAR
    if (hist[b] > peak) { peak = hist[b]; }
  }
  return peak;
}
"""


def histogram_source(scale: int = 1) -> str:
    return _src(_HISTOGRAM, N=2000 * scale, BINS=32)


register(Workload("histogram", "textbook", histogram_source,
                  description="histogram visualization (Table 4.3): the fill loop "
                              "carries bin conflicts the reference resolves with "
                              "private histograms"))


_MANDELBROT = """
int counts[@NPIX@];

int main() {
  int w = @W@;
  int h = @H@;
  int maxiter = @MAXITER@;
  for (int py = 0; py < h; py++) {               // PAR
    for (int px = 0; px < w; px++) {             // PAR
      float x0 = px * 3.0 / w - 2.0;
      float y0 = py * 2.0 / h - 1.0;
      float x = 0.0;
      float y = 0.0;
      int iter = 0;
      while (x * x + y * y <= 4.0 && iter < maxiter) {  // SEQ
        float xt = x * x - y * y + x0;
        y = 2.0 * x * y + y0;
        x = xt;
        iter++;
      }
      counts[py * w + px] = iter;
    }
  }
  int total = 0;
  for (int i = 0; i < w * h; i++) {              // PAR
    total += counts[i];
  }
  return total;
}
"""


def mandelbrot_source(scale: int = 1) -> str:
    return _src(_MANDELBROT, W=24 * scale, H=16 * scale,
                NPIX=24 * scale * 16 * scale, MAXITER=32)


register(Workload("mandelbrot", "textbook", mandelbrot_source,
                  description="mandelbrot set: independent pixels, imbalanced "
                              "per-pixel work"))


_NBODY = """
float posx[@N@];
float posy[@N@];
float velx[@N@];
float vely[@N@];
float fx[@N@];
float fy[@N@];

int main() {
  int n = @N@;
  for (int i = 0; i < n; i++) {                  // PAR
    posx[i] = (i * 37 % 100) * 0.01;
    posy[i] = (i * 73 % 100) * 0.01;
  }
  for (int step = 0; step < @STEPS@; step++) {   // SEQ
    for (int i = 0; i < n; i++) {                // PAR
      float ax = 0.0;
      float ay = 0.0;
      for (int j = 0; j < n; j++) {              // SEQ
        if (i != j) {
          float dx = posx[j] - posx[i];
          float dy = posy[j] - posy[i];
          float inv = 1.0 / (dx * dx + dy * dy + 0.01);
          ax += dx * inv;
          ay += dy * inv;
        }
      }
      fx[i] = ax;
      fy[i] = ay;
    }
    for (int i = 0; i < n; i++) {                // PAR
      velx[i] += fx[i] * 0.001;
      vely[i] += fy[i] * 0.001;
      posx[i] += velx[i];
      posy[i] += vely[i];
    }
  }
  float check = 0.0;
  for (int i = 0; i < n; i++) {                  // PAR
    check += posx[i] + posy[i];
  }
  return __int(check * 100.0);
}
"""


def nbody_source(scale: int = 1) -> str:
    return _src(_NBODY, N=40 * scale, STEPS=2)


register(Workload("nbody", "textbook", nbody_source,
                  description="n-body step: all-pairs forces then integration"))


_DOTPROD = """
float a[@N@];
float b[@N@];

int main() {
  int n = @N@;
  for (int i = 0; i < n; i++) {                  // PAR
    a[i] = (i % 17) * 0.3;
    b[i] = (i % 11) * 0.7;
  }
  float dot = 0.0;
  for (int i = 0; i < n; i++) {                  // PAR
    dot += a[i] * b[i];
  }
  return __int(dot);
}
"""


def dotprod_source(scale: int = 1) -> str:
    return _src(_DOTPROD, N=2500 * scale)


register(Workload("dotprod", "textbook", dotprod_source,
                  description="dot product: the textbook reduction"))


_PRIMES = """
int main() {
  int limit = @LIMIT@;
  int count = 0;
  for (int n = 2; n < limit; n++) {              // PAR
    int prime = 1;
    for (int d = 2; d * d <= n; d++) {           // SEQ
      if (n % d == 0) {
        prime = 0;
        break;
      }
    }
    count += prime;
  }
  return count;
}
"""


def primes_source(scale: int = 1) -> str:
    return _src(_PRIMES, LIMIT=600 * scale)


register(Workload("primes", "textbook", primes_source,
                  description="trial-division prime counting: reduction over an "
                              "imbalanced DOALL loop"))


_PI = """
int seed;

int main() {
  int n = @N@;
  seed = 987654321;
  int inside = 0;
  for (int i = 0; i < n; i++) {                  // PAR
    seed = (seed * 1103515 + 12345) % 2147483647;
    float x = (seed % 10000) * 0.0001;
    seed = (seed * 1103515 + 12345) % 2147483647;
    float y = (seed % 10000) * 0.0001;
    if (x * x + y * y <= 1.0) {
      inside += 1;
    }
  }
  return inside * 4000 / n;
}
"""


def pi_source(scale: int = 1) -> str:
    return _src(_PI, N=1500 * scale)


register(Workload("pi", "textbook", pi_source,
                  description="Monte-Carlo pi: the RNG chain blocks naive DOALL; "
                              "the reference uses per-thread seeds (intended miss)"))


_STRINGSEARCH = """
int text[@N@];
int pattern[@M@];

int main() {
  int n = @N@;
  int m = @M@;
  for (int i = 0; i < n; i++) {                  // PAR
    text[i] = (i * 31) % 4;
  }
  for (int j = 0; j < m; j++) {                  // PAR
    pattern[j] = (j * 31) % 4;
  }
  int matches = 0;
  for (int i = 0; i + m <= n; i++) {             // PAR
    int hit = 1;
    for (int j = 0; j < m; j++) {                // SEQ
      if (text[i + j] != pattern[j]) {
        hit = 0;
        break;
      }
    }
    matches += hit;
  }
  return matches;
}
"""


def stringsearch_source(scale: int = 1) -> str:
    return _src(_STRINGSEARCH, N=1500 * scale, M=6)


register(Workload("stringsearch", "textbook", stringsearch_source,
                  description="naive string matching: independent window tests"))

TEXTBOOK_NAMES = ("matmul", "histogram", "mandelbrot", "nbody", "dotprod",
                  "primes", "pi", "stringsearch")
