"""Workload registry and ground-truth extraction."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional

#: loop-header marker: MiniC `for (...) {   // PAR` / Python `for ...:  # PAR`
_MARKER_RE = re.compile(r"(?://|#)\s*(PAR|SEQ)\b")
_MINIC_LOOP_RE = re.compile(r"\b(for|while)\s*\(")
_PY_LOOP_RE = re.compile(r"^\s*(for|while)\b.*:")


def ground_truth_from_source(source: str) -> dict[int, bool]:
    """Extract {loop header line -> parallel-in-reference?} from markers.

    Keeping the truth inline (``// PAR`` / ``// SEQ`` on the loop header
    line — ``# PAR`` / ``# SEQ`` for Python sources) keeps line numbers
    and annotations in sync by construction.
    """
    truth: dict[int, bool] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        marker = _MARKER_RE.search(text)
        if marker and (
            _MINIC_LOOP_RE.search(text) or _PY_LOOP_RE.match(text)
        ):
            truth[lineno] = marker.group(1) == "PAR"
    return truth


@dataclass
class Workload:
    """One benchmark program."""

    name: str
    suite: str
    source_fn: Callable[[int], str]
    description: str = ""
    entry: str = "main"
    #: source language the workload text is written in: "minic" | "python"
    frontend: str = "minic"
    threaded: bool = False
    #: expected return value per scale (None = don't check)
    expected: Optional[dict[int, int]] = None
    #: expected task groups for Table 4.6-style checks:
    #: {function_name: should_be_independent}
    task_truth: dict[str, bool] = field(default_factory=dict)

    def source(self, scale: int = 1) -> str:
        return self.source_fn(scale)

    def ground_truth(self, scale: int = 1) -> dict[int, bool]:
        return ground_truth_from_source(self.source(scale))

    def compile(self, scale: int = 1):
        if self.frontend == "python":
            from repro.frontend.lowering import compile_python_source

            return compile_python_source(self.source(scale), name=self.name)
        from repro.mir.lowering import compile_source

        return compile_source(self.source(scale), name=self.name)


REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    return REGISTRY[name]


def suites() -> list[str]:
    return sorted({w.suite for w in REGISTRY.values()})


def workloads_in_suite(suite: str) -> list[Workload]:
    return [w for w in REGISTRY.values() if w.suite == suite]
