"""NAS Parallel Benchmark kernels (SNU C versions), simplified to MiniC.

Each kernel keeps the dependence structure that matters for parallelism
discovery — stencils, reductions, recurrences, wavefront sweeps, RNG
chains — at laptop scale.  ``// PAR`` / ``// SEQ`` markers encode whether
the official OpenMP version parallelizes the loop (the Table 4.1 ground
truth).  Deliberate structure notes:

* EP's and IS's main loops chain a *global LCG seed* — the reference
  versions parallelize them via seed skip-ahead / private histograms, i.e.
  transformations a dependence profiler cannot see.  They are the realistic
  recall misses behind the paper's 92.5 %.
* LU's SSOR sweeps are wavefronts: carried dependences in the sweep loops,
  parallel inner loops.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register


def _src(template: str, **params) -> str:
    out = template
    for key, value in params.items():
        out = out.replace(f"@{key}@", str(value))
    return out.strip() + "\n"


# ---------------------------------------------------------------------------
# BT — block tridiagonal solver (structure: rhs stencil + line sweeps)
# ---------------------------------------------------------------------------

_BT = """
float u[@NN@];
float rhs[@NN@];
float lhs[@NN@];

void compute_rhs(int n) {
  for (int i = 1; i < n - 1; i++) {              // PAR
    for (int j = 1; j < n - 1; j++) {            // PAR
      rhs[i * n + j] = u[(i - 1) * n + j] + u[(i + 1) * n + j]
                     + u[i * n + j - 1] + u[i * n + j + 1]
                     - 4.0 * u[i * n + j];
    }
  }
}

void x_solve(int n) {
  for (int j = 1; j < n - 1; j++) {              // PAR
    for (int i = 1; i < n - 1; i++) {            // SEQ
      lhs[i * n + j] = rhs[i * n + j] - 0.25 * lhs[(i - 1) * n + j];
    }
  }
}

void y_solve(int n) {
  for (int i = 1; i < n - 1; i++) {              // PAR
    for (int j = 1; j < n - 1; j++) {            // SEQ
      lhs[i * n + j] = lhs[i * n + j] - 0.25 * lhs[i * n + j - 1];
    }
  }
}

void add(int n) {
  for (int i = 1; i < n - 1; i++) {              // PAR
    for (int j = 1; j < n - 1; j++) {            // PAR
      u[i * n + j] = u[i * n + j] + 0.05 * lhs[i * n + j];
    }
  }
}

int main() {
  int n = @N@;
  for (int i = 0; i < n; i++) {                  // PAR
    for (int j = 0; j < n; j++) {                // PAR
      u[i * n + j] = (i * 7 + j * 3) % 13 * 0.1;
    }
  }
  for (int step = 0; step < @STEPS@; step++) {   // SEQ
    compute_rhs(n);
    x_solve(n);
    y_solve(n);
    add(n);
  }
  float checksum = 0.0;
  for (int i = 0; i < n * n; i++) {              // PAR
    checksum += u[i];
  }
  return __int(checksum * 100.0);
}
"""


def bt_source(scale: int = 1) -> str:
    n = 12 + 4 * scale
    return _src(_BT, N=n, NN=n * n, STEPS=2 + scale)


register(
    Workload(
        "BT",
        "nas",
        bt_source,
        description="block tridiagonal solver: stencil rhs + x/y line sweeps",
    )
)

# ---------------------------------------------------------------------------
# CG — conjugate gradient (sparse matvec + dot products)
# ---------------------------------------------------------------------------

_CG = """
int rowstr[@NP1@];
int colidx[@NNZ@];
float a[@NNZ@];
float x[@N@];
float z[@N@];
float p[@N@];
float q[@N@];
float r[@N@];

float conj_grad(int n) {
  float rho = 0.0;
  for (int i = 0; i < n; i++) {                  // PAR
    q[i] = 0.0;
    z[i] = 0.0;
    r[i] = x[i];
    p[i] = r[i];
  }
  for (int i = 0; i < n; i++) {                  // PAR
    rho += r[i] * r[i];
  }
  for (int it = 0; it < @CGITS@; it++) {         // SEQ
    for (int i = 0; i < n; i++) {                // PAR
      float suml = 0.0;
      for (int k = rowstr[i]; k < rowstr[i + 1]; k++) {  // SEQ
        suml += a[k] * p[colidx[k]];
      }
      q[i] = suml;
    }
    float d = 0.0;
    for (int i = 0; i < n; i++) {                // PAR
      d += p[i] * q[i];
    }
    float alpha = rho / (d + 0.000001);
    float rho0 = rho;
    rho = 0.0;
    for (int i = 0; i < n; i++) {                // PAR
      z[i] = z[i] + alpha * p[i];
      r[i] = r[i] - alpha * q[i];
    }
    for (int i = 0; i < n; i++) {                // PAR
      rho += r[i] * r[i];
    }
    float beta = rho / (rho0 + 0.000001);
    for (int i = 0; i < n; i++) {                // PAR
      p[i] = r[i] + beta * p[i];
    }
  }
  float norm = 0.0;
  for (int i = 0; i < n; i++) {                  // PAR
    norm += z[i] * z[i];
  }
  return norm;
}

int main() {
  int n = @N@;
  int nz_per_row = @NZROW@;
  int pos = 0;
  for (int i = 0; i < n; i++) {                  // SEQ
    rowstr[i] = pos;
    for (int k = 0; k < nz_per_row; k++) {       // SEQ
      colidx[pos] = (i * 3 + k * 7) % n;
      a[pos] = ((i + k) % 9 + 1) * 0.125;
      pos++;
    }
  }
  rowstr[n] = pos;
  for (int i = 0; i < n; i++) {                  // PAR
    x[i] = 1.0 / (i + 1);
  }
  float norm = conj_grad(n);
  return __int(norm * 1000.0);
}
"""


def cg_source(scale: int = 1) -> str:
    n = 60 * scale
    nz_row = 5
    return _src(_CG, N=n, NP1=n + 1, NNZ=n * nz_row, NZROW=nz_row, CGITS=4)


register(
    Workload(
        "CG",
        "nas",
        cg_source,
        description="conjugate gradient: sparse matvec, dot-product reductions",
    )
)

# ---------------------------------------------------------------------------
# EP — embarrassingly parallel (gaussian pairs; global LCG seed chain)
# ---------------------------------------------------------------------------

_EP = """
int seed;
float sx;
float sy;
int counts[10];

int lcg() {
  seed = (seed * 1103515 + 12345) % 2147483647;
  return seed;
}

int main() {
  seed = 271828183;
  int n = @N@;
  for (int k = 0; k < n; k++) {                  // PAR
    float x1 = (lcg() % 10000) * 0.0002 - 1.0;
    float x2 = (lcg() % 10000) * 0.0002 - 1.0;
    float t = x1 * x1 + x2 * x2;
    if (t <= 1.0) {
      float scale2 = sqrt(abs(2.0 * log(t + 0.000001) / (t + 0.000001)));
      float gx = x1 * scale2;
      float gy = x2 * scale2;
      sx += gx;
      sy += gy;
      int bin = __int(abs(gx));
      if (bin > 9) { bin = 9; }
      counts[bin] += 1;
    }
  }
  int total = 0;
  for (int i = 0; i < 10; i++) {                 // PAR
    total += counts[i];
  }
  return total;
}
"""


def ep_source(scale: int = 1) -> str:
    return _src(_EP, N=600 * scale)


register(
    Workload(
        "EP",
        "nas",
        ep_source,
        description=(
            "embarrassingly parallel gaussian pairs; reference parallelizes "
            "the main loop via seed skip-ahead, which dependence profiling "
            "cannot see (intended recall miss)"
        ),
    )
)

# ---------------------------------------------------------------------------
# FT — FFT kernel (evolve stencil + butterfly passes + checksum)
# ---------------------------------------------------------------------------

_FT = """
float ur[@NN@];
float ui[@NN@];
float dummy;

float randf(int k) {
  return ((k * 1103515 + 12345) % 10000) * 0.0001;
}

void evolve(int n, int t) {
  for (int i = 0; i < n; i++) {                  // PAR
    for (int j = 0; j < n; j++) {                // PAR
      float factor = exp(0.0 - 0.000001 * t * (i * i + j * j));
      ur[i * n + j] = ur[i * n + j] * factor;
      ui[i * n + j] = ui[i * n + j] * factor;
    }
  }
}

void butterfly(int n, int stride) {
  for (int row = 0; row < n; row++) {            // PAR
    int half = stride / 2;
    for (int k = 0; k < half; k++) {             // PAR
      int i0 = row * n + k;
      int i1 = row * n + k + half;
      float tr = ur[i1];
      float ti = ui[i1];
      ur[i1] = ur[i0] - tr;
      ui[i1] = ui[i0] - ti;
      ur[i0] = ur[i0] + tr;
      ui[i0] = ui[i0] + ti;
    }
  }
}

int main() {
  int n = @N@;
  for (int i = 0; i < n; i++) {                  // PAR
    for (int j = 0; j < n; j++) {                // PAR
      dummy = randf(i * n + j);
      ur[i * n + j] = dummy;
      dummy = randf(i * n + j + 1);
      ui[i * n + j] = dummy;
    }
  }
  for (int t = 1; t <= @STEPS@; t++) {           // SEQ
    evolve(n, t);
    int stride = n;
    while (stride >= 2) {                        // SEQ
      butterfly(n, stride);
      stride = stride / 2;
    }
  }
  float sumr = 0.0;
  float sumi = 0.0;
  for (int i = 0; i < n * n; i++) {              // PAR
    sumr += ur[i];
    sumi += ui[i];
  }
  return __int(sumr * 10.0 + sumi);
}
"""


def ft_source(scale: int = 1) -> str:
    n = 16 * scale
    return _src(_FT, N=n, NN=n * n, STEPS=2)


register(
    Workload(
        "FT",
        "nas",
        ft_source,
        description=(
            "FFT: evolve stencil (Fig. 4.1 DOALL nest), butterfly passes, "
            "and the §2.5.2 dummy-variable WAW pattern (Fig. 2.14)"
        ),
    )
)

# ---------------------------------------------------------------------------
# IS — integer sort (counting sort; shared histogram)
# ---------------------------------------------------------------------------

_IS = """
int keys[@N@];
int count[@MAXK@];
int ranks[@N@];
int seed;

int main() {
  int n = @N@;
  int maxk = @MAXK@;
  seed = 314159265;
  for (int i = 0; i < n; i++) {                  // SEQ
    seed = (seed * 1103515 + 12345) % 2147483647;
    keys[i] = seed % maxk;
  }
  for (int i = 0; i < n; i++) {                  // PAR
    count[keys[i]] += 1;
  }
  for (int k = 1; k < maxk; k++) {               // SEQ
    count[k] = count[k] + count[k - 1];
  }
  for (int i = 0; i < n; i++) {                  // PAR
    ranks[i] = count[keys[i]] - 1;
    count[keys[i]] -= 1;
  }
  int check = 0;
  for (int i = 0; i < n; i++) {                  // PAR
    check += ranks[i] * (i % 7);
  }
  return check;
}
"""


def is_source(scale: int = 1) -> str:
    return _src(_IS, N=800 * scale, MAXK=64)


register(
    Workload(
        "IS",
        "nas",
        is_source,
        description=(
            "integer (counting) sort: key-gen LCG chain, histogram the "
            "reference parallelizes with private bins (intended miss), "
            "sequential prefix sum"
        ),
    )
)

# ---------------------------------------------------------------------------
# LU — SSOR wavefront sweeps
# ---------------------------------------------------------------------------

_LU = """
float v[@NN@];
float rsd[@NN@];

void jac(int n) {
  for (int i = 1; i < n - 1; i++) {              // PAR
    for (int j = 1; j < n - 1; j++) {            // PAR
      rsd[i * n + j] = 0.25 * (v[(i - 1) * n + j] + v[(i + 1) * n + j]
                     + v[i * n + j - 1] + v[i * n + j + 1]);
    }
  }
}

void blts(int n) {
  for (int i = 1; i < n - 1; i++) {              // SEQ
    for (int j = 1; j < n - 1; j++) {            // SEQ
      rsd[i * n + j] = rsd[i * n + j]
                     - 0.5 * (rsd[(i - 1) * n + j] + rsd[i * n + j - 1]);
    }
  }
}

void buts(int n) {
  for (int i = n - 2; i >= 1; i--) {             // SEQ
    for (int j = n - 2; j >= 1; j--) {           // SEQ
      rsd[i * n + j] = rsd[i * n + j]
                     - 0.5 * (rsd[(i + 1) * n + j] + rsd[i * n + j + 1]);
    }
  }
}

float l2norm(int n) {
  float total = 0.0;
  for (int i = 0; i < n * n; i++) {              // PAR
    total += rsd[i] * rsd[i];
  }
  return sqrt(total / (n * n));
}

int main() {
  int n = @N@;
  for (int i = 0; i < n; i++) {                  // PAR
    for (int j = 0; j < n; j++) {                // PAR
      v[i * n + j] = ((i * 5 + j * 11) % 17) * 0.06;
    }
  }
  float norm = 0.0;
  for (int step = 0; step < @STEPS@; step++) {   // SEQ
    jac(n);
    blts(n);
    buts(n);
    for (int i = 0; i < n * n; i++) {            // PAR
      v[i] = v[i] + 0.1 * rsd[i];
    }
    norm = l2norm(n);
  }
  return __int(norm * 100000.0);
}
"""


def lu_source(scale: int = 1) -> str:
    n = 14 + 4 * scale
    return _src(_LU, N=n, NN=n * n, STEPS=2 + scale)


register(
    Workload(
        "LU",
        "nas",
        lu_source,
        description="SSOR: jacobian stencil (parallel), lower/upper wavefront sweeps (sequential)",
    )
)

# ---------------------------------------------------------------------------
# MG — multigrid V-cycle (smooth / restrict / prolong)
# ---------------------------------------------------------------------------

_MG = """
float grid[@NN@];
float resid[@NN@];
float coarse[@CC@];

void smooth(int n) {
  for (int i = 1; i < n - 1; i++) {              // PAR
    for (int j = 1; j < n - 1; j++) {            // PAR
      resid[i * n + j] = grid[i * n + j]
        + 0.125 * (grid[(i - 1) * n + j] + grid[(i + 1) * n + j]
                 + grid[i * n + j - 1] + grid[i * n + j + 1]
                 - 4.0 * grid[i * n + j]);
    }
  }
  for (int i = 1; i < n - 1; i++) {              // PAR
    for (int j = 1; j < n - 1; j++) {            // PAR
      grid[i * n + j] = resid[i * n + j];
    }
  }
}

void restrictg(int n, int c) {
  for (int i = 1; i < c - 1; i++) {              // PAR
    for (int j = 1; j < c - 1; j++) {            // PAR
      coarse[i * c + j] = 0.25 * (grid[(2 * i) * n + 2 * j]
        + grid[(2 * i + 1) * n + 2 * j]
        + grid[(2 * i) * n + 2 * j + 1]
        + grid[(2 * i + 1) * n + 2 * j + 1]);
    }
  }
}

void prolong(int n, int c) {
  for (int i = 1; i < c - 1; i++) {              // PAR
    for (int j = 1; j < c - 1; j++) {            // PAR
      grid[(2 * i) * n + 2 * j] = grid[(2 * i) * n + 2 * j]
                                + 0.5 * coarse[i * c + j];
    }
  }
}

int main() {
  int n = @N@;
  int c = @C@;
  for (int i = 0; i < n * n; i++) {              // PAR
    grid[i] = (i % 23) * 0.04;
  }
  for (int cycle = 0; cycle < @CYCLES@; cycle++) {  // SEQ
    smooth(n);
    restrictg(n, c);
    prolong(n, c);
  }
  float norm = 0.0;
  for (int i = 0; i < n * n; i++) {              // PAR
    norm += grid[i] * grid[i];
  }
  return __int(sqrt(norm) * 100.0);
}
"""


def mg_source(scale: int = 1) -> str:
    n = 16 * scale
    c = n // 2
    return _src(_MG, N=n, NN=n * n, C=c, CC=c * c, CYCLES=2)


register(
    Workload(
        "MG",
        "nas",
        mg_source,
        description="multigrid: smoothing stencil, restriction, prolongation",
    )
)

# ---------------------------------------------------------------------------
# SP — scalar pentadiagonal (rhs + forward/backward line substitutions)
# ---------------------------------------------------------------------------

_SP = """
float u[@NN@];
float rhs[@NN@];

void compute_rhs(int n) {
  for (int i = 1; i < n - 1; i++) {              // PAR
    for (int j = 1; j < n - 1; j++) {            // PAR
      rhs[i * n + j] = u[(i - 1) * n + j] - 2.0 * u[i * n + j]
                     + u[(i + 1) * n + j];
    }
  }
}

void x_substitute(int n) {
  for (int j = 1; j < n - 1; j++) {              // PAR
    for (int i = 2; i < n - 1; i++) {            // SEQ
      rhs[i * n + j] = rhs[i * n + j] - 0.2 * rhs[(i - 1) * n + j];
    }
    for (int i = n - 3; i >= 1; i--) {           // SEQ
      rhs[i * n + j] = rhs[i * n + j] - 0.2 * rhs[(i + 1) * n + j];
    }
  }
}

int main() {
  int n = @N@;
  for (int i = 0; i < n * n; i++) {              // PAR
    u[i] = (i % 19) * 0.05;
  }
  for (int step = 0; step < @STEPS@; step++) {   // SEQ
    compute_rhs(n);
    x_substitute(n);
    for (int i = 0; i < n * n; i++) {            // PAR
      u[i] = u[i] + 0.02 * rhs[i];
    }
  }
  float checksum = 0.0;
  for (int i = 0; i < n * n; i++) {              // PAR
    checksum += u[i];
  }
  return __int(checksum * 10.0);
}
"""


def sp_source(scale: int = 1) -> str:
    n = 14 + 4 * scale
    return _src(_SP, N=n, NN=n * n, STEPS=2 + scale)


register(
    Workload(
        "SP",
        "nas",
        sp_source,
        description="scalar pentadiagonal: rhs stencil + per-line forward/backward substitution",
    )
)

NAS_NAMES = ("BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP")
