"""Barcelona OpenMP Task Suite (BOTS) kernels in MiniC.

Recursive task-parallel programs: the Table 4.6 ground truth is which
recursive call sites form independent SPMD tasks.  ``task_truth`` maps the
hot function to the expected independence verdict.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register


def _src(template: str, **params) -> str:
    out = template
    for key, value in params.items():
        out = out.replace(f"@{key}@", str(value))
    return out.strip() + "\n"


# ---------------------------------------------------------------------------
# fib — the canonical two independent recursive calls (Fig. 4.3)
# ---------------------------------------------------------------------------

_FIB = """
int fib(int n) {
  if (n < 2) {
    return n;
  }
  int x = fib(n - 1);
  int y = fib(n - 2);
  return x + y;
}

int main() {
  return fib(@N@);
}
"""


def fib_source(scale: int = 1) -> str:
    return _src(_FIB, N=11 + scale)


register(Workload("fib", "bots", fib_source,
                  task_truth={"fib": True},
                  description="nth Fibonacci number: two independent recursive calls"))

# ---------------------------------------------------------------------------
# nqueens — per-column candidate recursion (Fig. 4.2 loop)
# ---------------------------------------------------------------------------

_NQUEENS = """
int board[@N@];
int solutions;

int ok(int row, int col) {
  for (int i = 0; i < row; i++) {                // SEQ
    if (board[i] == col) { return 0; }
    if (board[i] - i == col - row) { return 0; }
    if (board[i] + i == col + row) { return 0; }
  }
  return 1;
}

void solve(int row, int n) {
  if (row == n) {
    solutions += 1;
    return;
  }
  for (int col = 0; col < n; col++) {            // PAR
    if (ok(row, col)) {
      board[row] = col;
      solve(row + 1, n);
    }
  }
}

int main() {
  solve(0, @N@);
  return solutions;
}
"""


def nqueens_source(scale: int = 1) -> str:
    return _src(_NQUEENS, N=6 if scale <= 1 else 7)


register(Workload("nqueens", "bots", nqueens_source,
                  task_truth={"solve": True},
                  description="n-queens: candidate placements explored as tasks; "
                              "the shared board makes tasks need a private copy "
                              "(reference copies the board per task)"))

# ---------------------------------------------------------------------------
# sort — recursive mergesort: two independent sorts + a merge
# ---------------------------------------------------------------------------

_SORT = """
int data[@N@];
int tmp[@N@];

void merge(int lo, int mid, int hi) {
  int i = lo;
  int j = mid;
  int k = lo;
  while (i < mid && j < hi) {                    // SEQ
    if (data[i] <= data[j]) {
      tmp[k] = data[i];
      i++;
    } else {
      tmp[k] = data[j];
      j++;
    }
    k++;
  }
  while (i < mid) {                              // SEQ
    tmp[k] = data[i];
    i++; k++;
  }
  while (j < hi) {                               // SEQ
    tmp[k] = data[j];
    j++; k++;
  }
  for (int m = lo; m < hi; m++) {                // PAR
    data[m] = tmp[m];
  }
}

void sort(int lo, int hi) {
  if (hi - lo < 2) { return; }
  int mid = (lo + hi) / 2;
  sort(lo, mid);
  sort(mid, hi);
  merge(lo, mid, hi);
}

int main() {
  int n = @N@;
  for (int i = 0; i < n; i++) {                  // PAR
    data[i] = (i * 1103515 + 12345) % 1000;
  }
  sort(0, n);
  int inversions = 0;
  for (int i = 1; i < n; i++) {                  // PAR
    if (data[i - 1] > data[i]) { inversions++; }
  }
  return inversions;
}
"""


def sort_source(scale: int = 1) -> str:
    return _src(_SORT, N=128 * scale)


register(Workload("sort", "bots", sort_source,
                  task_truth={"sort": True},
                  description="mergesort: the two recursive sorts are independent "
                              "(disjoint halves), merge joins them"))

# ---------------------------------------------------------------------------
# fft — recursive halves + twiddle combine (Fig. 4.9)
# ---------------------------------------------------------------------------

_FFTB = """
float re[@N@];
float im[@N@];
float tr[@N@];
float ti[@N@];

void fft_rec(int base, int n, int stride) {
  if (n == 1) { return; }
  int half = n / 2;
  fft_rec(base, half, stride * 2);
  fft_rec(base + stride, half, stride * 2);
  for (int k = 0; k < half; k++) {               // PAR
    int even = base + k * 2 * stride;
    int odd = base + k * 2 * stride + stride;
    float c = cos(6.28318 * k / n);
    float s = sin(6.28318 * k / n);
    float twr = c * re[odd] - s * im[odd];
    float twi = s * re[odd] + c * im[odd];
    tr[base + k * stride] = re[even] + twr;
    ti[base + k * stride] = im[even] + twi;
    tr[base + (k + half) * stride] = re[even] - twr;
    ti[base + (k + half) * stride] = im[even] - twi;
  }
  for (int k = 0; k < n; k++) {                  // PAR
    re[base + k * stride] = tr[base + k * stride];
    im[base + k * stride] = ti[base + k * stride];
  }
}

int main() {
  int n = @N@;
  for (int i = 0; i < n; i++) {                  // PAR
    re[i] = (i * 37 % 100) * 0.01;
    im[i] = 0.0;
  }
  fft_rec(0, n, 1);
  float mag = 0.0;
  for (int i = 0; i < n; i++) {                  // PAR
    mag += re[i] * re[i] + im[i] * im[i];
  }
  return __int(mag * 10.0);
}
"""


def fft_source(scale: int = 1) -> str:
    return _src(_FFTB, N=32 * scale)


register(Workload("fft", "bots", fft_source,
                  task_truth={"fft_rec": True},
                  description="recursive FFT: even/odd halves independent, "
                              "twiddle combine afterwards (Fig. 4.9)"))

# ---------------------------------------------------------------------------
# strassen-like — independent quadrant multiplies
# ---------------------------------------------------------------------------

_STRASSEN = """
float a[@NN@];
float b[@NN@];
float c[@NN@];

void mult_block(int ai, int aj, int bi, int bj, int ci, int cj, int size, int n) {
  for (int i = 0; i < size; i++) {               // PAR
    for (int j = 0; j < size; j++) {             // PAR
      float acc = 0.0;
      for (int k = 0; k < size; k++) {           // SEQ
        acc += a[(ai + i) * n + aj + k] * b[(bi + k) * n + bj + j];
      }
      c[(ci + i) * n + cj + j] += acc;
    }
  }
}

void strassen(int size, int n) {
  int half = size / 2;
  mult_block(0, 0, 0, 0, 0, 0, half, n);
  mult_block(0, half, half, 0, 0, 0, half, n);
  mult_block(0, 0, 0, half, 0, half, half, n);
  mult_block(0, half, half, half, 0, half, half, n);
  mult_block(half, 0, 0, 0, half, 0, half, n);
  mult_block(half, half, half, 0, half, 0, half, n);
  mult_block(half, 0, 0, half, half, half, half, n);
  mult_block(half, half, half, half, half, half, half, n);
}

int main() {
  int n = @N@;
  for (int i = 0; i < n * n; i++) {              // PAR
    a[i] = (i % 7) * 0.25;
    b[i] = (i % 5) * 0.5;
  }
  strassen(n, n);
  float check = 0.0;
  for (int i = 0; i < n * n; i++) {              // PAR
    check += c[i];
  }
  return __int(check);
}
"""


def strassen_source(scale: int = 1) -> str:
    return _src(_STRASSEN, N=8 * scale, NN=64 * scale * scale)


register(Workload("strassen", "bots", strassen_source,
                  task_truth={"strassen": False},
                  description="blocked matrix multiply: quadrant multiplies; pairs "
                              "updating the same C quadrant conflict (taskable only "
                              "with accumulation ordering)"))

# ---------------------------------------------------------------------------
# sparselu-like — block LU task graph
# ---------------------------------------------------------------------------

_SPARSELU = """
float blocks[@TOTAL@];

void lu0(int blk, int bs) {
  for (int k = 0; k < bs; k++) {                 // SEQ
    for (int i = k + 1; i < bs; i++) {           // PAR
      blocks[blk + i * bs + k] = blocks[blk + i * bs + k]
        / (blocks[blk + k * bs + k] + 0.0001);
      for (int j = k + 1; j < bs; j++) {         // SEQ
        blocks[blk + i * bs + j] = blocks[blk + i * bs + j]
          - blocks[blk + i * bs + k] * blocks[blk + k * bs + j];
      }
    }
  }
}

void bmod(int row_blk, int col_blk, int inner_blk, int bs) {
  for (int i = 0; i < bs; i++) {                 // PAR
    for (int j = 0; j < bs; j++) {               // PAR
      float acc = 0.0;
      for (int k = 0; k < bs; k++) {             // SEQ
        acc += blocks[row_blk + i * bs + k] * blocks[col_blk + k * bs + j];
      }
      blocks[inner_blk + i * bs + j] -= acc;
    }
  }
}

int main() {
  int nb = @NB@;
  int bs = @BS@;
  int bsz = bs * bs;
  for (int i = 0; i < nb * nb * bsz; i++) {      // PAR
    blocks[i] = ((i * 13) % 11 + 1) * 0.3;
  }
  for (int k = 0; k < nb; k++) {                 // SEQ
    lu0((k * nb + k) * bsz, bs);
    for (int j = k + 1; j < nb; j++) {           // PAR
      bmod((k * nb + k) * bsz, (k * nb + j) * bsz, (k * nb + j) * bsz, bs);
    }
    for (int i = k + 1; i < nb; i++) {           // PAR
      bmod((i * nb + k) * bsz, (k * nb + k) * bsz, (i * nb + k) * bsz, bs);
    }
    for (int i = k + 1; i < nb; i++) {           // PAR
      for (int j = k + 1; j < nb; j++) {         // PAR
        bmod((i * nb + k) * bsz, (k * nb + j) * bsz, (i * nb + j) * bsz, bs);
      }
    }
  }
  float check = 0.0;
  for (int i = 0; i < nb * nb * bsz; i++) {      // PAR
    check += blocks[i];
  }
  return __int(check) % 1000000007;
}
"""


def sparselu_source(scale: int = 1) -> str:
    nb, bs = 3, 4 * scale
    return _src(_SPARSELU, NB=nb, BS=bs, TOTAL=nb * nb * bs * bs)


register(Workload("sparselu", "bots", sparselu_source,
                  task_truth={"bmod": True},
                  description="blocked sparse LU: the bmod updates of distinct "
                              "blocks within one k step are independent tasks"))

# ---------------------------------------------------------------------------
# health-like — recursive village simulation
# ---------------------------------------------------------------------------

_HEALTH = """
int patients[@NV@];
int treated[@NV@];

int simulate(int village, int depth, int nv) {
  int left_load = 0;
  int right_load = 0;
  if (depth > 0) {
    int left = village * 2 + 1;
    int right = village * 2 + 2;
    if (left < nv) {
      left_load = simulate(left, depth - 1, nv);
    }
    if (right < nv) {
      right_load = simulate(right, depth - 1, nv);
    }
  }
  int local = patients[village] % 7;
  for (int i = 0; i < local; i++) {              // SEQ
    treated[village] += 1;
  }
  return left_load + right_load + local;
}

int main() {
  int nv = @NV@;
  for (int v = 0; v < nv; v++) {                 // PAR
    patients[v] = (v * 2654435761) % 97;
  }
  int total = simulate(0, @DEPTH@, nv);
  return total;
}
"""


def health_source(scale: int = 1) -> str:
    depth = 5 + (scale - 1)
    return _src(_HEALTH, NV=2 ** (depth + 1), DEPTH=depth)


register(Workload("health", "bots", health_source,
                  task_truth={"simulate": True},
                  description="health: recursion over a village tree; sibling "
                              "subtrees touch disjoint state"))

# ---------------------------------------------------------------------------
# alignment-like — independent pairwise alignments
# ---------------------------------------------------------------------------

_ALIGNMENT = """
int seqs[@TOTAL@];
int scores[@NPAIR@];

int align(int s1, int s2, int len) {
  int score = 0;
  int gap = 0;
  for (int i = 0; i < len; i++) {                // SEQ
    int a = seqs[s1 * len + i];
    int b = seqs[s2 * len + i];
    if (a == b) {
      score += 2 + gap;
      gap = 0;
    } else {
      score -= 1;
      gap = 1;
    }
  }
  return score;
}

int main() {
  int ns = @NS@;
  int len = @LEN@;
  for (int i = 0; i < ns * len; i++) {           // PAR
    seqs[i] = (i * 131071) % 4;
  }
  int pair = 0;
  for (int i = 0; i < ns; i++) {                 // PAR
    for (int j = i + 1; j < ns; j++) {           // PAR
      scores[pair] = align(i, j, len);
      pair++;
    }
  }
  int best = -1000000;
  for (int p = 0; p < pair; p++) {               // PAR
    if (scores[p] > best) { best = scores[p]; }
  }
  return best;
}
"""


def alignment_source(scale: int = 1) -> str:
    ns = 8 + 2 * scale
    return _src(_ALIGNMENT, NS=ns, LEN=24, TOTAL=ns * 24,
                NPAIR=ns * (ns - 1) // 2)


register(Workload("alignment", "bots", alignment_source,
                  task_truth={"align": True},
                  description="pairwise sequence alignment: each pair independent "
                              "(the pair counter is an induction the reference "
                              "precomputes)"))

BOTS_NAMES = ("fib", "nqueens", "sort", "fft", "strassen", "sparselu",
              "health", "alignment")
