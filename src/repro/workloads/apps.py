"""Application workloads: gzip/bzip2-like compressors (Table 4.5),
FaceDetection and libVorbis-like multimedia programs and PARSEC-style
kernels (Table 4.7, Fig. 4.10/4.11).
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register


def _src(template: str, **params) -> str:
    out = template
    for key, value in params.items():
        out = out.replace(f"@{key}@", str(value))
    return out.strip() + "\n"


# ---------------------------------------------------------------------------
# gzip-like — per-block LZ-style compression; the block loop is the paper's
# "most important parallelization opportunity" for gzip (pigz does exactly
# this); the running checksum chains blocks in the original.
# ---------------------------------------------------------------------------

_GZIP = """
int input[@N@];
int outlen[@NBLK@];
int checksum;

int compress_block(int base, int len) {
  int out = 0;
  int i = 0;
  while (i < len) {                              // SEQ
    int run = 1;
    while (i + run < len && input[base + i + run] == input[base + i]) {  // SEQ
      run++;
    }
    if (run > 2) {
      out += 2;
      i += run;
    } else {
      int match = 0;
      int look = i - 8;
      if (look < 0) { look = 0; }
      for (int j = look; j < i; j++) {           // SEQ
        if (input[base + j] == input[base + i]) { match = 1; }
      }
      out += 2 - match;
      i++;
    }
  }
  return out;
}

int main() {
  int n = @N@;
  int nblk = @NBLK@;
  int bs = n / nblk;
  for (int i = 0; i < n; i++) {                  // SEQ
    input[i] = (i * 2654435761 % 97) % 7;
  }
  for (int b = 0; b < nblk; b++) {               // PAR
    outlen[b] = compress_block(b * bs, bs);
  }
  checksum = 0;
  for (int i = 0; i < n; i++) {                  // PAR
    checksum = (checksum + input[i] * 31) % 65521;
  }
  int total = 0;
  for (int b = 0; b < nblk; b++) {               // PAR
    total += outlen[b];
  }
  return total + checksum % 16;
}
"""


def gzip_source(scale: int = 1) -> str:
    return _src(_GZIP, N=960 * scale, NBLK=8)


register(Workload("gzip-like", "apps", gzip_source,
                  description="deflate-style per-block compression: the block "
                              "loop is gzip's headline opportunity (Table 4.5)"))

# ---------------------------------------------------------------------------
# bzip2-like — per-block transform (counting-sort BWT stand-in + MTF + RLE)
# ---------------------------------------------------------------------------

_BZIP2 = """
int input[@N@];
int work[@N@];
int mtf[16];
int outlen[@NBLK@];

int transform_block(int base, int len) {
  for (int v = 0; v < 16; v++) {                 // SEQ
    mtf[v] = v;
  }
  int freq0 = 0;
  for (int i = 0; i < len; i++) {                // SEQ
    if (input[base + i] == 0) { freq0++; }
  }
  int lo = 0;
  int hi = freq0;
  for (int i = 0; i < len; i++) {                // SEQ
    if (input[base + i] == 0) {
      work[base + lo] = input[base + i];
      lo++;
    } else {
      work[base + hi] = input[base + i];
      hi++;
    }
  }
  int out = 0;
  int prev = -1;
  int run = 0;
  for (int i = 0; i < len; i++) {                // SEQ
    int sym = work[base + i];
    int pos = 0;
    for (int v = 0; v < 16; v++) {               // SEQ
      if (mtf[v] == sym) { pos = v; }
    }
    for (int v = pos; v > 0; v--) {              // SEQ
      mtf[v] = mtf[v - 1];
    }
    mtf[0] = sym;
    if (pos == prev) {
      run++;
    } else {
      out += 1 + run / 4;
      run = 0;
      prev = pos;
    }
  }
  return out;
}

int main() {
  int n = @N@;
  int nblk = @NBLK@;
  int bs = n / nblk;
  for (int i = 0; i < n; i++) {                  // SEQ
    input[i] = (i * 1103515245 % 1009) % 16;
  }
  for (int b = 0; b < nblk; b++) {               // PAR
    outlen[b] = transform_block(b * bs, bs);
  }
  int total = 0;
  for (int b = 0; b < nblk; b++) {               // PAR
    total += outlen[b];
  }
  return total;
}
"""


def bzip2_source(scale: int = 1) -> str:
    return _src(_BZIP2, N=640 * scale, NBLK=8)


register(Workload("bzip2-like", "apps", bzip2_source,
                  description="bzip2-style per-block transform; the shared MTF "
                              "table blocks naive block parallelism (the reference "
                              "bzip2smp privatizes per-block state)"))

# ---------------------------------------------------------------------------
# FaceDetection — the Fig. 4.10 task graph: scale pyramid -> per-scale
# detection -> merge, per frame.
# ---------------------------------------------------------------------------

_FACEDETECT = """
int frame[@NPIX@];
int scale1[@NPIX@];
int scale2[@NPIX@];
int scale3[@NPIX@];
int hits1;
int hits2;
int hits3;
int faces;

void build_scale1(int n) {
  for (int i = 0; i < n; i++) {                  // PAR
    scale1[i] = frame[i];
  }
}

void build_scale2(int n) {
  for (int i = 0; i < n / 2; i++) {              // PAR
    scale2[i] = (frame[2 * i] + frame[2 * i + 1]) / 2;
  }
}

void build_scale3(int n) {
  for (int i = 0; i < n / 4; i++) {              // PAR
    scale3[i] = (frame[4 * i] + frame[4 * i + 2]) / 2;
  }
}

int detect(int which, int len) {
  int hits = 0;
  for (int i = 4; i < len - 4; i++) {            // PAR
    int a = 0;
    int b = 0;
    for (int w = 1; w <= 4; w++) {               // SEQ
      if (which == 1) {
        a += scale1[i - w] + scale1[i + w];
        b += scale1[i] * 2;
      }
      if (which == 2) {
        a += scale2[i - w] + scale2[i + w];
        b += scale2[i] * 2;
      }
      if (which == 3) {
        a += scale3[i - w] + scale3[i + w];
        b += scale3[i] * 2;
      }
    }
    if (b > a + 128) {
      hits++;
    }
  }
  return hits;
}

int main() {
  int n = @NPIX@;
  int nframes = @NFRAMES@;
  faces = 0;
  for (int f = 0; f < nframes; f++) {            // PAR
    for (int i = 0; i < n; i++) {                // PAR
      frame[i] = ((i + f * 7) * 37) % 256;
    }
    build_scale1(n);
    build_scale2(n);
    build_scale3(n);
    hits1 = detect(1, n);
    hits2 = detect(2, n / 2);
    hits3 = detect(3, n / 4);
    faces += hits1 + hits2 + hits3;
  }
  return faces;
}
"""


def facedetect_source(scale: int = 1) -> str:
    return _src(_FACEDETECT, NPIX=400 * scale, NFRAMES=3)


register(Workload("facedetection", "apps", facedetect_source,
                  description="FaceDetection (Fig. 4.10): per-frame pipeline of "
                              "three independent scale builds + detections, "
                              "merged into a face count"))

# ---------------------------------------------------------------------------
# libVorbis-like — per-frame decode: two channels independent, overlap-add
# chains frames.
# ---------------------------------------------------------------------------

_VORBIS = """
float packet[@FRAME@];
float left[@FRAME@];
float right[@FRAME@];
float pcm[@FRAME@];
float carry;

void decode_channel(float chan[], int n, int which) {
  for (int i = 0; i < n; i++) {                  // PAR
    float acc = 0.0;
    for (int k = 0; k < 4; k++) {                // SEQ
      acc += packet[(i + k) % n] * cos(0.3927 * k * (i + which));
    }
    chan[i] = acc;
  }
}

int main() {
  int n = @FRAME@;
  int frames = @NFRAMES@;
  carry = 0.0;
  float total = 0.0;
  for (int f = 0; f < frames; f++) {             // SEQ
    for (int i = 0; i < n; i++) {                // PAR
      packet[i] = ((i * 29 + f * 13) % 100) * 0.01;
    }
    decode_channel(left, n, 0);
    decode_channel(right, n, 1);
    for (int i = 0; i < n; i++) {                // PAR
      pcm[i] = (left[i] + right[i]) * 0.5;
    }
    pcm[0] = pcm[0] + carry;
    carry = pcm[n - 1];
    for (int i = 0; i < n; i++) {                // PAR
      total += pcm[i] * pcm[i];
    }
  }
  return __int(total * 10.0);
}
"""


def vorbis_source(scale: int = 1) -> str:
    return _src(_VORBIS, FRAME=96 * scale, NFRAMES=3)


register(Workload("libvorbis-like", "apps", vorbis_source,
                  description="audio decode: two channel decodes independent "
                              "(MPMD), overlap-add carry chains frames"))

# ---------------------------------------------------------------------------
# PARSEC-style kernels for Table 4.7
# ---------------------------------------------------------------------------

_BLACKSCHOLES = """
float sptprice[@N@];
float strike[@N@];
float otime[@N@];
float prices[@N@];

float cnd(float x) {
  float l = abs(x);
  float k = 1.0 / (1.0 + 0.2316419 * l);
  float w = 1.0 - 0.3989423 * exp(0.0 - l * l / 2.0)
    * (0.31938 * k - 0.35656 * k * k + 1.78148 * k * k * k);
  if (x < 0.0) {
    return 1.0 - w;
  }
  return w;
}

int main() {
  int n = @N@;
  for (int i = 0; i < n; i++) {                  // PAR
    sptprice[i] = 90.0 + (i % 21);
    strike[i] = 95.0 + (i % 13);
    otime[i] = 0.25 + (i % 4) * 0.25;
  }
  for (int i = 0; i < n; i++) {                  // PAR
    float d1 = (log(sptprice[i] / strike[i]) + 0.06 * otime[i])
             / (0.2 * sqrt(otime[i]));
    float d2 = d1 - 0.2 * sqrt(otime[i]);
    prices[i] = sptprice[i] * cnd(d1)
              - strike[i] * exp(0.0 - 0.06 * otime[i]) * cnd(d2);
  }
  float total = 0.0;
  for (int i = 0; i < n; i++) {                  // PAR
    total += prices[i];
  }
  return __int(total);
}
"""


def blackscholes_source(scale: int = 1) -> str:
    return _src(_BLACKSCHOLES, N=300 * scale)


register(Workload("blackscholes", "apps", blackscholes_source,
                  description="PARSEC blackscholes: independent option pricing"))


_DEDUP = """
int stream[@N@];
int hashes[@NCHUNK@];
int sizes[@NCHUNK@];
int seen[@TABLE@];
int outbytes;

int main() {
  int n = @N@;
  int nchunk = @NCHUNK@;
  int cs = n / nchunk;
  for (int i = 0; i < n; i++) {                  // SEQ
    stream[i] = (i * 2654435761 % 251) % 64;
  }
  for (int c = 0; c < nchunk; c++) {             // PAR
    int h = 0;
    for (int i = 0; i < cs; i++) {               // SEQ
      h = (h * 33 + stream[c * cs + i]) % @TABLE@;
    }
    hashes[c] = h;
    int bytes = 0;
    for (int i = 1; i < cs; i++) {               // SEQ
      if (stream[c * cs + i] != stream[c * cs + i - 1]) { bytes++; }
    }
    sizes[c] = bytes + 1;
  }
  outbytes = 0;
  for (int c = 0; c < nchunk; c++) {             // SEQ
    if (seen[hashes[c]] == 0) {
      seen[hashes[c]] = 1;
      outbytes += sizes[c];
    } else {
      outbytes += 1;
    }
  }
  return outbytes;
}
"""


def dedup_source(scale: int = 1) -> str:
    return _src(_DEDUP, N=960 * scale, NCHUNK=12, TABLE=64)


register(Workload("dedup", "apps", dedup_source,
                  description="PARSEC dedup pipeline: parallel chunk hash+compress "
                              "stages, sequential duplicate-elimination stage"))


_FERRET = """
float db[@DBN@];
float queries[@QN@];
int results[@NQ@];

int main() {
  int nq = @NQ@;
  int qdim = @QDIM@;
  int ndb = @NDB@;
  for (int i = 0; i < ndb * qdim; i++) {         // PAR
    db[i] = ((i * 41) % 100) * 0.01;
  }
  for (int i = 0; i < nq * qdim; i++) {          // PAR
    queries[i] = ((i * 59) % 100) * 0.01;
  }
  for (int q = 0; q < nq; q++) {                 // PAR
    float best = 1000000.0;
    int bestidx = 0;
    for (int d = 0; d < ndb; d++) {              // SEQ
      float dist = 0.0;
      for (int k = 0; k < qdim; k++) {           // SEQ
        float diff = queries[q * qdim + k] - db[d * qdim + k];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        bestidx = d;
      }
    }
    results[q] = bestidx;
  }
  int check = 0;
  for (int q = 0; q < nq; q++) {                 // PAR
    check += results[q];
  }
  return check;
}
"""


def ferret_source(scale: int = 1) -> str:
    nq, qdim, ndb = 10 * scale, 8, 40
    return _src(_FERRET, NQ=nq, QDIM=qdim, NDB=ndb, DBN=ndb * qdim,
                QN=nq * qdim)


register(Workload("ferret", "apps", ferret_source,
                  description="PARSEC ferret: per-query similarity search stages"))

APP_NAMES = ("gzip-like", "bzip2-like", "facedetection", "libvorbis-like",
             "blackscholes", "dedup", "ferret")
