"""Python AST → MIR lowering.

Lowers the typed Python subset (see ``docs/FRONTEND.md``) to the same MIR
the MiniC frontend produces, so every downstream phase — profiler, CU
construction, dependence detection, suggestions, parallelize/validate —
runs unchanged on real Python functions.  The contract is identical to
:mod:`repro.mir.lowering`: every variable gets a memory home, every access
is an instrumented ``load``/``store`` carrying the *original Python source
line*, and control regions get ``enter``/``exit``/``iter`` markers.

Differences from the MiniC lowering, all driven by Python semantics:

* types come from :mod:`repro.frontend.infer`, not declarations; a local
  variable is "declared" in the region of its lexically-first assignment
  (which is what makes ``acc = 0.0`` inside a loop body privatizable,
  exactly like MiniC's ``float acc = 0.0``);
* ``for i in range(...)`` evaluates its bounds *once, before* the loop
  region (CPython semantics) into registers; the loop itself is emitted
  in the canonical counted shape ``repro.parallelize.transforms`` expects
  (constant init store, pure header, 3-instruction latch), so Python
  loops are DOALL-transformable whenever the range starts at a constant;
* arithmetic uses the Python-exact opcode variants (``//``, ``/f``,
  ``%%``, ``**``) so a lowered function computes bit-identical results to
  executing the original Python — the property the parallelize validator
  and the exec-parity tests rely on;
* ``and``/``or`` short-circuit *and* preserve operand values, matching
  Python's "return the deciding operand" rule.

The module also synthesizes the ``__analyze__`` driver used by
:func:`repro.analyze`: scalar arguments become immediates and list
arguments become initialized synthetic global arrays passed by base
address, so analyzing ``fn(a, b, n)`` needs no source-level harness.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.frontend.errors import FrontendError, unsupported
from repro.frontend.infer import (
    MATH_BUILTINS,
    PY_BUILTINS,
    FuncSig,
    InferenceEngine,
    array_literal_spec,
    const_eval,
    static_array_length,
    writes_name,
)
from repro.minic.sema import FuncInfo, SymbolTable, VarInfo
from repro.mir.instructions import BINOPS, UNOPS, Instr, Opcode
from repro.mir.module import Function, Module, Region

Operand = tuple  # ('i', value) | ('r', idx)

#: Python operator node -> MIR bin opcode string.  Division, floor
#: division, modulo, and power use the Python-semantics variants.
BIN_OP_MAP = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/f",
    ast.FloorDiv: "//",
    ast.Mod: "%%",
    ast.Pow: "**",
    ast.LShift: "<<",
    ast.RShift: ">>",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
}

CMP_OP_MAP = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}


@dataclass
class DriverSpec:
    """Synthesize ``def __analyze__(): return entry(*args)`` at lowering."""

    entry: str
    args: tuple = ()
    name: str = "__analyze__"


@dataclass
class _LoopContext:
    latch_label: int
    exit_label: int


@dataclass
class _RegionVars:
    declared: set = field(default_factory=set)
    read: set = field(default_factory=set)
    written: set = field(default_factory=set)


@dataclass
class _GlobalDecl:
    """One lowered module-level assignment."""

    name: str
    node: ast.stmt
    is_array: bool
    #: scalar initial value, array fill value, or list of element values
    init: object
    size: int = 1


def first_bindings(body: list) -> dict:
    """Name -> the lexically-first statement that assigns it.

    Walked in source order (not ``ast.walk`` order) so the *first*
    assignment decides a local's declaration region and line.
    """
    found: dict = {}

    def bind(name: str, stmt: ast.stmt) -> None:
        if name not in found:
            found[name] = stmt

    def visit(stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    bind(target.id, stmt)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt.target, ast.Name):
                bind(stmt.target.id, stmt)
        elif isinstance(stmt, ast.For):
            if isinstance(stmt.target, ast.Name):
                bind(stmt.target.id, stmt)
            for inner in stmt.body:
                visit(inner)
        elif isinstance(stmt, (ast.While, ast.If)):
            for inner in stmt.body:
                visit(inner)
            for inner in getattr(stmt, "orelse", []):
                visit(inner)

    for stmt in body:
        visit(stmt)
    return found


class MirBuilder(ast.NodeVisitor):
    """Lowers one inferred Python module to a :class:`Module`.

    Statements dispatch through :meth:`ast.NodeVisitor.visit`; expressions
    go through :meth:`_expr` (they need value plumbing the visitor pattern
    doesn't provide).  Anything the visitor doesn't handle lands in
    :meth:`generic_visit` and raises a source-mapped diagnostic.
    """

    def __init__(
        self,
        tree: ast.Module,
        source: str,
        name: str = "module",
        filename: str = "<python>",
        driver: Optional[DriverSpec] = None,
    ) -> None:
        self.tree = tree
        self.source = source
        self.name = name
        self.filename = filename
        self.driver = driver

        self.const_env: dict = {}
        self._fn_nodes: list[ast.FunctionDef] = []
        self._global_decls: list[_GlobalDecl] = []
        self.engine = InferenceEngine(filename, self.const_env)

        self.symtab = SymbolTable()
        self.module = Module(name, self.symtab)
        self._next_var_id = 0
        self._next_region_id = 1
        self._next_op_id = 0
        self._global_ids: dict[str, int] = {}
        self._driver_operands: list[Operand] = []

        # per-function lowering state
        self.func: Optional[Function] = None
        self.sig: Optional[FuncSig] = None
        self.block = None
        self._local_ids: dict[str, int] = {}
        self._declared_ids: set = set()
        self._loop_stack: list[_LoopContext] = []
        self._region_var_stack: list[_RegionVars] = []
        self._region_stack: list[int] = []

    # ------------------------------------------------------------------
    # public entry
    # ------------------------------------------------------------------

    def lower(self) -> Module:
        self._scan_module()
        self._run_inference()
        self._layout_globals()
        self._declare_functions()
        for node in self._fn_nodes:
            self._lower_function(node)
        if self.driver is not None:
            self._lower_driver()
        self.symtab.n_scopes = 1 + len(self._fn_nodes) + 1
        self.module.source = self.source
        return self.module

    # ------------------------------------------------------------------
    # module scan: globals, constants, function set
    # ------------------------------------------------------------------

    def _scan_module(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.FunctionDef):
                self._fn_nodes.append(stmt)
            elif isinstance(stmt, ast.AsyncFunctionDef):
                raise unsupported(stmt, "async function", self.filename)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                continue  # calls are whitelisted; imports carry no code
            elif isinstance(stmt, ast.Assign):
                if len(stmt.targets) != 1 or not isinstance(
                    stmt.targets[0], ast.Name
                ):
                    raise unsupported(
                        stmt, "module-level assignment target", self.filename
                    )
                self._scan_global(stmt.targets[0].id, stmt.value, stmt)
            elif isinstance(stmt, ast.AnnAssign):
                if not isinstance(stmt.target, ast.Name):
                    raise unsupported(
                        stmt, "module-level assignment target", self.filename
                    )
                if stmt.value is None:
                    raise FrontendError.at(
                        stmt,
                        "module-level variables need an initializer",
                        self.filename,
                    )
                self._scan_global(stmt.target.id, stmt.value, stmt)
            elif isinstance(stmt, ast.If) and _is_main_guard(stmt.test):
                continue  # `if __name__ == "__main__":` harness
            elif isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ) and isinstance(stmt.value.value, str):
                continue  # module docstring
            else:
                raise unsupported(
                    stmt,
                    f"module-level {type(stmt).__name__.lower()} statement",
                    self.filename,
                    hint="only constants, list globals, imports, function "
                    "defs, and a __main__ guard may appear at module level",
                )

    def _scan_global(self, name: str, value: ast.expr, stmt: ast.stmt):
        if name in self._global_ids or any(
            g.name == name for g in self._global_decls
        ):
            raise FrontendError.at(
                stmt,
                f"module-level variable {name!r} assigned twice",
                self.filename,
            )
        spec = array_literal_spec(value)
        if spec is not None:
            _, init = spec
            size = static_array_length(value, self.const_env)
            if size is None or size <= 0:
                raise FrontendError.at(
                    stmt,
                    f"cannot determine a static length for array {name!r} "
                    "(use a literal or module-constant size)",
                    self.filename,
                )
            self._global_decls.append(
                _GlobalDecl(name, stmt, True, init, size)
            )
            return
        scalar = const_eval(value, self.const_env)
        if scalar is None:
            raise FrontendError.at(
                stmt,
                f"module-level initializer for {name!r} must be a "
                "compile-time constant or a flat numeric list",
                self.filename,
            )
        self.const_env[name] = scalar
        self._global_decls.append(_GlobalDecl(name, stmt, False, scalar))

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------

    def _run_inference(self) -> None:
        engine = self.engine
        for decl in self._global_decls:
            if decl.is_array:
                fill = decl.init
                values = fill if isinstance(fill, list) else [fill]
                kind = (
                    "float"
                    if any(isinstance(v, float) for v in values)
                    else "int"
                )
                cell = engine.array_cell(kind, decl.size)
            else:
                kind = "float" if isinstance(decl.init, float) else "int"
                cell = engine.fresh(kind)
            engine.declare_global(decl.name, cell)
        for node in self._fn_nodes:  # signatures first: forward calls work
            engine.declare_function(node)
        if self.driver is not None:
            self._constrain_driver()
        for node in self._fn_nodes:
            engine.infer_function(engine.sigs[node.name])
        engine.finish()

    def _constrain_driver(self) -> None:
        driver = self.driver
        sig = self.engine.sigs.get(driver.entry)
        if sig is None:
            raise FrontendError(
                f"analyze target {driver.entry!r} is not a lowered function",
                filename=self.filename,
            )
        if len(driver.args) != len(sig.params):
            raise FrontendError(
                f"{driver.entry}() expects {len(sig.params)} argument(s), "
                f"analyze() got {len(driver.args)}",
                filename=self.filename,
                line=sig.node.lineno,
            )
        for value, param in zip(driver.args, sig.params):
            if isinstance(value, list):
                if not value or not all(
                    isinstance(v, (int, float)) for v in value
                ):
                    raise FrontendError(
                        "analyze() list arguments must be non-empty and "
                        "flat numeric",
                        filename=self.filename,
                        line=sig.node.lineno,
                    )
                kind = (
                    "float"
                    if any(isinstance(v, float) for v in value)
                    else "int"
                )
                cell = self.engine.array_cell(kind, len(value))
            elif isinstance(value, (int, float)):
                kind = "float" if isinstance(value, float) else "int"
                cell = self.engine.fresh(kind)
            else:
                raise FrontendError(
                    f"analyze() argument of type {type(value).__name__} is "
                    "outside the subset (int, float, bool, flat list)",
                    filename=self.filename,
                    line=sig.node.lineno,
                )
            self.engine.unify(param, cell, sig.node, self.filename)

    # ------------------------------------------------------------------
    # symbol construction
    # ------------------------------------------------------------------

    def _new_var(self, **kwargs) -> VarInfo:
        info = VarInfo(var_id=self._next_var_id, **kwargs)
        self._next_var_id += 1
        self.symtab.variables[info.var_id] = info
        return info

    def _layout_globals(self) -> None:
        offset = 0
        for decl in self._global_decls:
            cell = self.engine.global_cells[decl.name]
            if decl.is_array:
                type_name = self.engine.elem_kind_of(cell)
            else:
                type_name = self.engine.kind_of(cell)
            info = self._new_var(
                name=decl.name,
                type_name=type_name,
                is_array=decl.is_array,
                array_size=decl.size if decl.is_array else None,
                kind="global",
                func=None,
                decl_line=decl.node.lineno,
                scope_path=(0,),
            )
            self.symtab.global_vars.append(info)
            self._global_ids[decl.name] = info.var_id
            self.module.global_offsets[info.var_id] = offset
            if decl.is_array:
                values = (
                    decl.init
                    if isinstance(decl.init, list)
                    else [decl.init] * decl.size
                )
                for i, v in enumerate(values):
                    if v != 0 or isinstance(v, float):
                        self.module.global_init[offset + i] = v
            else:
                self.module.global_init[offset] = decl.init
            offset += info.size
        if self.driver is not None:
            offset = self._layout_driver_args(offset)
        self.module.global_size = offset

    def _layout_driver_args(self, offset: int) -> int:
        """Materialize analyze() arguments; list args become globals."""
        for i, value in enumerate(self.driver.args):
            if isinstance(value, list):
                kind = (
                    "float"
                    if any(isinstance(v, float) for v in value)
                    else "int"
                )
                info = self._new_var(
                    name=f"__arg{i}",
                    type_name=kind,
                    is_array=True,
                    array_size=len(value),
                    kind="global",
                    func=None,
                    decl_line=0,
                    scope_path=(0,),
                )
                self.symtab.global_vars.append(info)
                self.module.global_offsets[info.var_id] = offset
                for j, v in enumerate(value):
                    if v != 0 or isinstance(v, float):
                        self.module.global_init[offset + j] = v
                self._driver_operands.append(("i", offset))
                offset += len(value)
            else:
                self._driver_operands.append(
                    ("i", int(value) if isinstance(value, bool) else value)
                )
        return offset

    def _declare_functions(self) -> None:
        for scope, node in enumerate(self._fn_nodes, start=1):
            sig = self.engine.sigs[node.name]
            finfo = FuncInfo(
                node.name,
                self.engine.kind_of(sig.ret),
                [],
                node,
            )
            self.symtab.functions[node.name] = finfo
            for arg, cell in zip(node.args.args, sig.params):
                kind = self.engine.kind_of(cell)
                finfo.params.append(
                    self._new_var(
                        name=arg.arg,
                        type_name=(
                            self.engine.elem_kind_of(cell)
                            if kind == "array"
                            else kind
                        ),
                        is_array=kind == "array",
                        array_size=self.engine.size_of(cell),
                        kind="param",
                        func=node.name,
                        decl_line=arg.lineno,
                        scope_path=(0, scope),
                    )
                )
            bindings = first_bindings(node.body)
            for name in sorted(
                sig.local_names,
                key=lambda n: (getattr(bindings.get(n), "lineno", 0), n),
            ):
                cell = sig.cells[name]
                kind = self.engine.kind_of(cell)
                if kind == "array":
                    anchor = bindings.get(name, node)
                    raise FrontendError.at(
                        anchor,
                        f"local list variable {name!r} is unsupported "
                        "(declare arrays at module level or pass them as "
                        "parameters)",
                        self.filename,
                    )
                finfo.local_vars.append(
                    self._new_var(
                        name=name,
                        type_name=kind,
                        is_array=False,
                        array_size=None,
                        kind="local",
                        func=node.name,
                        decl_line=getattr(
                            bindings.get(name), "lineno", node.lineno
                        ),
                        scope_path=(0, scope),
                    )
                )

    # ------------------------------------------------------------------
    # emission helpers (mirroring repro.mir.lowering)
    # ------------------------------------------------------------------

    def _new_reg(self) -> int:
        reg = self.func.n_regs
        self.func.n_regs += 1
        return reg

    def _new_op_id(self, instr: Instr) -> int:
        op_id = self._next_op_id
        self._next_op_id += 1
        instr.op_id = op_id
        self.module.mem_ops[op_id] = instr
        return op_id

    def _emit(self, instr: Instr) -> Instr:
        self.block.append(instr)
        return instr

    def _start_block(self):
        self.block = self.func.new_block()
        return self.block

    def _jump_to_new_block(self):
        new = self.func.new_block()
        if self.block.terminator is None:
            self._emit(Instr(Opcode.JMP, a=new.label))
        self.block = new
        return new

    def _record_read(self, var_id: int) -> None:
        for rv in self._region_var_stack:
            rv.read.add(var_id)

    def _record_write(self, var_id: int) -> None:
        for rv in self._region_var_stack:
            rv.written.add(var_id)

    def _record_decl(self, var_id: int) -> None:
        if self._region_var_stack:
            self._region_var_stack[-1].declared.add(var_id)

    def _open_region(self, kind: str, start_line: int, end_line: int):
        region = Region(
            region_id=self._next_region_id,
            kind=kind,
            func=self.func.name if self.func else "<module>",
            start_line=start_line,
            end_line=end_line,
            parent=self._region_stack[-1] if self._region_stack else None,
        )
        self._next_region_id += 1
        self.module.add_region(region)
        rv = _RegionVars()
        self._region_stack.append(region.region_id)
        self._region_var_stack.append(rv)
        return region, rv

    def _close_region(self, region: Region, rv: _RegionVars) -> None:
        self._region_stack.pop()
        self._region_var_stack.pop()
        region.declared_vars = frozenset(rv.declared)
        region.read_vars = frozenset(rv.read)
        region.written_vars = frozenset(rv.written)
        used = rv.read | rv.written
        region.global_vars = frozenset(used - rv.declared)
        if self._region_var_stack:
            self._region_var_stack[-1].declared.update(rv.declared)

    # ------------------------------------------------------------------
    # variable access
    # ------------------------------------------------------------------

    def _var_info(self, name: str, node: ast.AST) -> VarInfo:
        if name in self._local_ids:
            return self.symtab.variables[self._local_ids[name]]
        if name in self._global_ids and name not in self.sig.local_names:
            return self.symtab.variables[self._global_ids[name]]
        raise FrontendError.at(
            node, f"undefined variable {name!r}", self.filename
        )

    def _scalar_memref(self, info: VarInfo):
        if info.kind == "global":
            return ("g", self.module.global_offsets[info.var_id])
        return ("f", self.func.frame_slots[info.var_id])

    def _load_scalar(self, info: VarInfo, line: int) -> Operand:
        dest = self._new_reg()
        load = Instr(
            Opcode.LOAD,
            dest=dest,
            a=self._scalar_memref(info),
            line=line,
            var=info.name,
            var_id=info.var_id,
        )
        self._new_op_id(load)
        self._emit(load)
        self._record_read(info.var_id)
        return ("r", dest)

    def _store_scalar(self, info: VarInfo, line: int, value: Operand):
        if info.kind == "local" and info.var_id not in self._declared_ids:
            # Python locals are function-scoped; the region of the
            # lexically-first assignment is the declaration region, which
            # is what makes loop-body temporaries privatizable.
            self._declared_ids.add(info.var_id)
            self._record_decl(info.var_id)
        store = Instr(
            Opcode.STORE,
            a=self._scalar_memref(info),
            b=value,
            line=line,
            var=info.name,
            var_id=info.var_id,
        )
        self._new_op_id(store)
        self._emit(store)
        self._record_write(info.var_id)

    def _array_base(self, info: VarInfo, node: ast.AST) -> Operand:
        if info.kind == "param":
            index = [p.var_id for p in self.func.params].index(info.var_id)
            return ("r", self.func.param_regs[index])
        if info.kind == "global":
            return ("i", self.module.global_offsets[info.var_id])
        raise FrontendError.at(  # unreachable: locals are never arrays
            node, f"{info.name!r} is not an array", self.filename
        )

    def _element_memref(self, info: VarInfo, idx: Operand, line: int):
        if info.kind == "global" and idx[0] == "i":
            return ("g", self.module.global_offsets[info.var_id] + idx[1])
        base = self._array_base(info, None)
        dest = self._new_reg()
        space = "g" if base[0] == "i" else "r"
        self._emit(
            Instr(Opcode.ADDR, dest=dest, a=space, b=base[1], c=idx, line=line)
        )
        return ("a", dest)

    def _subscript_parts(self, node: ast.Subscript):
        """(VarInfo, element memref) for ``name[index]``."""
        base = node.value
        if not isinstance(base, ast.Name):
            raise unsupported(
                node, "subscript of a non-name expression", self.filename
            )
        info = self._var_info(base.id, base)
        if not info.is_array:
            raise FrontendError.at(
                node, f"{base.id!r} is not an array", self.filename
            )
        idx = self._expr(node.slice)
        return info, self._element_memref(info, idx, node.lineno)

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------

    def _lower_function(self, node: ast.FunctionDef) -> None:
        finfo = self.symtab.functions[node.name]
        sig = self.engine.sigs[node.name]
        func = Function(node.name, finfo.params, finfo.return_type)
        func.start_line = node.lineno
        func.end_line = node.end_lineno or node.lineno
        self.module.functions[node.name] = func
        self.func = func
        self.sig = sig
        self._loop_stack = []
        self._declared_ids = set()
        self._local_ids = {
            p.name: p.var_id for p in finfo.params
        }
        self._local_ids.update(
            {v.name: v.var_id for v in finfo.local_vars}
        )

        region, rv = self._open_region(
            "func", func.start_line, func.end_line
        )
        func.region_id = region.region_id

        # Frame layout: scalar params and all locals get slots; array
        # params get an incoming base-address register (MiniC contract).
        func.n_regs = len(finfo.params)
        offset = 0
        for i, pinfo in enumerate(finfo.params):
            if pinfo.is_array:
                func.param_regs.append(i)
            else:
                func.param_regs.append(None)
                func.frame_slots[pinfo.var_id] = offset
                offset += 1
        for linfo in finfo.local_vars:
            func.frame_slots[linfo.var_id] = offset
            offset += linfo.size
        func.frame_size = offset

        self._start_block()
        # Prologue: spill scalar arguments into their frame slots
        # (instrumented writes, as in the MiniC lowering).
        for i, pinfo in enumerate(finfo.params):
            if not pinfo.is_array:
                store = Instr(
                    Opcode.STORE,
                    a=("f", func.frame_slots[pinfo.var_id]),
                    b=("r", i),
                    line=pinfo.decl_line,
                    var=pinfo.name,
                    var_id=pinfo.var_id,
                )
                self._new_op_id(store)
                self._emit(store)
                self._record_write(pinfo.var_id)
            self._record_decl(pinfo.var_id)

        for stmt in node.body:
            self.visit(stmt)

        if self.block.terminator is None:
            self._emit(Instr(Opcode.RET, a=None, line=func.end_line))

        self._close_region(region, rv)
        func.finalize()
        self.func = None
        self.sig = None
        self.block = None

    def _lower_driver(self) -> None:
        driver = self.driver
        func = Function(driver.name, [], "int")
        self.module.functions[driver.name] = func
        self.func = func
        self._loop_stack = []
        region, rv = self._open_region("func", 0, 0)
        func.region_id = region.region_id
        self._start_block()
        dest = self._new_reg()
        self._emit(
            Instr(
                Opcode.CALL,
                dest=dest,
                a=driver.entry,
                b=list(self._driver_operands),
            )
        )
        self._emit(Instr(Opcode.RET, a=("r", dest)))
        self._close_region(region, rv)
        func.finalize()
        self.func = None
        self.block = None

    # ------------------------------------------------------------------
    # statements (NodeVisitor dispatch)
    # ------------------------------------------------------------------

    def generic_visit(self, node):
        raise unsupported(
            node,
            type(node).__name__.lower(),
            self.filename,
            hint="outside the lowered Python subset",
        )

    def visit_Pass(self, node):
        return None

    def visit_Global(self, node):
        return None  # scoping already resolved during inference

    def visit_Expr(self, node):
        value = node.value
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return None  # docstring
        if isinstance(value, ast.Call):
            self._call(value, want_value=False)
            return None
        raise unsupported(
            node, "expression statement without effect", self.filename
        )

    def visit_Assign(self, node):
        if len(node.targets) != 1:
            raise unsupported(
                node, "chained assignment (x = y = ...)", self.filename
            )
        target = node.targets[0]
        if array_literal_spec(node.value) is not None or isinstance(
            node.value, (ast.List, ast.ListComp)
        ):
            raise unsupported(
                node,
                "list construction inside a function",
                self.filename,
                hint="declare arrays at module level or pass them as "
                "parameters",
            )
        value = self._expr(node.value)  # Python order: RHS first
        if isinstance(target, ast.Name):
            info = self._var_info(target.id, target)
            if info.is_array:
                raise unsupported(
                    node,
                    "rebinding an array variable",
                    self.filename,
                )
            self._store_scalar(info, node.lineno, value)
        elif isinstance(target, ast.Subscript):
            info, memref = self._subscript_parts(target)
            store = Instr(
                Opcode.STORE,
                a=memref,
                b=value,
                line=node.lineno,
                var=info.name,
                var_id=info.var_id,
            )
            self._new_op_id(store)
            self._emit(store)
            self._record_write(info.var_id)
        else:
            raise unsupported(node, "assignment target", self.filename)

    def visit_AnnAssign(self, node):
        if not isinstance(node.target, ast.Name):
            raise unsupported(
                node, "annotated non-name target", self.filename
            )
        if node.value is None:
            return None  # bare `x: int` declares nothing in MIR
        value = self._expr(node.value)
        info = self._var_info(node.target.id, node.target)
        self._store_scalar(info, node.lineno, value)

    def visit_AugAssign(self, node):
        op = BIN_OP_MAP.get(type(node.op))
        if op is None:
            raise unsupported(
                node,
                f"augmented operator {type(node.op).__name__}",
                self.filename,
            )
        target = node.target
        if isinstance(target, ast.Name):
            info = self._var_info(target.id, target)
            current = self._load_scalar(info, node.lineno)
            rhs = self._expr(node.value)
            value = self._binop(op, current, rhs, node.lineno)
            self._store_scalar(info, node.lineno, value)
        elif isinstance(target, ast.Subscript):
            # evaluate the element address once (CPython semantics)
            info, memref = self._subscript_parts(target)
            dest = self._new_reg()
            load = Instr(
                Opcode.LOAD,
                dest=dest,
                a=memref,
                line=node.lineno,
                var=info.name,
                var_id=info.var_id,
            )
            self._new_op_id(load)
            self._emit(load)
            self._record_read(info.var_id)
            rhs = self._expr(node.value)
            value = self._binop(op, ("r", dest), rhs, node.lineno)
            store = Instr(
                Opcode.STORE,
                a=memref,
                b=value,
                line=node.lineno,
                var=info.name,
                var_id=info.var_id,
            )
            self._new_op_id(store)
            self._emit(store)
            self._record_write(info.var_id)
        else:
            raise unsupported(
                node, "augmented assignment target", self.filename
            )

    def visit_If(self, node):
        end_line = node.end_lineno or node.lineno
        region, rv = self._open_region("branch", node.lineno, end_line)
        self._emit(Instr(Opcode.ENTER, a=region.region_id, line=node.lineno))
        cond = self._expr(node.test)
        then_block = self.func.new_block()
        merge_block = self.func.new_block()
        if node.orelse:
            else_block = self.func.new_block()
            self._emit(
                Instr(Opcode.BR, a=cond, b=then_block.label,
                      c=else_block.label)
            )
        else:
            self._emit(
                Instr(Opcode.BR, a=cond, b=then_block.label,
                      c=merge_block.label)
            )
        self.block = then_block
        for inner in node.body:
            self.visit(inner)
        if self.block.terminator is None:
            self._emit(Instr(Opcode.JMP, a=merge_block.label))
        if node.orelse:
            self.block = else_block
            for inner in node.orelse:
                self.visit(inner)
            if self.block.terminator is None:
                self._emit(Instr(Opcode.JMP, a=merge_block.label))
        self.block = merge_block
        self._emit(Instr(Opcode.EXIT, a=region.region_id, line=end_line))
        self._close_region(region, rv)

    def visit_While(self, node):
        if node.orelse:
            raise unsupported(node, "while/else", self.filename)
        end_line = node.end_lineno or node.lineno
        region, rv = self._open_region("loop", node.lineno, end_line)
        region.iter_var = None
        self._emit(Instr(Opcode.ENTER, a=region.region_id, line=node.lineno))
        header = self._jump_to_new_block()
        body_block = self.func.new_block()
        latch_block = self.func.new_block()
        exit_block = self.func.new_block()
        cond = self._expr(node.test)
        self._emit(
            Instr(Opcode.BR, a=cond, b=body_block.label, c=exit_block.label)
        )
        self._loop_stack.append(
            _LoopContext(latch_block.label, exit_block.label)
        )
        self.block = body_block
        for inner in node.body:
            self.visit(inner)
        if self.block.terminator is None:
            self._emit(Instr(Opcode.JMP, a=latch_block.label))
        self.block = latch_block
        self._emit(Instr(Opcode.ITER, a=region.region_id, line=node.lineno))
        self._emit(Instr(Opcode.JMP, a=header.label))
        self._loop_stack.pop()
        self.block = exit_block
        self._emit(Instr(Opcode.EXIT, a=region.region_id, line=end_line))
        self._close_region(region, rv)

    def visit_For(self, node):
        if node.orelse:
            raise unsupported(node, "for/else", self.filename)
        if not isinstance(node.target, ast.Name):
            raise unsupported(
                node, "tuple unpacking in a for target", self.filename
            )
        call = node.iter
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "range"
        ):
            raise unsupported(
                node,
                "iteration over a non-range iterable",
                self.filename,
                hint="only `for i in range(...)` loops lower to MIR",
            )
        args = call.args
        if len(args) == 1:
            start_node, stop_node, step_node = None, args[0], None
        elif len(args) == 2:
            start_node, stop_node, step_node = args[0], args[1], None
        else:
            start_node, stop_node, step_node = args
        step = 1
        if step_node is not None:
            step = const_eval(step_node, self.const_env)
            if not isinstance(step, int) or step == 0:
                raise FrontendError.at(
                    step_node,
                    "range() step must be a nonzero compile-time constant",
                    self.filename,
                )

        # CPython evaluates range() bounds exactly once, before the first
        # iteration — lower them *outside* the loop region.  Registers are
        # stable across iterations (and are copied into DOALL chunk
        # frames), so the header can re-test against them purely.
        start_op = (
            ("i", 0) if start_node is None else self._expr(start_node)
        )
        stop_op = self._expr(stop_node)

        end_line = node.end_lineno or node.lineno
        region, rv = self._open_region("loop", node.lineno, end_line)
        info = self._var_info(node.target.id, node.target)
        region.iter_var = info.var_id
        region.iter_var_written_in_body = any(
            writes_name(s, node.target.id) for s in node.body
        )
        self._emit(Instr(Opcode.ENTER, a=region.region_id, line=node.lineno))
        # canonical counted shape: init store directly after ENTER, then
        # the jump into the pure header (see transforms._loop_shape)
        self._store_scalar(info, node.lineno, start_op)
        header = self._jump_to_new_block()
        body_block = self.func.new_block()
        latch_block = self.func.new_block()
        exit_block = self.func.new_block()
        current = self._load_scalar(info, node.lineno)
        cond = self._binop(
            "<" if step > 0 else ">", current, stop_op, node.lineno
        )
        self._emit(
            Instr(Opcode.BR, a=cond, b=body_block.label, c=exit_block.label)
        )
        self._loop_stack.append(
            _LoopContext(latch_block.label, exit_block.label)
        )
        self.block = body_block
        for inner in node.body:
            self.visit(inner)
        if self.block.terminator is None:
            self._emit(Instr(Opcode.JMP, a=latch_block.label))
        self.block = latch_block
        current = self._load_scalar(info, node.lineno)
        nxt = self._binop("+", current, ("i", step), node.lineno)
        self._store_scalar(info, node.lineno, nxt)
        self._emit(Instr(Opcode.ITER, a=region.region_id, line=node.lineno))
        self._emit(Instr(Opcode.JMP, a=header.label))
        self._loop_stack.pop()
        self.block = exit_block
        self._emit(Instr(Opcode.EXIT, a=region.region_id, line=end_line))
        self._close_region(region, rv)

    def visit_Return(self, node):
        operand = (
            self._expr(node.value) if node.value is not None else None
        )
        self._emit(Instr(Opcode.RET, a=operand, line=node.lineno))
        self._start_block()  # dead block for any trailing code

    def visit_Break(self, node):
        if not self._loop_stack:
            raise FrontendError.at(
                node, "break outside a loop", self.filename
            )
        self._emit(Instr(Opcode.JMP, a=self._loop_stack[-1].exit_label))
        self._start_block()

    def visit_Continue(self, node):
        if not self._loop_stack:
            raise FrontendError.at(
                node, "continue outside a loop", self.filename
            )
        self._emit(Instr(Opcode.JMP, a=self._loop_stack[-1].latch_label))
        self._start_block()

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _binop(self, op: str, left: Operand, right: Operand, line: int):
        if left[0] == "i" and right[0] == "i":
            try:
                return ("i", BINOPS[op](left[1], right[1]))
            except (ZeroDivisionError, ValueError, OverflowError):
                pass  # fold nothing; fail at runtime like CPython would
        dest = self._new_reg()
        self._emit(
            Instr(Opcode.BIN, dest=dest, a=op, b=left, c=right, line=line)
        )
        return ("r", dest)

    def _expr(self, node: ast.expr) -> Operand:
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool):
                return ("i", int(value))
            if isinstance(value, (int, float)):
                return ("i", value)
            raise unsupported(
                node, f"{type(value).__name__} literal", self.filename
            )
        if isinstance(node, ast.Name):
            info = self._var_info(node.id, node)
            if info.is_array:
                return self._array_base(info, node)
            return self._load_scalar(info, node.lineno)
        if isinstance(node, ast.Subscript):
            info, memref = self._subscript_parts(node)
            dest = self._new_reg()
            load = Instr(
                Opcode.LOAD,
                dest=dest,
                a=memref,
                line=node.lineno,
                var=info.name,
                var_id=info.var_id,
            )
            self._new_op_id(load)
            self._emit(load)
            self._record_read(info.var_id)
            return ("r", dest)
        if isinstance(node, ast.BinOp):
            op = BIN_OP_MAP.get(type(node.op))
            if op is None:
                raise unsupported(
                    node,
                    f"operator {type(node.op).__name__}",
                    self.filename,
                )
            left = self._expr(node.left)
            right = self._expr(node.right)
            return self._binop(op, left, right, node.lineno)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.UAdd):
                return self._expr(node.operand)
            op = {ast.USub: "-", ast.Not: "!", ast.Invert: "~"}.get(
                type(node.op)
            )
            if op is None:
                raise unsupported(
                    node,
                    f"operator {type(node.op).__name__}",
                    self.filename,
                )
            operand = self._expr(node.operand)
            if operand[0] == "i":
                return ("i", UNOPS[op](operand[1]))
            dest = self._new_reg()
            self._emit(
                Instr(Opcode.UN, dest=dest, a=op, b=operand,
                      line=node.lineno)
            )
            return ("r", dest)
        if isinstance(node, ast.BoolOp):
            return self._bool_op(node)
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise unsupported(
                    node,
                    "chained comparison",
                    self.filename,
                    hint="split `a < b < c` into `a < b and b < c`",
                )
            op = CMP_OP_MAP.get(type(node.ops[0]))
            if op is None:
                raise unsupported(
                    node,
                    f"comparison {type(node.ops[0]).__name__}",
                    self.filename,
                )
            left = self._expr(node.left)
            right = self._expr(node.comparators[0])
            return self._binop(op, left, right, node.lineno)
        if isinstance(node, ast.Call):
            return self._call(node, want_value=True)
        raise unsupported(node, type(node).__name__, self.filename)

    def _bool_op(self, node: ast.BoolOp) -> Operand:
        """Short-circuit ``and``/``or`` preserving operand values.

        Python returns the deciding operand itself (``0.0 or 3`` is 3,
        ``2 and 5`` is 5) — each evaluated operand is copied into the
        result register before the truthiness branch.
        """
        result = self._new_reg()
        is_and = isinstance(node.op, ast.And)
        merge = self.func.new_block()
        for i, value_node in enumerate(node.values):
            value = self._expr(value_node)
            # value-preserving copy into the shared result register
            self._emit(
                Instr(Opcode.BIN, dest=result, a="+", b=value, c=("i", 0),
                      line=node.lineno)
            )
            if i < len(node.values) - 1:
                nxt = self.func.new_block()
                if is_and:
                    self._emit(
                        Instr(Opcode.BR, a=("r", result), b=nxt.label,
                              c=merge.label)
                    )
                else:
                    self._emit(
                        Instr(Opcode.BR, a=("r", result), b=merge.label,
                              c=nxt.label)
                    )
                self.block = nxt
        self._emit(Instr(Opcode.JMP, a=merge.label))
        self.block = merge
        return ("r", result)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _call(self, node: ast.Call, want_value: bool = True) -> Operand:
        if node.keywords:
            raise unsupported(node, "keyword arguments", self.filename)
        func = node.func
        line = node.lineno
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "math"
                and func.attr in MATH_BUILTINS
            ):
                builtin, _, _ = MATH_BUILTINS[func.attr]
                args = [self._expr(arg) for arg in node.args]
                dest = self._new_reg() if want_value else None
                self._emit(
                    Instr(Opcode.CALLB, dest=dest, a=builtin, b=args,
                          line=line)
                )
                return ("r", dest) if dest is not None else ("i", 0)
            raise unsupported(
                node, "method / attribute call", self.filename,
                hint="only math.<fn> attribute calls are lowered",
            )
        if not isinstance(func, ast.Name):
            raise unsupported(node, "indirect call", self.filename)
        name = func.id
        if name in self.symtab.functions:
            args = [self._call_arg(arg) for arg in node.args]
            dest = self._new_reg() if want_value else None
            self._emit(
                Instr(Opcode.CALL, dest=dest, a=name, b=args, line=line)
            )
            return ("r", dest) if dest is not None else ("i", 0)
        if name in PY_BUILTINS:
            return self._py_builtin(node, name, want_value)
        raise FrontendError.at(
            node,
            f"call to unknown function {name!r} (not a lowered function, "
            "not a supported builtin)",
            self.filename,
        )

    def _call_arg(self, arg: ast.expr) -> Operand:
        """Arrays pass by base address; everything else by value."""
        if isinstance(arg, ast.Name):
            info = self._var_info(arg.id, arg)
            if info.is_array:
                return self._array_base(info, arg)
        return self._expr(arg)

    def _py_builtin(self, node: ast.Call, name: str, want_value: bool):
        line = node.lineno
        if name == "range":
            raise FrontendError.at(
                node,
                "range() is only supported as a for-loop iterator",
                self.filename,
            )
        if name == "len":
            arg = node.args[0] if len(node.args) == 1 else None
            if not isinstance(arg, ast.Name):
                raise unsupported(
                    node, "len() of a non-name expression", self.filename
                )
            info = self._var_info(arg.id, arg)
            if not info.is_array or info.array_size is None:
                raise FrontendError.at(
                    node,
                    f"len({arg.id}) needs a statically sized array "
                    "(lengths flow from module-level sizes and analyze() "
                    "arguments)",
                    self.filename,
                )
            return ("i", info.array_size)
        if name == "print":
            args = [self._expr(arg) for arg in node.args]
            dest = self._new_reg() if want_value else None
            self._emit(
                Instr(Opcode.CALLB, dest=dest, a="print", b=args, line=line)
            )
            return ("r", dest) if dest is not None else ("i", 0)
        if name == "bool":
            value = self._expr(node.args[0])
            return self._binop("!=", value, ("i", 0), line)
        if name in ("int", "float"):
            builtin = "__int" if name == "int" else "__float"
            value = self._expr(node.args[0])
            dest = self._new_reg()
            self._emit(
                Instr(Opcode.CALLB, dest=dest, a=builtin, b=[value],
                      line=line)
            )
            return ("r", dest)
        if name == "abs":
            value = self._expr(node.args[0])
            dest = self._new_reg()
            self._emit(
                Instr(Opcode.CALLB, dest=dest, a="abs", b=[value], line=line)
            )
            return ("r", dest)
        if name == "pow":
            left = self._expr(node.args[0])
            right = self._expr(node.args[1])
            return self._binop("**", left, right, line)
        if name in ("min", "max"):
            result = self._expr(node.args[0])
            for arg in node.args[1:]:  # n-ary folds to binary builtins
                value = self._expr(arg)
                dest = self._new_reg()
                self._emit(
                    Instr(Opcode.CALLB, dest=dest, a=name,
                          b=[result, value], line=line)
                )
                result = ("r", dest)
            return result
        raise unsupported(node, f"builtin {name}", self.filename)


# ---------------------------------------------------------------------------
# public entry points
# ---------------------------------------------------------------------------


def _is_main_guard(test: ast.expr) -> bool:
    """Matches ``__name__ == "__main__"`` (either operand order)."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)):
        return False
    operands = [test.left] + test.comparators
    return any(
        isinstance(o, ast.Name) and o.id == "__name__" for o in operands
    )


def compile_python_source(
    source: str,
    name: str = "module",
    filename: str = "<python>",
    first_line: int = 1,
    driver: Optional[DriverSpec] = None,
) -> Module:
    """Parse + infer + lower Python source text to a finalized Module.

    ``first_line`` shifts all AST line numbers so diagnostics and the
    instrumented MIR point at the original file position when ``source``
    is an extracted function body (the :func:`repro.analyze` path).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise FrontendError(
            f"syntax error: {exc.msg}",
            filename=filename,
            line=(exc.lineno or 1) + first_line - 1,
            col=exc.offset,
        ) from None
    if first_line != 1:
        ast.increment_lineno(tree, first_line - 1)
    builder = MirBuilder(
        tree, source, name=name, filename=filename, driver=driver
    )
    return builder.lower()
