"""The user-facing frontend surface: ``repro.analyze`` / ``@repro.candidate``.

:func:`analyze` turns a *live* Python function object into a full
discovery run: it pulls the function's source with :mod:`inspect`, walks
its call graph through ``fn.__globals__`` to pick up lowered helper
functions and module-level constants/arrays, lowers everything to MIR
with a synthetic ``__analyze__`` driver that materializes the call
arguments, and runs the :class:`~repro.engine.core.DiscoveryEngine`.  The
returned :class:`~repro.engine.artifacts.DiscoveryResult` carries loop
and suggestion line numbers that point at the *original Python file* —
``inspect.getsourcelines`` gives the extraction offset and the lowering
shifts every AST node by it.

>>> import repro
>>> @repro.candidate
... def matmul(a: list, b: list, c: list, n: int) -> float:
...     for i in range(n):
...         for j in range(n):
...             acc = 0.0
...             for k in range(n):
...                 acc += a[i * n + k] * b[k * n + j]
...             c[i * n + j] = acc
...     return c[0]
>>> result = repro.analyze(
...     matmul, args=([1.0] * 16, [2.0] * 16, [0.0] * 16, 4)
... )  # doctest: +SKIP
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import types
from typing import Optional

from repro.frontend.errors import FrontendError
from repro.frontend.lowering import DriverSpec, MirBuilder

_MISSING = object()


def candidate(fn=None, **defaults):
    """Mark a function as a discovery candidate.

    Purely declarative: it tags the function (``__repro_candidate__``
    holds any keyword defaults, later merged into the analyze config) and
    returns it unchanged, so decorated code keeps running as plain
    Python.  Usable bare (``@repro.candidate``) or with config defaults
    (``@repro.candidate(n_threads=8)``).
    """

    def mark(f):
        f.__repro_candidate__ = dict(defaults)
        return f

    if fn is None:
        return mark
    return mark(fn)


def analyze(fn, args=(), config=None, **overrides):
    """Run the discovery pipeline on a live Python function.

    ``args`` are the values the synthesized driver calls ``fn`` with:
    ints/floats/bools pass by value, flat numeric lists become
    initialized global arrays passed by base address.  ``config`` is an
    optional :class:`~repro.engine.config.DiscoveryConfig` base;
    ``**overrides`` (and any ``@candidate`` defaults) are applied on top.
    Returns a :class:`~repro.engine.artifacts.DiscoveryResult`.
    """
    from repro.engine.config import DiscoveryConfig
    from repro.engine.core import DiscoveryEngine

    if not inspect.isfunction(fn):
        raise TypeError(
            "analyze() needs a plain Python function "
            f"(got {type(fn).__name__})"
        )
    filename = inspect.getsourcefile(fn) or "<python>"
    first_line = inspect.getsourcelines(fn)[1]
    tree, source = _closure_tree(fn, filename)
    module = MirBuilder(
        tree,
        source,
        name=f"analyze:{fn.__name__}",
        filename=filename,
        driver=DriverSpec(entry=fn.__name__, args=tuple(args)),
    ).lower()

    settings = dict(getattr(fn, "__repro_candidate__", None) or {})
    settings.update(overrides)
    settings.update(
        name=f"analyze:{fn.__name__}",
        entry="__analyze__",
        frontend="python",
        source_path=filename,
        source_firstline=first_line,
    )
    base = config if config is not None else DiscoveryConfig()
    engine = DiscoveryEngine(module, base.replace(**settings))
    return engine.run()


# ---------------------------------------------------------------------------
# call-graph closure extraction
# ---------------------------------------------------------------------------


def _parse_function(fn) -> ast.FunctionDef:
    """The function's AST with line numbers shifted to the original file."""
    try:
        lines, first = inspect.getsourcelines(fn)
    except (OSError, TypeError) as exc:
        raise FrontendError(
            f"cannot retrieve source for {fn.__qualname__!r}: {exc} "
            "(analyze() needs file-backed functions)",
        ) from None
    source = textwrap.dedent("".join(lines))
    node = ast.parse(source).body[0]
    if not isinstance(node, ast.FunctionDef):
        raise FrontendError(
            f"{fn.__qualname__!r} is not a plain function definition",
            filename=inspect.getsourcefile(fn) or "<python>",
            line=first,
        )
    ast.increment_lineno(node, first - 1)
    node.decorator_list = []  # @repro.candidate etc. aren't lowered
    return node


def _closure_tree(fn, filename: str):
    """(module AST, source text) covering ``fn`` and what it reaches.

    Walks free names through ``fn.__globals__``: plain functions with
    retrievable source join the lowered set (transitively); int/float/
    bool/flat-list globals become module-level declarations.  Unresolved
    names are left for inference to report with their source position.
    """
    fn_nodes: dict[str, ast.FunctionDef] = {}
    const_globals: dict[str, object] = {}

    def visit(f) -> None:
        node = _parse_function(f)
        fn_nodes[node.name] = node
        namespace = f.__globals__
        for sub in ast.walk(node):
            if not (
                isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
            ):
                continue
            name = sub.id
            if name in fn_nodes or name in const_globals:
                continue
            value = namespace.get(name, _MISSING)
            if value is _MISSING:
                continue
            if (
                isinstance(value, types.FunctionType)
                and value.__name__ == name
            ):
                visit(value)
            elif isinstance(value, bool):
                const_globals[name] = int(value)
            elif isinstance(value, (int, float)):
                const_globals[name] = value
            elif (
                isinstance(value, list)
                and value
                and all(isinstance(v, (int, float)) for v in value)
            ):
                const_globals[name] = [
                    int(v) if isinstance(v, bool) else v for v in value
                ]
            # anything else (modules, classes, strings): not lowered; a
            # real use inside the subset fails in inference with position

    visit(fn)

    body: list[ast.stmt] = []
    for name, value in const_globals.items():
        body.append(_global_assign(name, value))
    body.extend(fn_nodes.values())
    tree = ast.Module(body=body, type_ignores=[])
    ast.fix_missing_locations(tree)

    # keep the whole original file as the module source so line-numbered
    # output (reports, markers) indexes it correctly; fall back to the
    # function body alone for exec()-defined code
    try:
        source = inspect.getsource(inspect.getmodule(fn))
    except (OSError, TypeError):
        source = textwrap.dedent(
            "".join(inspect.getsourcelines(fn)[0])
        )
    return tree, source


def _global_assign(name: str, value) -> ast.stmt:
    """``name = <value>`` as an AST statement (uniform lists compressed)."""
    if isinstance(value, list):
        if all(v == value[0] for v in value):
            text = f"{name} = [{value[0]!r}] * {len(value)}"
        else:
            text = f"{name} = {value!r}"
    else:
        text = f"{name} = {value!r}"
    return ast.parse(text).body[0]
