"""Source-mapped frontend diagnostics.

Everything the Python frontend rejects — constructs outside the typed
subset, type conflicts, unresolvable globals — raises
:class:`FrontendError` carrying the original file and line, so a user
running :func:`repro.analyze` on a function buried in a large module gets
``myfile.py:123: ...`` pointing at the offending statement, not at the
lowered IR.
"""

from __future__ import annotations

import ast
from typing import Optional


class FrontendError(Exception):
    """A Python construct (or type) outside the supported subset.

    Carries ``filename``/``line``/``col`` so tools can surface the exact
    source position; ``str(err)`` renders ``file:line: message``.
    """

    def __init__(
        self,
        message: str,
        *,
        filename: str = "<python>",
        line: int = 0,
        col: Optional[int] = None,
    ) -> None:
        self.filename = filename
        self.line = line
        self.col = col
        self.message = message
        location = f"{filename}:{line}"
        if col is not None:
            location += f":{col}"
        super().__init__(f"{location}: {message}")

    @classmethod
    def at(
        cls, node: ast.AST, message: str, filename: str = "<python>"
    ) -> "FrontendError":
        """An error anchored at an AST node's source position."""
        return cls(
            message,
            filename=filename,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", None),
        )


def unsupported(
    node: ast.AST, what: str, filename: str = "<python>", hint: str = ""
) -> FrontendError:
    """The standard "outside the subset" diagnostic for a node."""
    message = f"unsupported construct: {what}"
    if hint:
        message += f" ({hint})"
    return FrontendError.at(node, message, filename)
