"""Unification-based type inference for the Python frontend.

The lowering needs three static facts about every variable before it can
assign memory homes and pick op variants:

* scalar or array — decides the address mode (frame/global slot vs. the
  flat computed-address loads/stores the shadow memory expects);
* the numeric kind (``int`` / ``float``) — decides initial element values
  and is reported in diagnostics;
* the array length, where it is statically known — backs ``len()`` and
  the global-segment layout.

Types are inferred by unification over mutable *type cells* (a union-find
forest, the classic engine shape — cf. monty's ``InferenceEngine``): every
variable, parameter, and return slot owns a cell; annotations and literals
seed cells with concrete kinds; assignments, calls, and operators merge
cells.  Two refinements keep the engine faithful to Python's numerics:

* **promotion** — merging an ``int`` cell with a ``float`` cell yields
  ``float`` (mirroring ``x = 0`` followed by ``x = x + 0.5``) instead of a
  unification failure.  Cells that *must* stay integral (array indices,
  ``range`` bounds, shift/bitwise operands) carry a strict flag, and
  promoting one raises a source-mapped :class:`FrontendError`;
* **joins** — arithmetic results (``a + b``) depend on operand kinds that
  may resolve later, so they are deferred constraints solved to a fixpoint
  in :meth:`InferenceEngine.finish`; still-unknown numerics then default
  to ``int``.

Everything outside the subset (strings, dicts, nested lists, arrays used
as scalars, fractional indices) fails here with a ``file:line`` diagnostic
rather than surfacing as a lowering bug.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.frontend.errors import FrontendError, unsupported

#: sentinel for an array whose call sites disagree on the length
SIZE_AMBIGUOUS = -1

#: Python-level builtins the frontend lowers (name -> result rule; the
#: lowering holds the operand mapping).  ``join`` means "same kind as the
#: operands", solved like an arithmetic join.
PY_BUILTINS = {
    "abs": "join",
    "min": "join",
    "max": "join",
    "int": "int",
    "bool": "int",
    "float": "float",
    "len": "int",
    "print": "int",
    "pow": "join",
    "range": "int",  # only legal as a for-loop iterator; checked in lowering
}

#: ``math.<name>`` attribute calls -> (vm builtin, arity, result kind)
MATH_BUILTINS = {
    "sqrt": ("sqrt", 1, "float"),
    "floor": ("floor", 1, "int"),
    "ceil": ("ceil", 1, "int"),
    "exp": ("exp", 1, "float"),
    "log": ("log", 1, "float"),
    "sin": ("sin", 1, "float"),
    "cos": ("cos", 1, "float"),
    "pow": ("pow", 2, "float"),
    "fabs": ("abs", 1, "float"),
}


class TypeCell:
    """One union-find node: an inferred type, possibly still unknown."""

    __slots__ = ("parent", "rank", "kind", "elem", "size", "strict_int")

    def __init__(
        self,
        kind: str = "unknown",
        elem: Optional["TypeCell"] = None,
        size: Optional[int] = None,
    ) -> None:
        self.parent: Optional[TypeCell] = None
        self.rank = 0
        #: 'unknown' | 'int' | 'float' | 'array'
        self.kind = kind
        self.elem = elem
        self.size = size
        #: int-only position (array index, range bound, shift amount):
        #: promotion to float is a type error instead of a widening
        self.strict_int = False


@dataclass
class FuncSig:
    """Inference-time signature of one lowered Python function."""

    name: str
    node: ast.FunctionDef
    filename: str
    params: list[TypeCell]
    ret: TypeCell
    #: names local to the function (assigned somewhere, not ``global``)
    local_names: set = field(default_factory=set)
    #: names declared ``global`` inside the body
    global_names: set = field(default_factory=set)
    #: name -> cell for locals and params
    cells: dict = field(default_factory=dict)


def assigned_names(node: ast.AST) -> set:
    """Names bound by assignments / for-targets anywhere under ``node``.

    This is Python's locality rule: a name assigned anywhere in a function
    body is local throughout (unless declared ``global``).
    """
    names: set = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(sub.target, ast.Name):
                names.add(sub.target.id)
        elif isinstance(sub, ast.For):
            if isinstance(sub.target, ast.Name):
                names.add(sub.target.id)
    return names


def writes_name(node: ast.AST, name: str) -> bool:
    """Does any statement under ``node`` assign ``name``?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == name for t in sub.targets
            ):
                return True
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(sub.target, ast.Name) and sub.target.id == name:
                return True
        elif isinstance(sub, ast.For):
            if isinstance(sub.target, ast.Name) and sub.target.id == name:
                return True
    return False


class InferenceEngine:
    """Whole-program unification over the lowered function set."""

    def __init__(
        self, filename: str = "<python>", const_env: Optional[dict] = None
    ) -> None:
        self.filename = filename
        #: module-level constant values (``N = 16``) for static array sizing
        self.const_env = const_env or {}
        self.sigs: dict[str, FuncSig] = {}
        self.global_cells: dict[str, TypeCell] = {}
        #: deferred arithmetic joins: (result, left, right, node, filename)
        self._joins: list = []
        #: operands that must end up numeric (not arrays): (cell, node, fn)
        self._numeric_uses: list = []
        self._finished = False

    # ------------------------------------------------------------------
    # cells / union-find
    # ------------------------------------------------------------------

    def fresh(self, kind: str = "unknown") -> TypeCell:
        return TypeCell(kind)

    def array_cell(
        self, elem_kind: str = "unknown", size: Optional[int] = None
    ) -> TypeCell:
        return TypeCell("array", TypeCell(elem_kind), size)

    def find(self, cell: TypeCell) -> TypeCell:
        root = cell
        while root.parent is not None:
            root = root.parent
        while cell.parent is not None:  # path compression
            cell.parent, cell = root, cell.parent
        return root

    def _fail(self, node, filename, message) -> FrontendError:
        if node is not None:
            return FrontendError.at(node, message, filename)
        return FrontendError(message, filename=filename)

    def unify(
        self,
        a: TypeCell,
        b: TypeCell,
        node: Optional[ast.AST] = None,
        filename: Optional[str] = None,
    ) -> TypeCell:
        """Merge two cells; numeric kinds promote (int ∪ float = float)."""
        filename = filename or self.filename
        a, b = self.find(a), self.find(b)
        if a is b:
            return a
        # order so the higher-rank root wins (cheap balancing)
        if a.rank < b.rank:
            a, b = b, a
        kind = self._merged_kind(a, b, node, filename)
        if kind == "array":
            winner = a if a.kind == "array" else b
            other = b if winner is a else a
            if other.kind == "array":
                self.unify(winner.elem, other.elem, node, filename)
                winner.size = self._merged_size(winner.size, other.size)
            a_elem, a_size = winner.elem, winner.size
            b.parent = a
            a.kind, a.elem, a.size = "array", a_elem, a_size
        else:
            b.parent = a
            a.kind = kind
        a.strict_int = a.strict_int or b.strict_int
        if a.strict_int and a.kind == "float":
            raise self._fail(
                node, filename, "integer-only position holds a float value"
            )
        if a.rank == b.rank:
            a.rank += 1
        return a

    def _merged_kind(self, a, b, node, filename) -> str:
        ka, kb = a.kind, b.kind
        if ka == kb:
            return ka
        if ka == "unknown":
            return kb
        if kb == "unknown":
            return ka
        if {ka, kb} == {"int", "float"}:
            if a.strict_int or b.strict_int:
                raise self._fail(
                    node,
                    filename,
                    "integer-only position holds a float value",
                )
            return "float"
        raise self._fail(
            node,
            filename,
            f"type conflict: value used both as {ka} and as {kb} "
            "(arrays cannot mix with scalars in the lowered subset)",
        )

    @staticmethod
    def _merged_size(x: Optional[int], y: Optional[int]) -> Optional[int]:
        if x is None:
            return y
        if y is None:
            return x
        return x if x == y else SIZE_AMBIGUOUS

    def require_int(self, cell: TypeCell, node, filename=None) -> None:
        """Constrain a cell to a strictly-integral position."""
        root = self.find(cell)
        if root.kind == "float":
            raise self._fail(
                node,
                filename or self.filename,
                "integer-only position holds a float value",
            )
        if root.kind == "array":
            raise self._fail(
                node,
                filename or self.filename,
                "array used where an integer is required",
            )
        root.strict_int = True
        if root.kind == "unknown":
            root.kind = "int"

    def require_numeric(self, cell: TypeCell, node, filename=None) -> None:
        """Defer an "is a scalar number" check to :meth:`finish`."""
        self._numeric_uses.append((cell, node, filename or self.filename))

    def join(self, left: TypeCell, right: TypeCell, node, filename=None):
        """Result cell of an arithmetic combination of two operands."""
        filename = filename or self.filename
        self.require_numeric(left, node, filename)
        self.require_numeric(right, node, filename)
        result = self.fresh()
        self._joins.append((result, left, right, node, filename))
        return result

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------

    def finish(self) -> None:
        """Solve deferred joins to a fixpoint, default unknowns to int."""
        pending = list(self._joins)
        changed = True
        while changed and pending:
            changed = False
            remaining = []
            for item in pending:
                result, left, right, node, filename = item
                lk = self.find(left).kind
                rk = self.find(right).kind
                if "float" in (lk, rk):
                    self.unify(result, TypeCell("float"), node, filename)
                    changed = True
                elif lk == "int" and rk == "int":
                    self.unify(result, TypeCell("int"), node, filename)
                    changed = True
                else:
                    remaining.append(item)
            pending = remaining
        # operands that never resolved are ints; rerun the survivors once
        for result, left, right, node, filename in pending:
            self.unify(left, TypeCell("int"), node, filename)
            self.unify(right, TypeCell("int"), node, filename)
            self.unify(result, TypeCell("int"), node, filename)
        for cell, node, filename in self._numeric_uses:
            root = self.find(cell)
            if root.kind == "array":
                raise self._fail(
                    node,
                    filename,
                    "array used as a scalar value (whole-array arithmetic "
                    "is outside the lowered subset)",
                )
        self._finished = True

    def kind_of(self, cell: TypeCell) -> str:
        """Concrete kind after :meth:`finish`: 'int' | 'float' | 'array'."""
        root = self.find(cell)
        if root.kind == "unknown":
            return "int"
        return root.kind

    def elem_kind_of(self, cell: TypeCell) -> str:
        root = self.find(cell)
        if root.kind != "array" or root.elem is None:
            return "int"
        elem = self.find(root.elem)
        return "int" if elem.kind in ("unknown", "int") else elem.kind

    def size_of(self, cell: TypeCell) -> Optional[int]:
        """Statically-known length, or None (unknown / ambiguous)."""
        root = self.find(cell)
        if root.kind != "array":
            return None
        if root.size is None or root.size == SIZE_AMBIGUOUS:
            return None
        return root.size

    def describe(self, cell: TypeCell) -> str:
        root = self.find(cell)
        if root.kind == "array":
            elem = self.describe(root.elem) if root.elem else "unknown"
            size = "?" if root.size in (None, SIZE_AMBIGUOUS) else root.size
            return f"list[{elem}; {size}]"
        return root.kind

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------

    def annotation_cell(self, ann: ast.AST, filename: str) -> TypeCell:
        """Cell seeded from a parameter / variable annotation."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                parsed = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                raise FrontendError.at(
                    ann, f"unparsable annotation {ann.value!r}", filename
                )
            for sub in ast.walk(parsed):
                if hasattr(sub, "lineno"):
                    sub.lineno = ann.lineno
                    sub.col_offset = ann.col_offset
            return self.annotation_cell(parsed, filename)
        if isinstance(ann, ast.Name):
            if ann.id in ("int", "bool"):
                return TypeCell("int")
            if ann.id == "float":
                return TypeCell("float")
            if ann.id == "list":
                return self.array_cell()
            raise FrontendError.at(
                ann, f"unsupported annotation {ann.id!r}", filename
            )
        if (
            isinstance(ann, ast.Subscript)
            and isinstance(ann.value, ast.Name)
            and ann.value.id in ("list", "List")
        ):
            elem = self.annotation_cell(ann.slice, filename)
            root = self.find(elem)
            if root.kind == "array":
                raise FrontendError.at(
                    ann,
                    "nested list annotations are unsupported "
                    "(flatten to 1-D with computed indices)",
                    filename,
                )
            cell = self.array_cell()
            self.unify(self.find(cell).elem, elem, ann, filename)
            return cell
        raise FrontendError.at(
            ann, "unsupported annotation (use int, float, bool, list, "
            "or list[int]/list[float])", filename
        )

    def declare_function(
        self, node: ast.FunctionDef, filename: Optional[str] = None
    ) -> FuncSig:
        filename = filename or self.filename
        if node.name in self.sigs:
            raise FrontendError.at(
                node, f"duplicate function {node.name!r}", filename
            )
        args = node.args
        if (
            args.vararg
            or args.kwarg
            or args.kwonlyargs
            or args.posonlyargs
            or args.defaults
            or args.kw_defaults
        ):
            raise unsupported(
                node,
                "*args / **kwargs / keyword-only / default parameters",
                filename,
            )
        params = []
        for arg in args.args:
            cell = (
                self.annotation_cell(arg.annotation, filename)
                if arg.annotation is not None
                else self.fresh()
            )
            params.append(cell)
        sig = FuncSig(
            name=node.name,
            node=node,
            filename=filename,
            params=params,
            ret=self.fresh(),
        )
        if node.returns is not None and not (
            isinstance(node.returns, ast.Constant)
            and node.returns.value is None
        ):
            self.unify(
                sig.ret,
                self.annotation_cell(node.returns, filename),
                node,
                filename,
            )
        sig.global_names = {
            name
            for sub in ast.walk(node)
            if isinstance(sub, ast.Global)
            for name in sub.names
        }
        sig.local_names = assigned_names(node) - sig.global_names
        for arg, cell in zip(args.args, params):
            sig.local_names.discard(arg.arg)
            sig.cells[arg.arg] = cell
        for name in sig.local_names:
            sig.cells[name] = self.fresh()
        self.sigs[node.name] = sig
        return sig

    def declare_global(self, name: str, cell: TypeCell) -> TypeCell:
        self.global_cells[name] = cell
        return cell

    # ------------------------------------------------------------------
    # constraint generation (statements)
    # ------------------------------------------------------------------

    def infer_function(self, sig: FuncSig) -> None:
        for stmt in sig.node.body:
            self._stmt(stmt, sig)

    def _stmt(self, stmt: ast.stmt, sig: FuncSig) -> None:
        filename = sig.filename
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1:
                raise unsupported(
                    stmt, "chained assignment (x = y = ...)", filename
                )
            target = stmt.targets[0]
            value_cell = self._value_or_array(stmt.value, sig)
            self._assign_target(target, value_cell, sig)
        elif isinstance(stmt, ast.AnnAssign):
            if not isinstance(stmt.target, ast.Name):
                raise unsupported(stmt, "annotated non-name target", filename)
            cell = self._name_cell(stmt.target, sig)
            self.unify(
                cell,
                self.annotation_cell(stmt.annotation, filename),
                stmt,
                filename,
            )
            if stmt.value is not None:
                self.unify(
                    cell, self._value_or_array(stmt.value, sig), stmt, filename
                )
        elif isinstance(stmt, ast.AugAssign):
            value_cell = self._expr(stmt.value, sig)
            if isinstance(stmt.target, ast.Name):
                cell = self._name_cell(stmt.target, sig)
                self._augmented(cell, stmt.op, value_cell, stmt, sig)
            elif isinstance(stmt.target, ast.Subscript):
                elem = self._subscript_elem(stmt.target, sig)
                self._augmented(elem, stmt.op, value_cell, stmt, sig)
            else:
                raise unsupported(
                    stmt, "augmented assignment target", filename
                )
        elif isinstance(stmt, ast.For):
            self._for(stmt, sig)
        elif isinstance(stmt, ast.While):
            if stmt.orelse:
                raise unsupported(stmt, "while/else", filename)
            self.require_numeric(self._expr(stmt.test, sig), stmt, filename)
            for inner in stmt.body:
                self._stmt(inner, sig)
        elif isinstance(stmt, ast.If):
            self.require_numeric(self._expr(stmt.test, sig), stmt, filename)
            for inner in stmt.body:
                self._stmt(inner, sig)
            for inner in stmt.orelse:
                self._stmt(inner, sig)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.unify(
                    sig.ret, self._expr(stmt.value, sig), stmt, filename
                )
        elif isinstance(stmt, ast.Expr):
            if isinstance(stmt.value, ast.Constant) and isinstance(
                stmt.value.value, str
            ):
                return  # docstring
            if isinstance(stmt.value, ast.Call):
                self._expr(stmt.value, sig)
                return
            raise unsupported(
                stmt, "expression statement without effect", filename
            )
        elif isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Global)):
            return
        else:
            raise unsupported(
                stmt, type(stmt).__name__.lower(), filename,
                hint="outside the lowered Python subset",
            )

    def _augmented(self, cell, op, value_cell, stmt, sig) -> None:
        filename = sig.filename
        if isinstance(op, ast.Div):
            self.unify(cell, TypeCell("float"), stmt, filename)
            self.require_numeric(value_cell, stmt, filename)
        elif isinstance(
            op, (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor)
        ):
            self.require_int(cell, stmt, filename)
            self.require_int(value_cell, stmt, filename)
        else:
            joined = self.join(cell, value_cell, stmt, filename)
            self.unify(cell, joined, stmt, filename)

    def _for(self, stmt: ast.For, sig: FuncSig) -> None:
        filename = sig.filename
        if stmt.orelse:
            raise unsupported(stmt, "for/else", filename)
        if not isinstance(stmt.target, ast.Name):
            raise unsupported(
                stmt, "tuple unpacking in a for target", filename
            )
        call = stmt.iter
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "range"
        ):
            raise unsupported(
                stmt,
                "iteration over a non-range iterable",
                filename,
                hint="only `for i in range(...)` loops lower to MIR",
            )
        if not 1 <= len(call.args) <= 3 or call.keywords:
            raise FrontendError.at(
                call, "range() takes 1-3 positional arguments", filename
            )
        for arg in call.args:
            self.require_int(self._expr(arg, sig), arg, filename)
        self.require_int(self._name_cell(stmt.target, sig), stmt, filename)
        for inner in stmt.body:
            self._stmt(inner, sig)

    def _assign_target(self, target, value_cell, sig: FuncSig) -> None:
        filename = sig.filename
        if isinstance(target, ast.Name):
            self.unify(
                self._name_cell(target, sig), value_cell, target, filename
            )
        elif isinstance(target, ast.Subscript):
            elem = self._subscript_elem(target, sig)
            self.require_numeric(value_cell, target, filename)
            joined = self.join(elem, value_cell, target, filename)
            self.unify(elem, joined, target, filename)
        elif isinstance(target, (ast.Tuple, ast.List)):
            raise unsupported(target, "tuple unpacking", filename)
        else:
            raise unsupported(target, "assignment target", filename)

    # ------------------------------------------------------------------
    # constraint generation (expressions)
    # ------------------------------------------------------------------

    def _value_or_array(self, value: ast.expr, sig: FuncSig) -> TypeCell:
        """RHS of an assignment: list constructions allowed here only."""
        spec = array_literal_spec(value)
        if spec is not None:
            elem_kind, _ = spec
            cell = self.array_cell(elem_kind)
            length = static_array_length(value, self.const_env)
            self.find(cell).size = length
            return cell
        if isinstance(value, (ast.List, ast.ListComp)):
            raise unsupported(
                value,
                "list construction",
                sig.filename,
                hint="only `[0] * n` / `[0.0] * n` and literal lists of "
                "numbers lower to arrays",
            )
        return self._expr(value, sig)

    def _name_cell(self, node: ast.Name, sig: FuncSig) -> TypeCell:
        name = node.id
        if name in sig.cells:
            return sig.cells[name]
        if name in sig.global_names or name in self.global_cells:
            if name not in self.global_cells:
                raise FrontendError.at(
                    node,
                    f"global {name!r} is not a lowered module-level "
                    "variable",
                    sig.filename,
                )
            return self.global_cells[name]
        if name in self.sigs or name in PY_BUILTINS:
            raise FrontendError.at(
                node,
                f"{name!r} is a function; functions are not first-class "
                "values in the lowered subset",
                sig.filename,
            )
        raise FrontendError.at(
            node, f"undefined variable {name!r}", sig.filename
        )

    def _subscript_elem(self, node: ast.Subscript, sig: FuncSig) -> TypeCell:
        filename = sig.filename
        if not isinstance(node.value, ast.Name):
            raise unsupported(
                node, "subscript of a non-name expression", filename
            )
        if isinstance(node.slice, ast.Slice):
            raise unsupported(node, "slicing", filename)
        base = self._name_cell(node.value, sig)
        arr = self.array_cell()
        self.unify(base, arr, node, filename)
        index = self._expr(node.slice, sig)
        self.require_int(index, node, filename)
        return self.find(base).elem

    def _expr(self, node: ast.expr, sig: FuncSig) -> TypeCell:
        filename = sig.filename
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool) or isinstance(value, int):
                return TypeCell("int")
            if isinstance(value, float):
                return TypeCell("float")
            raise unsupported(
                node, f"{type(value).__name__} literal", filename
            )
        if isinstance(node, ast.Name):
            return self._name_cell(node, sig)
        if isinstance(node, ast.Subscript):
            return self._subscript_elem(node, sig)
        if isinstance(node, ast.BinOp):
            left = self._expr(node.left, sig)
            right = self._expr(node.right, sig)
            op = node.op
            if isinstance(op, ast.Div):
                self.require_numeric(left, node, filename)
                self.require_numeric(right, node, filename)
                return TypeCell("float")
            if isinstance(
                op,
                (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor),
            ):
                self.require_int(left, node, filename)
                self.require_int(right, node, filename)
                return TypeCell("int")
            if isinstance(
                op,
                (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod, ast.Pow),
            ):
                return self.join(left, right, node, filename)
            raise unsupported(
                node, f"operator {type(op).__name__}", filename
            )
        if isinstance(node, ast.UnaryOp):
            operand = self._expr(node.operand, sig)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                self.require_numeric(operand, node, filename)
                return operand
            if isinstance(node.op, ast.Not):
                self.require_numeric(operand, node, filename)
                return TypeCell("int")
            self.require_int(operand, node, filename)  # Invert
            return TypeCell("int")
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.require_numeric(self._expr(value, sig), node, filename)
            return TypeCell("int")
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise unsupported(
                    node,
                    "chained comparison",
                    filename,
                    hint="split `a < b < c` into `a < b and b < c`",
                )
            if isinstance(node.ops[0], (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
                raise unsupported(
                    node,
                    f"comparison {type(node.ops[0]).__name__}",
                    filename,
                )
            self.require_numeric(self._expr(node.left, sig), node, filename)
            self.require_numeric(
                self._expr(node.comparators[0], sig), node, filename
            )
            return TypeCell("int")
        if isinstance(node, ast.Call):
            return self._call(node, sig)
        if isinstance(node, (ast.List, ast.ListComp, ast.Tuple, ast.Dict,
                             ast.Set)):
            raise unsupported(
                node,
                f"{type(node).__name__.lower()} expression",
                filename,
                hint="containers other than flat numeric lists are outside "
                "the subset",
            )
        if isinstance(node, ast.IfExp):
            raise unsupported(
                node, "conditional expression", filename,
                hint="use an if statement",
            )
        raise unsupported(node, type(node).__name__, filename)

    def _call(self, node: ast.Call, sig: FuncSig) -> TypeCell:
        filename = sig.filename
        if node.keywords:
            raise unsupported(node, "keyword arguments", filename)
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "math"
                and func.attr in MATH_BUILTINS
            ):
                _, arity, result = MATH_BUILTINS[func.attr]
                if len(node.args) != arity:
                    raise FrontendError.at(
                        node,
                        f"math.{func.attr} expects {arity} argument(s)",
                        filename,
                    )
                for arg in node.args:
                    self.require_numeric(
                        self._expr(arg, sig), arg, filename
                    )
                return TypeCell(result)
            raise unsupported(
                node, "method / attribute call", filename,
                hint="only math.<fn> attribute calls are lowered",
            )
        if not isinstance(func, ast.Name):
            raise unsupported(node, "indirect call", filename)
        name = func.id
        if name in self.sigs:
            callee = self.sigs[name]
            if len(node.args) != len(callee.params):
                raise FrontendError.at(
                    node,
                    f"{name}() expects {len(callee.params)} argument(s), "
                    f"got {len(node.args)}",
                    filename,
                )
            for arg, param in zip(node.args, callee.params):
                self.unify(self._expr(arg, sig), param, arg, filename)
            return callee.ret
        if name in PY_BUILTINS:
            return self._py_builtin(node, name, sig)
        raise FrontendError.at(
            node,
            f"call to unknown function {name!r} (not a lowered function, "
            "not a supported builtin)",
            filename,
        )

    def _py_builtin(self, node: ast.Call, name: str, sig: FuncSig):
        filename = sig.filename
        arg_cells = [self._expr(arg, sig) for arg in node.args]
        if name == "range":
            raise FrontendError.at(
                node,
                "range() is only supported as a for-loop iterator",
                filename,
            )
        if name == "len":
            if len(arg_cells) != 1:
                raise FrontendError.at(
                    node, "len() expects one argument", filename
                )
            self.unify(arg_cells[0], self.array_cell(), node, filename)
            return TypeCell("int")
        if name == "print":
            for cell in arg_cells:
                self.require_numeric(cell, node, filename)
            return TypeCell("int")
        if name in ("int", "bool", "float"):
            if len(arg_cells) != 1:
                raise FrontendError.at(
                    node, f"{name}() expects one argument", filename
                )
            self.require_numeric(arg_cells[0], node, filename)
            return TypeCell("float" if name == "float" else "int")
        if name == "abs":
            if len(arg_cells) != 1:
                raise FrontendError.at(
                    node, "abs() expects one argument", filename
                )
            self.require_numeric(arg_cells[0], node, filename)
            return self.join(arg_cells[0], TypeCell("int"), node, filename)
        if name == "pow":
            if len(arg_cells) != 2:
                raise FrontendError.at(
                    node, "pow() expects two arguments", filename
                )
            return self.join(arg_cells[0], arg_cells[1], node, filename)
        if name in ("min", "max"):
            if len(arg_cells) < 2:
                raise FrontendError.at(
                    node, f"{name}() expects at least two arguments", filename
                )
            result = arg_cells[0]
            for cell in arg_cells[1:]:
                result = self.join(result, cell, node, filename)
            return result
        raise unsupported(node, f"builtin {name}", filename)


# ---------------------------------------------------------------------------
# static array-construction analysis (shared with the lowering)
# ---------------------------------------------------------------------------


def array_literal_spec(node: ast.expr):
    """``(elem_kind, fill)`` when ``node`` is a lowerable array construction.

    Recognized forms: ``[lit] * expr``, ``expr * [lit]``, and flat literal
    lists of numbers.  Returns None for non-list expressions.
    """
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        for lst in (node.left, node.right):
            if isinstance(lst, ast.List):
                fill = _numeric_literal(lst.elts[0]) if len(lst.elts) == 1 \
                    else None
                if fill is None:
                    return None
                kind = "float" if isinstance(fill, float) else "int"
                return kind, fill
        return None
    if isinstance(node, ast.List) and node.elts:
        values = [_numeric_literal(elt) for elt in node.elts]
        if any(v is None for v in values):
            return None
        kind = "float" if any(isinstance(v, float) for v in values) else "int"
        return kind, values
    return None


def static_array_length(node: ast.expr, env: Optional[dict] = None):
    """Compile-time length of an array construction, or None."""
    if isinstance(node, ast.List):
        return len(node.elts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        lst, count = (
            (node.left, node.right)
            if isinstance(node.left, ast.List)
            else (node.right, node.left)
        )
        if not isinstance(lst, ast.List) or len(lst.elts) != 1:
            return None
        value = const_eval(count, env or {})
        if isinstance(value, int) and value > 0:
            return value
    return None


def _numeric_literal(node: ast.expr):
    """The int/float value of a (possibly negated) literal, else None."""
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _numeric_literal(node.operand)
        return -inner if inner is not None else None
    return None


def const_eval(node: ast.expr, env: dict):
    """Evaluate a compile-time-constant arithmetic expression, else None.

    ``env`` maps module-level constant names to their values (global
    scalars keep their *initial* value here; good enough for layout-time
    sizes, which Python code conventionally derives from module constants).
    """
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        value = const_eval(node.operand, env)
        return -value if value is not None else None
    if isinstance(node, ast.BinOp):
        left = const_eval(node.left, env)
        right = const_eval(node.right, env)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                return left // right
            if isinstance(node.op, ast.Mod):
                return left % right
            if isinstance(node.op, ast.Pow):
                return left ** right
        except (ZeroDivisionError, ValueError):
            return None
    return None
