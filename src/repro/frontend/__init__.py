"""Python-source frontend: a typed Python subset lowered to MIR.

Public surface:

* :func:`repro.frontend.compile_python_source` — source text → Module
  (the CLI / workload-registry path);
* :func:`repro.frontend.analyze` / :func:`repro.frontend.candidate` —
  live-function analysis (re-exported as ``repro.analyze``);
* :class:`repro.frontend.FrontendError` — source-mapped diagnostics.

See ``docs/FRONTEND.md`` for the supported subset and inference rules.
"""

from repro.frontend.api import analyze, candidate
from repro.frontend.errors import FrontendError
from repro.frontend.infer import InferenceEngine, TypeCell
from repro.frontend.lowering import (
    DriverSpec,
    MirBuilder,
    compile_python_source,
)

__all__ = [
    "analyze",
    "candidate",
    "FrontendError",
    "InferenceEngine",
    "TypeCell",
    "DriverSpec",
    "MirBuilder",
    "compile_python_source",
]
