"""Hand-written lexer for MiniC.

Produces a list of :class:`~repro.minic.tokens.Token`.  Supports ``//`` line
comments and ``/* */`` block comments, decimal integer and floating literals,
identifiers, keywords, and the operator set in :mod:`repro.minic.tokens`.
"""

from __future__ import annotations

from repro.minic.tokens import KEYWORDS, MULTI_OPS, SINGLE_OPS, Token


class LexError(Exception):
    """Raised on malformed input; carries the offending line/column."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


class Lexer:
    """Tokenises MiniC source text."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.col)

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self.source[self.pos] != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.col
                self._advance(2)
                while self.pos < len(self.source):
                    if self.source[self.pos] == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start_line, start_col)
            else:
                return

    def _lex_number(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        saw_dot = False
        saw_exp = False
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch.isdigit():
                self._advance()
            elif ch == "." and not saw_dot and not saw_exp:
                saw_dot = True
                self._advance()
            elif ch in "eE" and not saw_exp and self.pos > start:
                nxt = self._peek(1)
                if nxt.isdigit() or (nxt in "+-" and self._peek(2).isdigit()):
                    saw_exp = True
                    self._advance()
                    if self._peek() in "+-":
                        self._advance()
                else:
                    break
            else:
                break
        text = self.source[start : self.pos]
        if saw_dot or saw_exp:
            return Token("floatlit", float(text), line, col)
        return Token("intlit", int(text), line, col)

    def _lex_word(self) -> Token:
        line, col = self.line, self.col
        start = self.pos
        while self.pos < len(self.source) and (
            self.source[self.pos].isalnum() or self.source[self.pos] == "_"
        ):
            self._advance()
        text = self.source[start : self.pos]
        if text in KEYWORDS:
            return Token(text, text, line, col)
        return Token("ident", text, line, col)

    def tokens(self) -> list[Token]:
        """Lex the full input and return the token list, ending with EOF."""
        out: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                out.append(Token("eof", None, self.line, self.col))
                return out
            ch = self.source[self.pos]
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                out.append(self._lex_number())
            elif ch.isalpha() or ch == "_":
                out.append(self._lex_word())
            else:
                matched = False
                for op in MULTI_OPS:
                    if self.source.startswith(op, self.pos):
                        out.append(Token(op, op, self.line, self.col))
                        self._advance(len(op))
                        matched = True
                        break
                if matched:
                    continue
                if ch in SINGLE_OPS:
                    out.append(Token(ch, ch, self.line, self.col))
                    self._advance()
                else:
                    raise self._error(f"unexpected character {ch!r}")


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: lex ``source`` to a token list."""
    return Lexer(source).tokens()
