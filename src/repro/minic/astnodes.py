"""AST node definitions for MiniC.

Every node carries its 1-based source ``line`` — line numbers are the
currency of the whole framework: data dependences, computational units, and
parallelization suggestions are all reported against source lines, exactly as
in the paper's ``fileID:lineID`` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Expr:
    line: int


@dataclass(slots=True)
class Num(Expr):
    """Integer or floating literal."""

    value: Union[int, float]


@dataclass(slots=True)
class Var(Expr):
    """A scalar variable reference (or array base when used bare)."""

    name: str
    # Filled by semantic analysis: unique id of the variable declaration.
    var_id: Optional[int] = None


@dataclass(slots=True)
class Index(Expr):
    """Array element access ``base[index]``."""

    base: Var
    index: Expr


@dataclass(slots=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(slots=True)
class UnOp(Expr):
    op: str
    operand: Expr


@dataclass(slots=True)
class Call(Expr):
    """Function or builtin call."""

    name: str
    args: list[Expr]
    is_builtin: bool = False


@dataclass(slots=True)
class SpawnExpr(Expr):
    """``spawn f(args)`` — starts a VM thread, evaluates to its thread id."""

    name: str
    args: list[Expr]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Stmt:
    line: int


@dataclass(slots=True)
class VarDecl(Stmt):
    """``int x;`` / ``float a[10];`` / ``int x = e;``.

    ``array_size`` is an expression (usually a literal) for array
    declarations, ``None`` for scalars.
    """

    type_name: str
    name: str
    array_size: Optional[Expr] = None
    init: Optional[Expr] = None
    var_id: Optional[int] = None


@dataclass(slots=True)
class Assign(Stmt):
    """``lvalue op= expr`` with op in ``=``, ``+=``, ``-=``, ``*=``, ``/=``,
    ``%=``.  ``x++;`` / ``x--;`` are desugared to ``x += 1`` / ``x -= 1``."""

    target: Union[Var, Index]
    op: str
    value: Expr


@dataclass(slots=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(slots=True)
class If(Stmt):
    cond: Expr
    then_body: "Block"
    else_body: Optional["Block"] = None
    end_line: int = 0


@dataclass(slots=True)
class While(Stmt):
    cond: Expr
    body: "Block"
    end_line: int = 0


@dataclass(slots=True)
class For(Stmt):
    """``for (init; cond; step) body`` — each clause optional."""

    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: "Block"
    end_line: int = 0


@dataclass(slots=True)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(slots=True)
class Break(Stmt):
    pass


@dataclass(slots=True)
class Continue(Stmt):
    pass


@dataclass(slots=True)
class Block(Stmt):
    body: list[Stmt] = field(default_factory=list)
    end_line: int = 0


@dataclass(slots=True)
class Lock(Stmt):
    """``lock(e);`` — acquire VM lock number ``e``."""

    lock_id: Expr


@dataclass(slots=True)
class Unlock(Stmt):
    lock_id: Expr


@dataclass(slots=True)
class Join(Stmt):
    """``join(e);`` — wait for thread id ``e``."""

    tid: Expr


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class Param:
    line: int
    type_name: str
    name: str
    is_array: bool = False
    var_id: Optional[int] = None


@dataclass(slots=True)
class FuncDef:
    line: int
    return_type: str
    name: str
    params: list[Param]
    body: Block
    end_line: int = 0


@dataclass(slots=True)
class Program:
    """A whole MiniC translation unit."""

    globals: list[VarDecl] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)

    def function(self, name: str) -> FuncDef:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(name)


EXPR_NODES = (Num, Var, Index, BinOp, UnOp, Call, SpawnExpr)
STMT_NODES = (
    VarDecl,
    Assign,
    ExprStmt,
    If,
    While,
    For,
    Return,
    Break,
    Continue,
    Block,
    Lock,
    Unlock,
    Join,
)
