"""Recursive-descent parser for MiniC.

The grammar is deliberately close to a C subset so the benchmark kernels in
:mod:`repro.workloads` read like the originals in NAS / Starbench / BOTS.
"""

from __future__ import annotations

from typing import Optional

from repro.minic import astnodes as ast
from repro.minic.lexer import tokenize
from repro.minic.tokens import Token

TYPE_NAMES = ("int", "float", "void")

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=")


class ParseError(Exception):
    """Raised when the token stream does not match the grammar."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{token.line}:{token.col}: {message} (got {token.kind!r})")
        self.token = token


class Parser:
    """Parses a token list into a :class:`repro.minic.astnodes.Program`."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _expect(self, kind: str) -> Token:
        tok = self._peek()
        if tok.kind != kind:
            raise ParseError(f"expected {kind!r}", tok)
        return self._next()

    def _accept(self, kind: str) -> Optional[Token]:
        if self._peek().kind == kind:
            return self._next()
        return None

    # -- top level ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self._peek().kind != "eof":
            tok = self._peek()
            if tok.kind not in TYPE_NAMES:
                raise ParseError("expected declaration or function", tok)
            # Distinguish `type name (` (function) from `type name ...;`.
            if self._peek(2).kind == "(":
                program.functions.append(self._parse_funcdef())
            else:
                program.globals.append(self._parse_vardecl())
        return program

    def _parse_funcdef(self) -> ast.FuncDef:
        type_tok = self._next()
        name_tok = self._expect("ident")
        self._expect("(")
        params: list[ast.Param] = []
        if self._peek().kind != ")":
            while True:
                ptype = self._next()
                if ptype.kind not in ("int", "float"):
                    raise ParseError("expected parameter type", ptype)
                pname = self._expect("ident")
                is_array = False
                if self._accept("["):
                    self._expect("]")
                    is_array = True
                params.append(
                    ast.Param(pname.line, ptype.kind, pname.value, is_array)
                )
                if not self._accept(","):
                    break
        self._expect(")")
        body = self._parse_block()
        return ast.FuncDef(
            type_tok.line, type_tok.kind, name_tok.value, params, body, body.end_line
        )

    def _parse_vardecl(self) -> ast.VarDecl:
        type_tok = self._next()
        if type_tok.kind not in ("int", "float"):
            raise ParseError("expected variable type", type_tok)
        name_tok = self._expect("ident")
        array_size: Optional[ast.Expr] = None
        init: Optional[ast.Expr] = None
        if self._accept("["):
            array_size = self._parse_expr()
            self._expect("]")
        if self._accept("="):
            init = self._parse_expr()
        self._expect(";")
        return ast.VarDecl(
            name_tok.line, type_tok.kind, name_tok.value, array_size, init
        )

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        open_tok = self._expect("{")
        body: list[ast.Stmt] = []
        while self._peek().kind != "}":
            if self._peek().kind == "eof":
                raise ParseError("unterminated block", self._peek())
            body.append(self._parse_stmt())
        close_tok = self._expect("}")
        return ast.Block(open_tok.line, body, close_tok.line)

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        kind = tok.kind
        if kind in ("int", "float"):
            return self._parse_vardecl()
        if kind == "{":
            return self._parse_block()
        if kind == "if":
            return self._parse_if()
        if kind == "while":
            return self._parse_while()
        if kind == "for":
            return self._parse_for()
        if kind == "return":
            self._next()
            value = None if self._peek().kind == ";" else self._parse_expr()
            self._expect(";")
            return ast.Return(tok.line, value)
        if kind == "break":
            self._next()
            self._expect(";")
            return ast.Break(tok.line)
        if kind == "continue":
            self._next()
            self._expect(";")
            return ast.Continue(tok.line)
        if kind == "lock":
            self._next()
            self._expect("(")
            lock_id = self._parse_expr()
            self._expect(")")
            self._expect(";")
            return ast.Lock(tok.line, lock_id)
        if kind == "unlock":
            self._next()
            self._expect("(")
            lock_id = self._parse_expr()
            self._expect(")")
            self._expect(";")
            return ast.Unlock(tok.line, lock_id)
        if kind == "join":
            self._next()
            self._expect("(")
            tid = self._parse_expr()
            self._expect(")")
            self._expect(";")
            return ast.Join(tok.line, tid)
        stmt = self._parse_simple_stmt()
        self._expect(";")
        return stmt

    def _parse_simple_stmt(self) -> ast.Stmt:
        """An assignment / increment / expression — no trailing ``;``.

        Shared between ordinary statements and ``for`` init/step clauses.
        """
        tok = self._peek()
        if tok.kind in ("int", "float"):
            # declaration in a `for` init clause: `for (int i = 0; ...)`
            type_tok = self._next()
            name_tok = self._expect("ident")
            init = None
            if self._accept("="):
                init = self._parse_expr()
            return ast.VarDecl(name_tok.line, type_tok.kind, name_tok.value, None, init)
        expr = self._parse_expr()
        nxt = self._peek().kind
        if nxt in _ASSIGN_OPS:
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise ParseError("invalid assignment target", self._peek())
            op_tok = self._next()
            value = self._parse_expr()
            return ast.Assign(expr.line, expr, op_tok.kind, value)
        if nxt in ("++", "--"):
            if not isinstance(expr, (ast.Var, ast.Index)):
                raise ParseError("invalid increment target", self._peek())
            op_tok = self._next()
            op = "+=" if op_tok.kind == "++" else "-="
            return ast.Assign(expr.line, expr, op, ast.Num(expr.line, 1))
        return ast.ExprStmt(expr.line, expr)

    def _parse_if(self) -> ast.If:
        tok = self._expect("if")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        then_body = self._stmt_as_block()
        else_body = None
        end_line = then_body.end_line
        if self._accept("else"):
            else_body = self._stmt_as_block()
            end_line = else_body.end_line
        return ast.If(tok.line, cond, then_body, else_body, end_line)

    def _parse_while(self) -> ast.While:
        tok = self._expect("while")
        self._expect("(")
        cond = self._parse_expr()
        self._expect(")")
        body = self._stmt_as_block()
        return ast.While(tok.line, cond, body, body.end_line)

    def _parse_for(self) -> ast.For:
        tok = self._expect("for")
        self._expect("(")
        init = None if self._peek().kind == ";" else self._parse_simple_stmt()
        self._expect(";")
        cond = None if self._peek().kind == ";" else self._parse_expr()
        self._expect(";")
        step = None if self._peek().kind == ")" else self._parse_simple_stmt()
        self._expect(")")
        body = self._stmt_as_block()
        return ast.For(tok.line, init, cond, step, body, body.end_line)

    def _stmt_as_block(self) -> ast.Block:
        """Wrap a single statement body in a Block for uniform regions."""
        if self._peek().kind == "{":
            return self._parse_block()
        stmt = self._parse_stmt()
        return ast.Block(stmt.line, [stmt], getattr(stmt, "end_line", 0) or stmt.line)

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            op = self._peek().kind
            prec = _PRECEDENCE.get(op)
            if prec is None or prec < min_prec:
                return left
            op_tok = self._next()
            right = self._parse_binary(prec + 1)
            left = ast.BinOp(op_tok.line, op, left, right)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind in ("-", "!", "~"):
            self._next()
            operand = self._parse_unary()
            return ast.UnOp(tok.line, tok.kind, operand)
        if tok.kind == "+":
            self._next()
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "(":
            self._next()
            expr = self._parse_expr()
            self._expect(")")
            return expr
        if tok.kind in ("int", "float") and self._peek(1).kind == "(":
            # cast syntax `int(e)` / `float(e)` — lowered as builtin call
            self._next()
            self._expect("(")
            arg = self._parse_expr()
            self._expect(")")
            return ast.Call(tok.line, f"__{tok.kind}", [arg], is_builtin=True)
        if tok.kind == "spawn":
            self._next()
            name_tok = self._expect("ident")
            args = self._parse_args()
            return ast.SpawnExpr(tok.line, name_tok.value, args)
        if tok.kind == "ident":
            name_tok = self._next()
            if self._peek().kind == "(":
                args = self._parse_args()
                return ast.Call(name_tok.line, name_tok.value, args)
            base = ast.Var(name_tok.line, name_tok.value)
            if self._accept("["):
                index = self._parse_expr()
                self._expect("]")
                return ast.Index(name_tok.line, base, index)
            return base
        if tok.kind in ("intlit", "floatlit"):
            self._next()
            return ast.Num(tok.line, tok.value)
        if tok.kind == "eof":
            raise ParseError("unexpected end of input", tok)
        raise ParseError("unexpected token in expression", tok)

    def _parse_args(self) -> list[ast.Expr]:
        self._expect("(")
        args: list[ast.Expr] = []
        if self._peek().kind != ")":
            while True:
                args.append(self._parse_expr())
                if not self._accept(","):
                    break
        self._expect(")")
        return args


def parse(source: str) -> ast.Program:
    """Parse MiniC source text into a Program AST."""
    return Parser(tokenize(source)).parse_program()
