"""MiniC: the source-language substrate of the reproduction.

The paper instruments C/C++ programs at the LLVM-IR level.  MiniC is a small
C-like language (functions, ``int``/``float`` scalars and 1-D arrays,
``for``/``while``/``if``, compound assignment, and explicit threading
primitives ``spawn``/``join``/``lock``/``unlock``) that plays the role of C in
this repository.  Programs are parsed to an AST, semantically analysed (scope
resolution assigns every variable a :class:`~repro.minic.sema.VarInfo`), and
lowered to MIR (:mod:`repro.mir`), the LLVM-IR-like intermediate
representation the profiler instruments.
"""

from repro.minic.lexer import Lexer, LexError
from repro.minic.parser import Parser, ParseError, parse
from repro.minic.sema import SemanticAnalyzer, SemanticError, analyze
from repro.minic import astnodes as ast

__all__ = [
    "Lexer",
    "LexError",
    "Parser",
    "ParseError",
    "parse",
    "SemanticAnalyzer",
    "SemanticError",
    "analyze",
    "ast",
]
