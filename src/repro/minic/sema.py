"""Semantic analysis for MiniC.

Performs scope resolution and assigns every declared variable a unique
:class:`VarInfo`.  The *scope path* stored on each variable (the chain of
lexical block ids from the function body down to the declaring block) is what
Chapter 3's global/local variable analysis consumes: a variable is *local* to
a control region iff the region's block id appears on its scope path,
otherwise it is *global to the region* (even when it is merely declared in an
enclosing function scope — exactly the notion used to define CUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.minic import astnodes as ast

#: Builtin functions available to MiniC programs.  ``arity`` of -1 means
#: variadic.  All builtins are pure except ``rand``/``alloc``/``free``/
#: ``print`` (the VM gives ``rand`` a deterministic seeded stream).
BUILTINS: dict[str, int] = {
    "rand": 0,
    "sqrt": 1,
    "abs": 1,
    "floor": 1,
    "ceil": 1,
    "min": 2,
    "max": 2,
    "exp": 1,
    "log": 1,
    "sin": 1,
    "cos": 1,
    "pow": 2,
    "print": -1,
    "alloc": 1,
    "free": 1,
    "__int": 1,
    "__float": 1,
}


class SemanticError(Exception):
    """Raised on scope/arity/shape violations; carries the source line."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(slots=True)
class VarInfo:
    """Identity record of one declared variable."""

    var_id: int
    name: str
    type_name: str
    is_array: bool
    array_size: Optional[int]
    kind: str  # 'global' | 'local' | 'param'
    func: Optional[str]
    decl_line: int
    scope_path: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of memory words occupied (array params occupy one word:
        they hold the referenced base address)."""
        if self.is_array and self.kind != "param" and self.array_size is not None:
            return self.array_size
        return 1


@dataclass(slots=True)
class FuncInfo:
    name: str
    return_type: str
    params: list[VarInfo]
    node: ast.FuncDef
    local_vars: list[VarInfo] = field(default_factory=list)


@dataclass
class SymbolTable:
    """Result of semantic analysis over one Program."""

    variables: dict[int, VarInfo] = field(default_factory=dict)
    functions: dict[str, FuncInfo] = field(default_factory=dict)
    global_vars: list[VarInfo] = field(default_factory=list)
    #: next unused lexical scope id (scope 0 is the global scope)
    n_scopes: int = 1

    def var(self, var_id: int) -> VarInfo:
        return self.variables[var_id]


class SemanticAnalyzer:
    """Resolves names, assigns var ids, checks arity and array shape."""

    def __init__(self, program: ast.Program) -> None:
        self.program = program
        self.table = SymbolTable()
        self._next_var_id = 0
        self._next_scope_id = 1
        # Stack of (scope_id, {name: VarInfo}).
        self._scopes: list[tuple[int, dict[str, VarInfo]]] = []
        self._current_func: Optional[FuncInfo] = None

    # -- public entry --------------------------------------------------------

    def analyze(self) -> SymbolTable:
        # Register function signatures first so calls can be forward.
        for func in self.program.functions:
            if func.name in self.table.functions:
                raise SemanticError(f"duplicate function {func.name!r}", func.line)
            if func.name in BUILTINS:
                raise SemanticError(
                    f"function {func.name!r} shadows a builtin", func.line
                )
            self.table.functions[func.name] = FuncInfo(
                func.name, func.return_type, [], func
            )

        self._scopes.append((0, {}))
        for decl in self.program.globals:
            info = self._declare(decl, kind="global")
            self.table.global_vars.append(info)
            if decl.init is not None:
                if not isinstance(decl.init, ast.Num):
                    raise SemanticError(
                        f"global {decl.name!r} initializer must be a literal",
                        decl.line,
                    )
                self._visit_expr(decl.init)

        for func in self.program.functions:
            self._analyze_function(func)

        self._scopes.pop()
        self.table.n_scopes = self._next_scope_id
        return self.table

    # -- declarations --------------------------------------------------------

    def _declare(self, decl: ast.VarDecl, kind: str) -> VarInfo:
        scope_id, names = self._scopes[-1]
        if decl.name in names:
            raise SemanticError(f"redeclaration of {decl.name!r}", decl.line)
        array_size: Optional[int] = None
        is_array = decl.array_size is not None
        if is_array:
            if not isinstance(decl.array_size, ast.Num) or not isinstance(
                decl.array_size.value, int
            ):
                raise SemanticError(
                    f"array {decl.name!r} needs a literal integer size "
                    "(use alloc() for dynamic arrays)",
                    decl.line,
                )
            array_size = decl.array_size.value
            if array_size <= 0:
                raise SemanticError(f"array {decl.name!r} size must be > 0", decl.line)
        info = VarInfo(
            var_id=self._next_var_id,
            name=decl.name,
            type_name=decl.type_name,
            is_array=is_array,
            array_size=array_size,
            kind=kind,
            func=self._current_func.name if self._current_func else None,
            decl_line=decl.line,
            scope_path=tuple(sid for sid, _ in self._scopes),
        )
        self._next_var_id += 1
        names[decl.name] = info
        self.table.variables[info.var_id] = info
        decl.var_id = info.var_id
        if self._current_func is not None and kind == "local":
            self._current_func.local_vars.append(info)
        return info

    def _declare_param(self, param: ast.Param) -> VarInfo:
        scope_id, names = self._scopes[-1]
        if param.name in names:
            raise SemanticError(f"duplicate parameter {param.name!r}", param.line)
        info = VarInfo(
            var_id=self._next_var_id,
            name=param.name,
            type_name=param.type_name,
            is_array=param.is_array,
            array_size=None,
            kind="param",
            func=self._current_func.name if self._current_func else None,
            decl_line=param.line,
            scope_path=tuple(sid for sid, _ in self._scopes),
        )
        self._next_var_id += 1
        names[param.name] = info
        self.table.variables[info.var_id] = info
        param.var_id = info.var_id
        return info

    # -- functions & statements ----------------------------------------------

    def _analyze_function(self, func: ast.FuncDef) -> None:
        finfo = self.table.functions[func.name]
        self._current_func = finfo
        scope_id = self._next_scope_id
        self._next_scope_id += 1
        self._scopes.append((scope_id, {}))
        for param in func.params:
            finfo.params.append(self._declare_param(param))
        # The function body block shares the parameter scope.
        for stmt in func.body.body:
            self._visit_stmt(stmt)
        self._scopes.pop()
        self._current_func = None

    def _visit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._visit_expr(stmt.init)
            self._declare(stmt, kind="local")
        elif isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value)
            self._visit_lvalue(stmt.target)
        elif isinstance(stmt, ast.ExprStmt):
            self._visit_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._visit_expr(stmt.cond)
            self._visit_block(stmt.then_body)
            if stmt.else_body is not None:
                self._visit_block(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self._visit_expr(stmt.cond)
            self._visit_block(stmt.body)
        elif isinstance(stmt, ast.For):
            # The init clause scopes its declaration over the whole loop.
            scope_id = self._next_scope_id
            self._next_scope_id += 1
            self._scopes.append((scope_id, {}))
            if stmt.init is not None:
                self._visit_stmt(stmt.init)
            if stmt.cond is not None:
                self._visit_expr(stmt.cond)
            if stmt.step is not None:
                self._visit_stmt(stmt.step)
            self._visit_block(stmt.body, new_scope=False)
            self._scopes.pop()
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._visit_expr(stmt.value)
        elif isinstance(stmt, ast.Block):
            self._visit_block(stmt)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            pass
        elif isinstance(stmt, (ast.Lock, ast.Unlock)):
            self._visit_expr(stmt.lock_id)
        elif isinstance(stmt, ast.Join):
            self._visit_expr(stmt.tid)
        else:  # pragma: no cover - exhaustive
            raise SemanticError(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _visit_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            scope_id = self._next_scope_id
            self._next_scope_id += 1
            self._scopes.append((scope_id, {}))
        for stmt in block.body:
            self._visit_stmt(stmt)
        if new_scope:
            self._scopes.pop()

    # -- expressions -----------------------------------------------------------

    def _lookup(self, name: str, line: int) -> VarInfo:
        for _, names in reversed(self._scopes):
            if name in names:
                return names[name]
        raise SemanticError(f"undeclared variable {name!r}", line)

    def _visit_lvalue(self, target: ast.Expr) -> None:
        if isinstance(target, ast.Var):
            info = self._lookup(target.name, target.line)
            if info.is_array:
                raise SemanticError(
                    f"cannot assign whole array {target.name!r}", target.line
                )
            target.var_id = info.var_id
        elif isinstance(target, ast.Index):
            self._visit_expr(target.index)
            info = self._lookup(target.base.name, target.line)
            if not info.is_array and info.type_name != "int":
                raise SemanticError(
                    f"{target.base.name!r} is not indexable", target.line
                )
            target.base.var_id = info.var_id
        else:  # pragma: no cover - parser guarantees
            raise SemanticError("invalid assignment target", target.line)

    def _visit_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Num):
            return
        if isinstance(expr, ast.Var):
            info = self._lookup(expr.name, expr.line)
            expr.var_id = info.var_id
            return
        if isinstance(expr, ast.Index):
            self._visit_expr(expr.index)
            info = self._lookup(expr.base.name, expr.line)
            if not info.is_array and info.type_name != "int":
                raise SemanticError(f"{expr.base.name!r} is not indexable", expr.line)
            expr.base.var_id = info.var_id
            return
        if isinstance(expr, ast.BinOp):
            self._visit_expr(expr.left)
            self._visit_expr(expr.right)
            return
        if isinstance(expr, ast.UnOp):
            self._visit_expr(expr.operand)
            return
        if isinstance(expr, ast.Call):
            if expr.name in BUILTINS:
                expr.is_builtin = True
                arity = BUILTINS[expr.name]
                if arity >= 0 and len(expr.args) != arity:
                    raise SemanticError(
                        f"builtin {expr.name!r} expects {arity} args, "
                        f"got {len(expr.args)}",
                        expr.line,
                    )
            else:
                finfo = self.table.functions.get(expr.name)
                if finfo is None:
                    raise SemanticError(f"unknown function {expr.name!r}", expr.line)
                if len(expr.args) != len(finfo.node.params):
                    raise SemanticError(
                        f"function {expr.name!r} expects "
                        f"{len(finfo.node.params)} args, got {len(expr.args)}",
                        expr.line,
                    )
            for i, arg in enumerate(expr.args):
                # Array arguments are passed bare (by reference).
                if isinstance(arg, ast.Var):
                    info = self._lookup(arg.name, arg.line)
                    arg.var_id = info.var_id
                else:
                    self._visit_expr(arg)
            return
        if isinstance(expr, ast.SpawnExpr):
            finfo = self.table.functions.get(expr.name)
            if finfo is None:
                raise SemanticError(f"unknown function {expr.name!r}", expr.line)
            if len(expr.args) != len(finfo.node.params):
                raise SemanticError(
                    f"spawned function {expr.name!r} expects "
                    f"{len(finfo.node.params)} args, got {len(expr.args)}",
                    expr.line,
                )
            for arg in expr.args:
                if isinstance(arg, ast.Var):
                    info = self._lookup(arg.name, arg.line)
                    arg.var_id = info.var_id
                else:
                    self._visit_expr(arg)
            return
        raise SemanticError(  # pragma: no cover - exhaustive
            f"unknown expression {type(expr).__name__}", expr.line
        )


def analyze(program: ast.Program) -> SymbolTable:
    """Run semantic analysis, mutating the AST with variable ids."""
    return SemanticAnalyzer(program).analyze()
