"""Token definitions for the MiniC lexer."""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.  Keywords are their own kind so the parser can match on kind
# alone; operators/punctuation use the lexeme itself as the kind.
KEYWORDS = frozenset(
    {
        "int",
        "float",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "spawn",
        "join",
        "lock",
        "unlock",
    }
)

# Multi-character operators, longest first so the lexer can greedily match.
MULTI_OPS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "++",
    "--",
    "<<",
    ">>",
)

SINGLE_OPS = frozenset("+-*/%<>=!&|^~(){}[];,")


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    ``kind`` is one of: ``"ident"``, ``"int"``, ``"float"``, a keyword, an
    operator lexeme (e.g. ``"+="``), or ``"eof"``.  ``value`` holds the
    identifier text or numeric literal.  ``line``/``col`` are 1-based source
    coordinates used throughout the framework for dependence reporting.
    """

    kind: str
    value: object
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.value!r}, {self.line}:{self.col})"
