"""Batch discovery over many workloads (the ``repro batch`` backend).

Fans a list of jobs — registry workload names or raw MiniC/Python
sources — across
a :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker runs a full
:class:`~repro.engine.core.DiscoveryEngine` pipeline and returns a compact
JSON-ready summary row, so a fleet of programs can be analysed in one
command and the rows aggregated without holding every trace in memory.

With ``resume_dir`` the batch becomes a *checkpointing queue* (see
:mod:`repro.engine.checkpoint` and docs/RESILIENCE.md): every completed
phase persists to a content-addressed directory, already-finished jobs
are skipped outright, and a crashed job re-enters at its first missing
phase on the next run.  ``job_timeout`` adds a per-job wall-clock cap
(each job then runs in its own process), and jobs that keep failing
land on a quarantine list instead of burning the whole batch's budget
forever.

The checkpoint tree is a :class:`repro.store.ArtifactStore`, which makes
a shared ``resume_dir`` safe for *concurrent* batch runners: each job
computes under its key's advisory writer lock, so two runners that reach
the same key dedupe — the second waits, finds the finished row, and
returns it with ``resumed=True, deduped=True`` instead of racing the
first writer's ``os.replace`` calls.  The ``quarantine.json`` ledger is
updated as a locked read-modify-write of per-name deltas for the same
reason (two runners must not last-writer-win each other's counts).
"""

from __future__ import annotations

import functools
import json
import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Optional

from repro.engine.config import DiscoveryConfig
from repro.engine.core import DiscoveryEngine

#: engine timing keys -> checkpoint phase names (tier-1 phases only)
_PHASE_TIMING_KEYS = (
    ("profile", "profile"),
    ("build_cus", "cus"),
    ("detect", "detect"),
    ("rank", "rank"),
)


def job_for_workload(
    name: str, scale: int = 1, **overrides
) -> dict:
    """A batch job dict referencing a registry workload by name."""
    return {"workload": name, "scale": scale, "overrides": overrides}


def job_for_source(
    source: str, name: str = "<source>", frontend: str = "minic",
    **overrides
) -> dict:
    """A batch job dict carrying raw source text (MiniC or Python)."""
    return {
        "source": source,
        "name": name,
        "frontend": frontend,
        "overrides": overrides,
    }


def config_for_job(job: dict) -> DiscoveryConfig:
    """Materialize a job dict into the DiscoveryConfig it will run."""
    if "workload" in job:
        from repro.workloads import get_workload

        workload = get_workload(job["workload"])
        return DiscoveryConfig(
            source=workload.source(job.get("scale", 1)),
            name=job["workload"],
            entry=workload.entry,
            frontend=workload.frontend,
            **job.get("overrides", {}),
        )
    return DiscoveryConfig(
        source=job["source"],
        name=job.get("name", "<source>"),
        frontend=job.get("frontend", "minic"),
        **job.get("overrides", {}),
    )


def _resumed_row(saved: dict, t0: float) -> dict:
    row = dict(saved)
    row.update(
        resumed=True,
        phases_run=[],
        seconds=round(time.perf_counter() - t0, 3),
    )
    return row


def run_job(
    job: dict,
    *,
    resume_dir: Optional[str] = None,
    store_options: Optional[dict] = None,
) -> dict:
    """Run one batch job to completion; never raises (errors become rows).

    With ``resume_dir``, the job checkpoints each completed phase and a
    re-run skips finished work: a completed job returns its saved row
    with ``resumed=True`` and ``phases_run == []``; a partially
    completed one restores the persisted phase prefix and re-enters at
    the first missing phase.

    The compute happens under the job key's writer lock, so concurrent
    runners sharing the ``resume_dir`` dedupe: a runner that blocked on
    the lock re-checks for a finished row after acquiring and, finding
    one, returns it with ``deduped=True`` instead of recomputing.
    ``store_options`` forwards to the :class:`~repro.store.ArtifactStore`
    (``lock_backend``, ``stale_after``, ``poll_interval``).
    """
    t0 = time.perf_counter()
    name = job.get("workload") or job.get("name", "<source>")
    row = {"name": name, "ok": False}
    checkpoint = None
    engine = None
    restored: list = []
    lock = None
    try:
        try:
            config = config_for_job(job)
            if resume_dir is not None:
                from repro.engine.checkpoint import JobCheckpoint

                checkpoint = JobCheckpoint(
                    resume_dir, config, store_options=store_options
                )
                saved = checkpoint.load_result()
                if saved is not None:
                    return _resumed_row(saved, t0)
                lock = checkpoint.lock()
                lock.acquire()
                # another runner may have finished the key while we
                # waited; a verified row now means our work is done
                saved = checkpoint.load_result(heal=True)
                if saved is not None:
                    checkpoint.store._count("store.dedup_hits")
                    row = _resumed_row(saved, t0)
                    row["deduped"] = True
                    return row
                # the job's recorded failure count keys store-write
                # faults exactly like engine-phase ones
                checkpoint.store.fault_attempt = checkpoint.attempts()
            engine = DiscoveryEngine(config=config)
            if checkpoint is not None:
                checkpoint.attach_metrics(engine.obs.metrics)
                restored = checkpoint.restore(engine)
                # a retry sails past the fault that killed attempt 0
                engine.fault_attempt = checkpoint.attempts()
                if restored and engine.obs.metrics is not None:
                    engine.obs.metrics.counter(
                        "resilience.phases_restored",
                        "checkpoint phases adopted instead of recomputed",
                    ).inc(len(restored))
            result = engine.run()
        except Exception as exc:  # a bad job must not sink the whole batch
            row["error"] = f"{type(exc).__name__}: {exc}"
            row["traceback"] = traceback.format_exc()
            if checkpoint is not None:
                if engine is not None:
                    # phases that finished before the crash are exactly
                    # what the next attempt skips
                    checkpoint.save_phases(engine)
                checkpoint.record_failure(row["error"])
                row["checkpoint_key"] = checkpoint.key
                row["attempts"] = checkpoint.attempts()
        else:
            if result.metrics:
                # jobs run in pool processes: metrics ride the row home,
                # and span lanes ship in Tracer transport form for the
                # parent CLI to absorb onto one timeline
                row["metrics"] = result.metrics
            if engine.obs.tracer.enabled:
                row["spans"] = engine.obs.tracer.ship()
                row["timing_detail"] = dict(result.timing_detail)
            top = result.suggestions[0] if result.suggestions else None
            row.update(
                ok=True,
                return_value=result.return_value,
                n_threads=result.n_threads,
                total_instructions=result.total_instructions,
                deps=len(result.store),
                loops=len(result.loops),
                parallelizable_loops=sum(
                    1 for info in result.loops if info.is_parallelizable
                ),
                suggestions=len(result.suggestions),
                kinds=sorted({s.kind for s in result.suggestions}),
                top=(
                    {
                        "kind": top.kind,
                        "location": top.location,
                        "score": top.scores.combined if top.scores else 0.0,
                    }
                    if top
                    else None
                ),
            )
            row["phases_run"] = [
                phase
                for key, phase in _PHASE_TIMING_KEYS
                if key in engine.timing_detail
            ]
            if checkpoint is not None:
                row["checkpoint_key"] = checkpoint.key
                row["attempts"] = checkpoint.attempts()
                row["resumed"] = bool(restored)
                row["phases_restored"] = restored
                checkpoint.save_phases(engine)
                done = dict(row)
                done["seconds"] = round(time.perf_counter() - t0, 3)
                checkpoint.save_result(done)
    finally:
        if lock is not None and lock.held:
            lock.release()
        if checkpoint is not None and checkpoint.store.counters:
            row["store_counters"] = dict(checkpoint.store.counters)
    row["seconds"] = round(time.perf_counter() - t0, 3)
    return row


# -- quarantine bookkeeping (resume_dir-scoped) ------------------------


def _quarantine_path(resume_dir: str) -> str:
    return os.path.join(resume_dir, "quarantine.json")


def load_quarantine(resume_dir: str) -> dict:
    """``{job name: consecutive failure count}`` for this resume dir."""
    try:
        with open(_quarantine_path(resume_dir), "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return {}


def _save_quarantine(resume_dir: str, counts: dict) -> None:
    path = _quarantine_path(resume_dir)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(counts, f)
    os.replace(tmp, path)


def _apply_quarantine_deltas(
    resume_dir: str, succeeded: list, failed: list
) -> dict:
    """Locked read-modify-write of the quarantine ledger.

    Concurrent batch runners each apply only their own per-name deltas
    (clear on success, +1 per failure) under a store-wide named lock, so
    counts accumulate instead of last-writer-winning.  Returns the
    ledger as written.
    """
    from repro.store import ArtifactStore

    store = ArtifactStore(resume_dir)
    with store.root_lock("quarantine"):
        counts = load_quarantine(resume_dir)
        for name in succeeded:
            counts.pop(name, None)
        for name in failed:
            counts[name] = counts.get(name, 0) + 1
        _save_quarantine(resume_dir, counts)
    return counts


def _job_worker(
    job: dict, resume_dir: Optional[str], queue, store_options=None
) -> None:
    """Process entry point of the per-job wall-clock-cap mode."""
    queue.put(run_job(job, resume_dir=resume_dir, store_options=store_options))


def _run_job_capped(
    job: dict, resume_dir: Optional[str], job_timeout: float,
    store_options: Optional[dict] = None,
) -> dict:
    """One job in its own process, killed past ``job_timeout`` seconds.

    A kill leaves the job's checkpoint directory at its last completed
    phase, so the timeout row is resumable like any other crash.
    """
    name = job.get("workload") or job.get("name", "<source>")
    ctx = multiprocessing.get_context()
    queue = ctx.SimpleQueue()
    proc = ctx.Process(
        target=_job_worker, args=(job, resume_dir, queue, store_options),
        daemon=True,
    )
    t0 = time.perf_counter()
    proc.start()
    proc.join(timeout=job_timeout)
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=5)
        if proc.is_alive():  # SIGTERM ignored: escalate
            proc.kill()
            proc.join()
        return {
            "name": name,
            "ok": False,
            "error": f"TimeoutError: job exceeded {job_timeout:g}s cap",
            "timed_out": True,
            "seconds": round(time.perf_counter() - t0, 3),
        }
    if not queue.empty():
        return queue.get()
    return {
        "name": name,
        "ok": False,
        "error": (
            f"RuntimeError: job process died with exit code "
            f"{proc.exitcode} before reporting a row"
        ),
        "seconds": round(time.perf_counter() - t0, 3),
    }


def run_batch(
    jobs: Iterable[dict],
    *,
    jobs_parallel: Optional[int] = None,
    resume_dir: Optional[str] = None,
    job_timeout: Optional[float] = None,
    quarantine_after: int = 3,
    store_options: Optional[dict] = None,
) -> list[dict]:
    """Run every job; ``jobs_parallel`` > 1 uses a process pool.

    Rows come back in submission order regardless of completion order.
    ``resume_dir`` checkpoints per-job progress (see :func:`run_job`);
    ``job_timeout`` caps each job's wall clock by running it in its own
    process; with a ``resume_dir``, a job that has failed
    ``quarantine_after`` times is skipped with a ``quarantined`` row
    until its counter is cleared from ``quarantine.json``.
    ``store_options`` tunes the artifact store's lock backend (see
    :func:`run_job`).
    """
    jobs = list(jobs)
    if jobs_parallel is None:
        jobs_parallel = min(len(jobs), 4) or 1
    quarantine = load_quarantine(resume_dir) if resume_dir else {}

    runnable: list = []  # (original index, job)
    rows: list = [None] * len(jobs)
    for i, job in enumerate(jobs):
        name = job.get("workload") or job.get("name", "<source>")
        if quarantine.get(name, 0) >= quarantine_after:
            rows[i] = {
                "name": name,
                "ok": False,
                "quarantined": True,
                "error": (
                    f"quarantined after {quarantine[name]} failed "
                    f"attempts (clear quarantine.json to retry)"
                ),
                "seconds": 0.0,
            }
        else:
            runnable.append((i, job))

    if job_timeout is not None:
        # wall-clock caps need a dedicated process per job so a
        # runaway one can be killed without losing its siblings
        results = [
            _run_job_capped(job, resume_dir, job_timeout, store_options)
            for _, job in runnable
        ]
    elif jobs_parallel <= 1 or len(runnable) <= 1:
        results = [
            run_job(job, resume_dir=resume_dir, store_options=store_options)
            for _, job in runnable
        ]
    else:
        runner = functools.partial(
            run_job, resume_dir=resume_dir, store_options=store_options
        )
        with ProcessPoolExecutor(max_workers=jobs_parallel) as pool:
            results = list(pool.map(runner, (job for _, job in runnable)))

    succeeded: list = []
    failed: list = []
    for (i, _job), row in zip(runnable, results):
        rows[i] = row
        if resume_dir is not None:
            name = row.get("name", "<source>")
            (succeeded if row.get("ok") else failed).append(name)
    clears = [name for name in succeeded if name in quarantine]
    if resume_dir is not None and (failed or clears):
        # locked delta application: concurrent runners sharing this
        # resume_dir accumulate counts instead of last-writer-winning
        _apply_quarantine_deltas(resume_dir, clears, failed)
    return rows


def format_batch_table(rows: list[dict]) -> str:
    """Render batch rows as an aligned text table."""
    header = (
        f"{'workload':<16} {'ok':<3} {'loops':>5} {'par':>4} "
        f"{'sugg':>4} {'deps':>6} {'top suggestion':<32} {'s':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        if row["ok"]:
            top = row["top"]
            top_txt = (
                f"{top['kind']} {top['location']}" if top else "(none)"
            )
            flag = "y" if not row.get("resumed") else "r"
            lines.append(
                f"{row['name']:<16} {flag:<3} {row['loops']:>5} "
                f"{row['parallelizable_loops']:>4} {row['suggestions']:>4} "
                f"{row['deps']:>6} {top_txt:<32} {row['seconds']:>6.2f}"
            )
        else:
            lines.append(
                f"{row['name']:<16} {'n':<3} {row['error']}"
            )
    return "\n".join(lines)
