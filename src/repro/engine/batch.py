"""Batch discovery over many workloads (the ``repro batch`` backend).

Fans a list of jobs — registry workload names or raw MiniC/Python
sources — across
a :class:`concurrent.futures.ProcessPoolExecutor`.  Each worker runs a full
:class:`~repro.engine.core.DiscoveryEngine` pipeline and returns a compact
JSON-ready summary row, so a fleet of programs can be analysed in one
command and the rows aggregated without holding every trace in memory.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Optional

from repro.engine.config import DiscoveryConfig
from repro.engine.core import DiscoveryEngine


def job_for_workload(
    name: str, scale: int = 1, **overrides
) -> dict:
    """A batch job dict referencing a registry workload by name."""
    return {"workload": name, "scale": scale, "overrides": overrides}


def job_for_source(
    source: str, name: str = "<source>", frontend: str = "minic",
    **overrides
) -> dict:
    """A batch job dict carrying raw source text (MiniC or Python)."""
    return {
        "source": source,
        "name": name,
        "frontend": frontend,
        "overrides": overrides,
    }


def run_job(job: dict) -> dict:
    """Run one batch job to completion; never raises (errors become rows)."""
    t0 = time.perf_counter()
    name = job.get("workload") or job.get("name", "<source>")
    row = {"name": name, "ok": False}
    try:
        if "workload" in job:
            from repro.workloads import get_workload

            workload = get_workload(job["workload"])
            config = DiscoveryConfig(
                source=workload.source(job.get("scale", 1)),
                name=job["workload"],
                entry=workload.entry,
                frontend=workload.frontend,
                **job.get("overrides", {}),
            )
        else:
            config = DiscoveryConfig(
                source=job["source"],
                name=name,
                frontend=job.get("frontend", "minic"),
                **job.get("overrides", {}),
            )
        engine = DiscoveryEngine(config=config)
        result = engine.run()
    except Exception as exc:  # a bad job must not sink the whole batch
        row["error"] = f"{type(exc).__name__}: {exc}"
        row["traceback"] = traceback.format_exc()
    else:
        if result.metrics:
            # jobs run in pool processes: metrics ride the row home, and
            # span lanes ship in Tracer transport form for the parent
            # CLI to absorb onto one timeline
            row["metrics"] = result.metrics
        if engine.obs.tracer.enabled:
            row["spans"] = engine.obs.tracer.ship()
            row["timing_detail"] = dict(result.timing_detail)
        top = result.suggestions[0] if result.suggestions else None
        row.update(
            ok=True,
            return_value=result.return_value,
            n_threads=result.n_threads,
            total_instructions=result.total_instructions,
            deps=len(result.store),
            loops=len(result.loops),
            parallelizable_loops=sum(
                1 for info in result.loops if info.is_parallelizable
            ),
            suggestions=len(result.suggestions),
            kinds=sorted({s.kind for s in result.suggestions}),
            top=(
                {
                    "kind": top.kind,
                    "location": top.location,
                    "score": top.scores.combined if top.scores else 0.0,
                }
                if top
                else None
            ),
        )
    row["seconds"] = round(time.perf_counter() - t0, 3)
    return row


def run_batch(
    jobs: Iterable[dict],
    *,
    jobs_parallel: Optional[int] = None,
) -> list[dict]:
    """Run every job; ``jobs_parallel`` > 1 uses a process pool.

    Rows come back in submission order regardless of completion order.
    """
    jobs = list(jobs)
    if jobs_parallel is None:
        jobs_parallel = min(len(jobs), 4) or 1
    if jobs_parallel <= 1 or len(jobs) <= 1:
        return [run_job(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=jobs_parallel) as pool:
        return list(pool.map(run_job, jobs))


def format_batch_table(rows: list[dict]) -> str:
    """Render batch rows as an aligned text table."""
    header = (
        f"{'workload':<16} {'ok':<3} {'loops':>5} {'par':>4} "
        f"{'sugg':>4} {'deps':>6} {'top suggestion':<32} {'s':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        if row["ok"]:
            top = row["top"]
            top_txt = (
                f"{top['kind']} {top['location']}" if top else "(none)"
            )
            lines.append(
                f"{row['name']:<16} {'y':<3} {row['loops']:>5} "
                f"{row['parallelizable_loops']:>4} {row['suggestions']:>4} "
                f"{row['deps']:>6} {top_txt:<32} {row['seconds']:>6.2f}"
            )
        else:
            lines.append(
                f"{row['name']:<16} {'n':<3} {row['error']}"
            )
    return "\n".join(lines)
