"""Content-addressed job checkpoints (the resumable-batch backbone).

A :class:`JobCheckpoint` persists a discovery job's completed phase
artifacts under ``<root>/<key>/`` where the key is *content-addressed*:
``sha256(source)[:12] + "-" + sha256(config-minus-identity)[:12]``.  Two
jobs with the same source text and the same analysis-relevant config
share a key — display ``name`` and the test-only ``fault_plan`` /
``resilience`` supervision knobs deliberately do not participate, since
they change how a run recovers, never what it computes.

Layout per job::

    config.json     the full DiscoveryConfig (provenance / debugging)
    attempts.json   recorded failures; len() = next attempt ordinal
    trace.npz       the recorded event trace (chunk boundaries kept)
    sigs.json       the VM's interned loop-signature table
    profile.json    ProfileArtifact.to_dict()
    cus.json        CUArtifact.to_dict()
    detect.json     DetectArtifact.to_dict()
    rank.json       RankArtifact.to_dict()
    result.json     the finished batch row (presence = job complete)

Every write is atomic (tmp + ``os.replace``), so a crash mid-save never
leaves a truncated artifact: resume sees either the previous state or
the new one.  :meth:`JobCheckpoint.restore` installs the longest
available phase *prefix* into an engine via
:meth:`~repro.engine.core.DiscoveryEngine.adopt`; the engine's phase
caches then skip straight to the first missing phase.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from repro.engine.artifacts import (
    CUArtifact,
    DetectArtifact,
    ProfileArtifact,
    RankArtifact,
)
from repro.engine.config import DiscoveryConfig

#: phase name -> (artifact file, artifact class), in pipeline order
PHASE_FILES = (
    ("profile", "profile.json", ProfileArtifact),
    ("cus", "cus.json", CUArtifact),
    ("detect", "detect.json", DetectArtifact),
    ("rank", "rank.json", RankArtifact),
)

#: config fields that never affect what a run computes, only how it is
#: labelled or supervised — excluded from the checkpoint key
KEY_EXCLUDED_FIELDS = ("name", "fault_plan", "resilience")


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def job_key(config: DiscoveryConfig) -> str:
    """``source-hash × config-hash`` identity of one discovery job."""
    data = config.to_dict()
    source = data.pop("source") or ""
    for field in KEY_EXCLUDED_FIELDS:
        data.pop(field, None)
    canonical = json.dumps(data, sort_keys=True, default=str)
    return f"{_sha(source)[:12]}-{_sha(canonical)[:12]}"


def _write_atomic(path: str, payload: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
    os.replace(tmp, path)


def _write_json(path: str, data) -> None:
    _write_atomic(path, json.dumps(data))


def _read_json(path: str):
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class _SignatureDecoder:
    """Stands in for the profiling VM after a restore.

    Downstream phases only need ``loop_signature`` (the interned
    signature table); the VM itself is not reconstructable without
    re-running the program — which is exactly what resume avoids.
    """

    def __init__(self, sig_list) -> None:
        self._sig_list = [tuple(sig) for sig in sig_list]

    def loop_signature(self, sig_id: int) -> tuple:
        return self._sig_list[sig_id]


class JobCheckpoint:
    """Phase-artifact persistence for one content-addressed job."""

    def __init__(self, root: str, config: DiscoveryConfig) -> None:
        self.key = job_key(config)
        self.config = config
        self.dir = os.path.join(root, self.key)
        os.makedirs(self.dir, exist_ok=True)
        if not os.path.exists(self._path("config.json")):
            _write_json(self._path("config.json"), config.to_dict())

    def _path(self, name: str) -> str:
        return os.path.join(self.dir, name)

    # -- attempt bookkeeping -------------------------------------------

    def attempts(self) -> int:
        """How many recorded failures precede this attempt."""
        return len(_read_json(self._path("attempts.json")) or [])

    def record_failure(self, error: str) -> None:
        failures = _read_json(self._path("attempts.json")) or []
        failures.append({"error": error})
        _write_json(self._path("attempts.json"), failures)

    # -- saving --------------------------------------------------------

    def save_phases(self, engine) -> list:
        """Persist every phase artifact the engine has cached.

        Called after a run *and* after a failure — the phases that
        completed before a crash are exactly what resume skips.
        Returns the phase names newly written.
        """
        saved = []
        cached = {
            "profile": engine._profile,
            "cus": engine._cus,
            "detect": engine._detect,
            "rank": engine._rank,
        }
        for phase, filename, _cls in PHASE_FILES:
            artifact = cached[phase]
            if artifact is None or os.path.exists(self._path(filename)):
                continue
            if phase == "profile":
                self._save_trace_parts(artifact)
            _write_json(self._path(filename), artifact.to_dict())
            saved.append(phase)
        return saved

    def _save_trace_parts(self, profile: ProfileArtifact) -> None:
        from repro.runtime.events import save_trace

        trace_path = self._path("trace.npz")
        tmp = trace_path + ".tmp"
        save_trace(profile.trace, tmp)
        os.replace(tmp, trace_path)
        sig_list = list(getattr(profile.vm, "_sig_list", [()]))
        _write_json(self._path("sigs.json"), [list(s) for s in sig_list])

    def save_result(self, row: dict) -> None:
        """Mark the job complete; presence of result.json = done."""
        _write_json(self._path("result.json"), row)

    # -- loading -------------------------------------------------------

    def load_result(self) -> Optional[dict]:
        return _read_json(self._path("result.json"))

    def completed_phases(self) -> list:
        return [
            phase
            for phase, filename, _cls in PHASE_FILES
            if os.path.exists(self._path(filename))
        ]

    def restore(self, engine) -> list:
        """Adopt the longest persisted phase prefix; returns its names.

        The profile artifact is rehydrated with its trace, a rebuilt
        PET, and a :class:`_SignatureDecoder` shim in the ``vm`` slot;
        later phases re-enter exactly where the artifacts stop.
        """
        artifacts = {}
        restored = []
        for phase, filename, cls in PHASE_FILES:
            data = _read_json(self._path(filename))
            if data is None:
                break  # adopt() wants a prefix; stop at the first gap
            artifact = cls.from_dict(data)
            if phase == "profile":
                artifact = self._rehydrate_profile(artifact, engine)
                if artifact is None:
                    break
            artifacts[phase] = artifact
            restored.append(phase)
        if artifacts:
            engine.adopt(**artifacts)
        return restored

    def _rehydrate_profile(
        self, artifact: ProfileArtifact, engine
    ) -> Optional[ProfileArtifact]:
        from repro.profiler.pet import PETBuilder
        from repro.runtime.events import load_trace

        trace_path = self._path("trace.npz")
        sigs = _read_json(self._path("sigs.json"))
        if not os.path.exists(trace_path) or sigs is None:
            return None  # phase row without its trace: treat as missing
        trace = load_trace(trace_path)
        pet = PETBuilder()
        for chunk in trace.iter_chunks():
            pet.process_chunk(chunk)
        artifact.trace = trace
        artifact.pet = pet
        artifact.vm = _SignatureDecoder(sigs)
        artifact.module = engine.module
        return artifact
