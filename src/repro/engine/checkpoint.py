"""Content-addressed job checkpoints (the resumable-batch backbone).

A :class:`JobCheckpoint` persists a discovery job's completed phase
artifacts under ``<root>/<key>/`` where the key is *content-addressed*:
``sha256(source)[:12] + "-" + sha256(config-minus-identity)[:12]``.  Two
jobs with the same source text and the same analysis-relevant config
share a key — display ``name``, the test-only ``fault_plan`` /
``resilience`` supervision knobs, and the ``obs`` mode deliberately do
not participate, since they change how a run is labelled, recovered or
observed, never what it computes (the obs bench hard-gates the last).

Layout per job::

    config.json     the full DiscoveryConfig (provenance / debugging)
    attempts.json   recorded failures; len() = next attempt ordinal
    manifest.json   sha256 + size sidecar per artifact, last-access
    trace.npz       the recorded event trace (chunk boundaries kept)
    sigs.json       the VM's interned loop-signature table
    profile.json    ProfileArtifact.to_dict()
    cus.json        CUArtifact.to_dict()
    detect.json     DetectArtifact.to_dict()
    rank.json       RankArtifact.to_dict()
    result.json     the finished batch row (presence = job complete)

Storage rides :class:`repro.store.ArtifactStore`: every write happens
under the key's advisory writer lock with tmp-then-``os.replace``
publication and a sha256 manifest sidecar, so concurrent batch runners
sharing a ``resume_dir`` serialize per key instead of racing, and a
crash mid-save never leaves a truncated artifact under its final name.
:meth:`JobCheckpoint.restore` and :meth:`load_result` are
integrity-verified: a corrupt or truncated entry is quarantined to
``<key>/.corrupt-N/`` (counted on ``resilience.store.corrupt``) and
treated as missing — recomputed, never served.  ``restore`` installs
the longest *verified* phase prefix into an engine via
:meth:`~repro.engine.core.DiscoveryEngine.adopt`; the engine's phase
caches then skip straight to the first missing phase.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from repro.engine.artifacts import (
    CUArtifact,
    DetectArtifact,
    ProfileArtifact,
    RankArtifact,
)
from repro.engine.config import DiscoveryConfig
from repro.store import ArtifactStore

#: phase name -> (artifact file, artifact class), in pipeline order
PHASE_FILES = (
    ("profile", "profile.json", ProfileArtifact),
    ("cus", "cus.json", CUArtifact),
    ("detect", "detect.json", DetectArtifact),
    ("rank", "rank.json", RankArtifact),
)

#: config fields that never affect what a run computes, only how it is
#: labelled, supervised or observed — excluded from the checkpoint key
KEY_EXCLUDED_FIELDS = ("name", "fault_plan", "resilience", "obs")


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def job_key(config: DiscoveryConfig) -> str:
    """``source-hash × config-hash`` identity of one discovery job."""
    data = config.to_dict()
    source = data.pop("source") or ""
    for field in KEY_EXCLUDED_FIELDS:
        data.pop(field, None)
    canonical = json.dumps(data, sort_keys=True, default=str)
    return f"{_sha(source)[:12]}-{_sha(canonical)[:12]}"


def _read_json(path: str):
    """Read a JSON artifact; torn or invalid content is *missing*.

    A half-written file must never poison a resume, so decode errors
    degrade to ``None`` exactly like absence — the caller recomputes.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


class _SignatureDecoder:
    """Stands in for the profiling VM after a restore.

    Downstream phases only need ``loop_signature`` (the interned
    signature table); the VM itself is not reconstructable without
    re-running the program — which is exactly what resume avoids.
    """

    def __init__(self, sig_list) -> None:
        self._sig_list = [tuple(sig) for sig in sig_list]

    def loop_signature(self, sig_id: int) -> tuple:
        return self._sig_list[sig_id]


class JobCheckpoint:
    """Phase-artifact persistence for one content-addressed job.

    ``store_options`` (``lock_backend``, ``stale_after``,
    ``poll_interval``) forward to the underlying
    :class:`~repro.store.ArtifactStore`; an existing ``store`` may be
    shared instead so several checkpoints reuse one lock table.
    """

    def __init__(
        self,
        root: str,
        config: DiscoveryConfig,
        *,
        store: Optional[ArtifactStore] = None,
        store_options: Optional[dict] = None,
    ) -> None:
        self.key = job_key(config)
        self.config = config
        if store is None:
            store = ArtifactStore(
                root, faults=config.fault_plan, **(store_options or {})
            )
        self.store = store
        self.dir = store.key_dir(self.key)
        os.makedirs(self.dir, exist_ok=True)

    def _path(self, name: str) -> str:
        return os.path.join(self.dir, name)

    # -- locking / metrics ---------------------------------------------

    def lock(self):
        """This key's (reentrant) writer lock — hold it to dedupe work."""
        return self.store.lock(self.key)

    def attach_metrics(self, registry) -> None:
        """Route ``store.*`` counters into an obs metrics registry."""
        self.store.attach_metrics(registry)

    def _ensure_config(self) -> None:
        """Record config provenance once (called from locked write paths)."""
        if not os.path.exists(self._path("config.json")):
            self.store.put_text(
                self.key, "config.json", json.dumps(self.config.to_dict())
            )

    # -- attempt bookkeeping -------------------------------------------

    def attempts(self) -> int:
        """How many recorded failures precede this attempt."""
        failures = _read_json(self._path("attempts.json"))
        return len(failures) if isinstance(failures, list) else 0

    def record_failure(self, error: str) -> None:
        """Append a failure record (locked read-modify-write)."""
        with self.lock():
            self._ensure_config()
            failures = _read_json(self._path("attempts.json"))
            if not isinstance(failures, list):
                failures = []
            failures.append({"error": error})
            self.store.put_text(self.key, "attempts.json", json.dumps(failures))

    # -- saving --------------------------------------------------------

    def save_phases(self, engine) -> list:
        """Persist every phase artifact the engine has cached.

        Called after a run *and* after a failure — the phases that
        completed before a crash are exactly what resume skips.
        Returns the phase names newly written.
        """
        saved = []
        cached = {
            "profile": engine._profile,
            "cus": engine._cus,
            "detect": engine._detect,
            "rank": engine._rank,
        }
        with self.lock():
            self._ensure_config()
            for phase, filename, _cls in PHASE_FILES:
                artifact = cached[phase]
                if artifact is None or os.path.exists(self._path(filename)):
                    continue
                if phase == "profile":
                    self._save_trace_parts(artifact)
                self.store.put_text(
                    self.key, filename, json.dumps(artifact.to_dict())
                )
                saved.append(phase)
        return saved

    def _save_trace_parts(self, profile: ProfileArtifact) -> None:
        from repro.runtime.events import save_trace

        self.store.put_file(
            self.key, "trace.npz", lambda tmp: save_trace(profile.trace, tmp)
        )
        sig_list = list(getattr(profile.vm, "_sig_list", [()]))
        self.store.put_text(
            self.key, "sigs.json", json.dumps([list(s) for s in sig_list])
        )

    def save_result(self, row: dict) -> None:
        """Mark the job complete; presence of result.json = done."""
        with self.lock():
            self._ensure_config()
            self.store.put_text(self.key, "result.json", json.dumps(row))

    # -- loading -------------------------------------------------------

    def load_result(self, *, heal: bool = False) -> Optional[dict]:
        """The saved completed row, checksum-verified.

        Optimistic (unlocked) callers get ``None`` on any mismatch;
        with ``heal`` (caller holds the key lock) a confirmed-corrupt
        row is quarantined so the job transparently recomputes.
        """
        row = self.store.read_json(self.key, "result.json", heal=heal)
        if isinstance(row, dict):
            self.store.touch(self.key)
            return row
        return None

    def completed_phases(self) -> list:
        return [
            phase
            for phase, filename, _cls in PHASE_FILES
            if os.path.exists(self._path(filename))
        ]

    def restore(self, engine) -> list:
        """Adopt the longest *verified* persisted phase prefix.

        Every artifact read is checked against its manifest sha256; a
        corrupt or truncated entry is quarantined (``.corrupt-N/``) and
        ends the prefix there, so the engine recomputes from the last
        trustworthy phase.  The profile artifact is rehydrated with its
        trace, a rebuilt PET, and a :class:`_SignatureDecoder` shim in
        the ``vm`` slot; later phases re-enter exactly where the
        artifacts stop.  Returns the restored phase names.
        """
        artifacts = {}
        restored = []
        with self.lock():
            for phase, filename, cls in PHASE_FILES:
                data = self.store.read_json(self.key, filename, heal=True)
                if data is None:
                    break  # adopt() wants a prefix; stop at the first gap
                artifact = cls.from_dict(data)
                if phase == "profile":
                    artifact = self._rehydrate_profile(artifact, engine)
                    if artifact is None:
                        break
                artifacts[phase] = artifact
                restored.append(phase)
        if artifacts:
            engine.adopt(**artifacts)
        return restored

    def _rehydrate_profile(
        self, artifact: ProfileArtifact, engine
    ) -> Optional[ProfileArtifact]:
        from repro.profiler.pet import PETBuilder
        from repro.runtime.events import load_trace

        trace_path = self.store.artifact_path(self.key, "trace.npz", heal=True)
        sigs = self.store.read_json(self.key, "sigs.json", heal=True)
        if trace_path is None or sigs is None:
            return None  # phase row without its trace: treat as missing
        trace = load_trace(trace_path)
        pet = PETBuilder()
        for chunk in trace.iter_chunks():
            pet.process_chunk(chunk)
        artifact.trace = trace
        artifact.pet = pet
        artifact.vm = _SignatureDecoder(sigs)
        artifact.module = engine.module
        return artifact
