"""Event-pipeline benchmark: tuple vs. columnar chunk formats.

Seeds the repository's performance trajectory with a reproducible
measurement of the hottest path — pushing the instrumentation event stream
through the dependence profiler:

* **events/sec** — a workload's trace is recorded once per format, then
  profiled with a fresh :class:`~repro.profiler.serial.SerialProfiler`
  (best of ``reps`` passes).  The tuple path is the legacy per-event
  tuple representation; the columnar path is the packed
  :class:`~repro.runtime.events.EventChunk` pipeline.
* **peak memory** — ``tracemalloc`` peaks for recording each trace
  representation (the resident columnar/tuple footprint), plus the
  process-wide ``ru_maxrss`` snapshot for context.
* **equivalence** — every measured pair also asserts the two paths build
  the identical :class:`~repro.profiler.deps.DependenceStore`.

``run_pipeline_bench`` returns a JSON-ready dict; the ``repro bench``
subcommand and ``benchmarks/bench_pipeline.py`` both drive it and write
``BENCH_pipeline.json``.
"""

from __future__ import annotations

import resource
import time
import tracemalloc

from repro.profiler.serial import SerialProfiler
from repro.profiler.shadow import PerfectShadow
from repro.runtime.events import TraceSink
from repro.runtime.interpreter import VM

#: default measurement set: one textbook, one NAS, one BOTS workload with
#: loop-nest shapes the columnar fast path is known to serve well
DEFAULT_WORKLOADS = ("pi", "EP", "fft")


def _geomean(values: list[float]) -> float:
    import math

    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _record(module, entry: str, chunk_format: str, chunk_size: int):
    """Run the instrumented VM once; returns (trace, vm, wall, peak_bytes)."""
    trace = TraceSink()
    vm = VM(module, trace, chunk_format=chunk_format, chunk_size=chunk_size)
    tracemalloc.start()
    t0 = time.perf_counter()
    vm.run(entry)
    wall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return trace, vm, wall, peak


def _profile(trace, vm, reps: int) -> tuple[SerialProfiler, float]:
    """Best-of-``reps`` profiling wall time over a recorded trace."""
    best = float("inf")
    profiler = None
    for _ in range(reps):
        profiler = SerialProfiler(PerfectShadow(), vm.loop_signature)
        t0 = time.perf_counter()
        for chunk in trace.chunks:
            profiler.process_chunk(chunk)
        best = min(best, time.perf_counter() - t0)
    return profiler, best


def bench_workload(
    name: str,
    *,
    scale: int = 1,
    reps: int = 3,
    chunk_size: int = 4096,
) -> dict:
    """Measure one workload; returns a JSON-ready row."""
    from repro.workloads import get_workload

    workload = get_workload(name)
    module = workload.compile(scale)

    row: dict = {"workload": name, "scale": scale}
    stores = {}
    for chunk_format in ("tuple", "columnar"):
        trace, vm, record_wall, record_peak = _record(
            module, workload.entry, chunk_format, chunk_size
        )
        profiler, profile_wall = _profile(trace, vm, reps)
        stores[chunk_format] = profiler.store.to_dict()
        events = len(trace)
        row[chunk_format] = {
            "events": events,
            "profile_seconds": profile_wall,
            "events_per_sec": events / profile_wall if profile_wall else 0.0,
            "record_seconds": record_wall,
            "record_peak_bytes": record_peak,
            "trace_nbytes": trace.nbytes,
            "deps": profiler.stats.deps_built,
        }
    row["stores_identical"] = stores["tuple"] == stores["columnar"]
    tuple_eps = row["tuple"]["events_per_sec"]
    row["throughput_ratio"] = (
        row["columnar"]["events_per_sec"] / tuple_eps if tuple_eps else 0.0
    )
    row["trace_bytes_ratio"] = (
        row["tuple"]["trace_nbytes"] / row["columnar"]["trace_nbytes"]
        if row["columnar"]["trace_nbytes"]
        else 0.0
    )
    return row


def run_pipeline_bench(
    workloads=None,
    *,
    scale: int = 1,
    reps: int = 3,
    quick: bool = False,
    chunk_size: int = 4096,
) -> dict:
    """Benchmark the event pipeline on several workloads.

    ``quick`` reduces repetitions for the CI smoke gate.  The result's
    ``throughput_ratio_geomean`` is the headline number: columnar events/sec
    over tuple events/sec, geometric mean across workloads.
    """
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    if quick:
        reps = max(2, reps - 1)
    rows = [
        bench_workload(name, scale=scale, reps=reps, chunk_size=chunk_size)
        for name in names
    ]
    ratios = [row["throughput_ratio"] for row in rows]
    return {
        "bench": "pipeline",
        "workloads": rows,
        "throughput_ratio_geomean": _geomean(ratios),
        "throughput_ratio_min": min(ratios) if ratios else 0.0,
        "trace_bytes_ratio_geomean": _geomean(
            [row["trace_bytes_ratio"] for row in rows]
        ),
        "all_stores_identical": all(r["stores_identical"] for r in rows),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "quick": quick,
    }


def format_pipeline_table(result: dict) -> str:
    """Fixed-width rendering in the benchmarks/out house style."""
    header = (
        f"{'workload':12s} {'events':>8s} {'tuple eps':>12s} "
        f"{'columnar eps':>13s} {'ratio':>6s} {'bytes/evt t':>11s} "
        f"{'bytes/evt c':>11s} {'identical':>9s}"
    )
    lines = [header, "-" * len(header)]
    for row in result["workloads"]:
        tup, col = row["tuple"], row["columnar"]
        lines.append(
            f"{row['workload']:12s} {tup['events']:8d} "
            f"{tup['events_per_sec']:12.0f} {col['events_per_sec']:13.0f} "
            f"{row['throughput_ratio']:6.2f} "
            f"{tup['trace_nbytes'] / max(1, tup['events']):11.1f} "
            f"{col['trace_nbytes'] / max(1, col['events']):11.1f} "
            f"{str(row['stores_identical']):>9s}"
        )
    lines.append(
        f"geomean ratio {result['throughput_ratio_geomean']:.2f}  "
        f"(min {result['throughput_ratio_min']:.2f}); trace bytes "
        f"{result['trace_bytes_ratio_geomean']:.2f}x smaller columnar; "
        f"peak RSS {result['ru_maxrss_kb']} kB"
    )
    return "\n".join(lines)
