"""Performance benchmarks: the event pipeline, VM dispatch, detection.

Six suites live here:

* **pipeline** (:func:`run_pipeline_bench`) — tuple vs. columnar chunk
  formats through the dependence profiler (the PR-2 trajectory seed,
  ``BENCH_pipeline.json``).
* **vm** (:func:`run_vm_bench`) — switch vs. compiled dispatch
  (:mod:`repro.runtime.compile`): instrumented recording throughput with
  bit-identical traces, untraced execution (the validate/scheduler
  path), and end-to-end engine ``profile()`` wall time
  (``BENCH_vm.json``).
* **detect** (:func:`run_detect_bench`) — loop vs. vectorized vs.
  multi-process sharded detection cores (:mod:`repro.profiler.sharded`):
  detection throughput over a recorded trace with per-run peak memory
  (tracemalloc + detector accounting), a bit-identical-store
  equivalence sweep across the whole workload registry (threaded
  included), sampling-mode precision/recall, and end-to-end engine
  ``profile()`` wall time per core (``BENCH_detect.json``).  The
  large-scale leg (:func:`run_detect_scale_bench`) drives the cores
  with a generated 10⁸-event synthetic stream and gates the out-of-core
  claim on recorded RSS, with the sharded speedup gate conditional on
  available CPUs.
* **obs** (:func:`run_obs_bench`) — the observability layer
  (:mod:`repro.obs`): engine ``profile()`` wall time with obs off /
  metrics-only / full tracing, bit-identical dependence stores across
  all three modes, and the CI-gated *disabled* overhead bound —
  calibrated per-site guard cost times observed site activations, held
  under 2 % of the obs-off wall time (``BENCH_obs.json``).
* **faults** (:func:`run_faults_bench`) — the resilience layer
  (:mod:`repro.resilience`, docs/RESILIENCE.md): deterministic fault
  matrix (kill / hang / drop-ack / corrupt-payload at first, middle and
  last batches, plus seeded scattered mixes) against the supervised
  sharded detection core, gating that every eventually-successful
  schedule recovers without raising and merges a store bit-identical to
  the serial vectorized reference, and that an unrecoverable schedule
  degrades to in-process detection — still bit-identical — instead of
  failing (``BENCH_faults.json``).
* **store** (:func:`run_store_bench`) — the crash-safe artifact store
  (:mod:`repro.store`): concurrent batch runners on one shared resume
  dir under kill-mid-write, torn-write, stale-lease and checksum-flip
  schedules, gating that every schedule converges to a store
  bit-identical to a clean single-writer reference, that corrupt
  entries are healed (quarantined + recomputed, never served), that no
  torn read or leftover tmp survives, and that concurrent writers
  dedupe instead of double-computing (``BENCH_store.json``).

The pipeline suite measures the hottest consumer path — pushing the
instrumentation event stream through the dependence profiler:

* **events/sec** — a workload's trace is recorded once per format, then
  profiled with a fresh :class:`~repro.profiler.serial.SerialProfiler`
  (best of ``reps`` passes).  The tuple path is the legacy per-event
  tuple representation; the columnar path is the packed
  :class:`~repro.runtime.events.EventChunk` pipeline.
* **peak memory** — ``tracemalloc`` peaks for recording each trace
  representation (the resident columnar/tuple footprint), plus the
  process-wide ``ru_maxrss`` snapshot for context.
* **equivalence** — every measured pair also asserts the two paths build
  the identical :class:`~repro.profiler.deps.DependenceStore`.

``run_pipeline_bench`` returns a JSON-ready dict; the ``repro bench``
subcommand and ``benchmarks/bench_pipeline.py`` both drive it and write
``BENCH_pipeline.json``.
"""

from __future__ import annotations

import resource
import time
import tracemalloc
import warnings
from typing import Optional

from repro.profiler.serial import SerialProfiler
from repro.resilience.faults import KILL_EXIT_CODE
from repro.profiler.shadow import PerfectShadow, SignatureShadow
from repro.runtime.events import TraceSink
from repro.runtime.interpreter import VM

#: default measurement set: one textbook, one NAS, one BOTS workload with
#: loop-nest shapes the columnar fast path is known to serve well
DEFAULT_WORKLOADS = ("pi", "EP", "fft")


def _geomean(values: list[float]) -> float:
    import math

    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _record(module, entry: str, chunk_format: str, chunk_size: int):
    """Run the instrumented VM once; returns (trace, vm, wall, peak_bytes)."""
    trace = TraceSink()
    vm = VM(module, trace, chunk_format=chunk_format, chunk_size=chunk_size)
    tracemalloc.start()
    t0 = time.perf_counter()
    vm.run(entry)
    wall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return trace, vm, wall, peak


def _profile(trace, vm, reps: int) -> tuple[SerialProfiler, float]:
    """Best-of-``reps`` profiling wall time over a recorded trace."""
    best = float("inf")
    profiler = None
    for _ in range(reps):
        profiler = SerialProfiler(PerfectShadow(), vm.loop_signature)
        t0 = time.perf_counter()
        for chunk in trace.chunks:
            profiler.process_chunk(chunk)
        best = min(best, time.perf_counter() - t0)
    return profiler, best


def bench_workload(
    name: str,
    *,
    scale: int = 1,
    reps: int = 3,
    chunk_size: int = 4096,
) -> dict:
    """Measure one workload; returns a JSON-ready row."""
    from repro.workloads import get_workload

    workload = get_workload(name)
    module = workload.compile(scale)

    row: dict = {"workload": name, "scale": scale}
    stores = {}
    for chunk_format in ("tuple", "columnar"):
        trace, vm, record_wall, record_peak = _record(
            module, workload.entry, chunk_format, chunk_size
        )
        profiler, profile_wall = _profile(trace, vm, reps)
        stores[chunk_format] = profiler.store.to_dict()
        events = len(trace)
        row[chunk_format] = {
            "events": events,
            "profile_seconds": profile_wall,
            "events_per_sec": events / profile_wall if profile_wall else 0.0,
            "record_seconds": record_wall,
            "record_peak_bytes": record_peak,
            "trace_nbytes": trace.nbytes,
            "deps": profiler.stats.deps_built,
        }
    row["stores_identical"] = stores["tuple"] == stores["columnar"]
    tuple_eps = row["tuple"]["events_per_sec"]
    row["throughput_ratio"] = (
        row["columnar"]["events_per_sec"] / tuple_eps if tuple_eps else 0.0
    )
    row["trace_bytes_ratio"] = (
        row["tuple"]["trace_nbytes"] / row["columnar"]["trace_nbytes"]
        if row["columnar"]["trace_nbytes"]
        else 0.0
    )
    return row


def run_pipeline_bench(
    workloads=None,
    *,
    scale: int = 1,
    reps: int = 3,
    quick: bool = False,
    chunk_size: int = 4096,
) -> dict:
    """Benchmark the event pipeline on several workloads.

    ``quick`` reduces repetitions for the CI smoke gate.  The result's
    ``throughput_ratio_geomean`` is the headline number: columnar events/sec
    over tuple events/sec, geometric mean across workloads.
    """
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    if quick:
        reps = max(2, reps - 1)
    rows = [
        bench_workload(name, scale=scale, reps=reps, chunk_size=chunk_size)
        for name in names
    ]
    ratios = [row["throughput_ratio"] for row in rows]
    return {
        "bench": "pipeline",
        "workloads": rows,
        "throughput_ratio_geomean": _geomean(ratios),
        "throughput_ratio_min": min(ratios) if ratios else 0.0,
        "trace_bytes_ratio_geomean": _geomean(
            [row["trace_bytes_ratio"] for row in rows]
        ),
        "all_stores_identical": all(r["stores_identical"] for r in rows),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "quick": quick,
    }


# ---------------------------------------------------------------------------
# the VM dispatch suite
# ---------------------------------------------------------------------------

#: the VM bench set: three loop-nest workloads whose hot path is
#: dispatch bound — one textbook, one NAS, one apps-chapter program —
#: plus the call/ret-heavy fft recursion, gated since the untraced
#: variant went lazy (closures build on first execution, so short
#: recursive runs no longer pay for the whole instruction space).  The
#: gated trajectory number is their geomean.
VM_BENCH_WORKLOADS = ("pi", "EP", "mandelbrot", "fft")

#: extra rows reported alongside but not gated
VM_BENCH_EXTRA = ()


def _trace_rows(trace):
    import numpy as np

    return np.concatenate([chunk.rows for chunk in trace.chunks])


def bench_vm_workload(
    name: str,
    *,
    scale: int = 1,
    reps: int = 3,
    chunk_size: int = 4096,
    gated: bool = True,
) -> dict:
    """Measure one workload under both dispatch cores."""
    import numpy as np

    from repro.workloads import get_workload

    workload = get_workload(name)
    module = workload.compile(scale)
    row: dict = {"workload": name, "scale": scale, "gated": gated}

    # -- instrumented recording (trace production) ---------------------
    # timed samples run with the collector paused (and a collect()
    # beforehand): the retained traces make every gen-0 pass scan a
    # large heap, which otherwise dominates short recordings
    import gc

    traces = {}
    states = {}
    for dispatch in ("switch", "compiled"):
        best = float("inf")
        first = None
        for _ in range(reps):
            trace = TraceSink()
            vm = VM(
                module, trace, chunk_format="columnar",
                dispatch=dispatch, chunk_size=chunk_size,
            )
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                vm.run(workload.entry)
                wall = time.perf_counter() - t0
            finally:
                gc.enable()
            if first is None:
                first = wall  # includes one-time closure compilation
            best = min(best, wall)
        traces[dispatch] = (trace, vm)
        states[dispatch] = (vm.memory, vm.output, vm.total_steps)
        row[dispatch] = {
            "record_seconds": best,
            "first_run_seconds": first,
            "events": len(trace),
            "events_per_sec": len(trace) / best if best else 0.0,
        }
    rows_s = _trace_rows(traces["switch"][0])
    rows_c = _trace_rows(traces["compiled"][0])
    row["trace_identical"] = bool(
        np.array_equal(rows_s, rows_c)
        and traces["switch"][1].strings.values
        == traces["compiled"][1].strings.values
        and [len(c) for c in traces["switch"][0].chunks]
        == [len(c) for c in traces["compiled"][0].chunks]
    )
    row["state_identical"] = states["switch"] == states["compiled"]
    row["steps"] = states["compiled"][2]
    row["traced_speedup"] = (
        row["switch"]["record_seconds"] / row["compiled"]["record_seconds"]
        if row["compiled"]["record_seconds"]
        else 0.0
    )

    # -- untraced execution (validate / scheduler path) ----------------
    # pilot runs warm the codegen caches and size an inner loop so every
    # timed sample is tens of milliseconds; the cores are then sampled
    # interleaved, so host frequency drift cannot bias the ratio the way
    # sequential per-core blocks would — short recursive workloads (fft)
    # were otherwise pure scheduler noise
    import statistics

    # CPU time, not wall: the untraced legs are single-threaded and
    # CPU bound, and on shared hosts wall-clock scheduler noise easily
    # exceeds the few milliseconds a short recursion (fft) runs for
    inner = {}
    samples: dict[str, list] = {"switch": [], "compiled": []}
    for dispatch in ("switch", "compiled"):
        vm = VM(module, None, dispatch=dispatch, instrument=False)
        t0 = time.process_time()
        vm.run(workload.entry)
        pilot = time.process_time() - t0
        inner[dispatch] = max(1, int(0.05 / max(pilot, 1e-4)))
    for _ in range(max(3, reps)):
        for dispatch in ("switch", "compiled"):
            vms = [
                VM(module, None, dispatch=dispatch, instrument=False)
                for _ in range(inner[dispatch])
            ]
            gc.collect()
            gc.disable()
            try:
                t0 = time.process_time()
                for vm in vms:
                    vm.run(workload.entry)
                samples[dispatch].append(
                    (time.process_time() - t0) / inner[dispatch]
                )
            finally:
                gc.enable()
    row["untraced"] = {
        "switch_seconds": statistics.median(samples["switch"]),
        "compiled_seconds": statistics.median(samples["compiled"]),
        # per-round ratios: adjacent samples see the same host state, so
        # frequency drift cancels instead of crowning a lucky baseline
        "speedup": statistics.median(
            s / c for s, c in zip(samples["switch"], samples["compiled"])
        ),
    }

    # -- end-to-end engine profile() -----------------------------------
    from repro.engine.config import DiscoveryConfig
    from repro.engine.core import DiscoveryEngine

    profile_row: dict = {}
    stores = {}
    best = {"switch": float("inf"), "compiled": float("inf")}
    stats = {}
    # dispatches interleave per repetition so host-speed drift hits
    # both sides of the ratio equally
    for _ in range(reps):
        for dispatch in ("switch", "compiled"):
            engine = DiscoveryEngine(
                config=DiscoveryConfig(
                    source=workload.source(scale), name=name,
                    entry=workload.entry, dispatch=dispatch,
                )
            )
            artifact = engine.profile()
            best[dispatch] = min(best[dispatch], engine.timings["profile"])
            stats[dispatch] = artifact.stats
            stores[dispatch] = artifact.store.to_dict()
    for dispatch in ("switch", "compiled"):
        profile_row[f"{dispatch}_seconds"] = best[dispatch]
        profile_row[f"{dispatch}_events_per_sec"] = stats[dispatch][
            "vm_events_per_sec"
        ]
    profile_row["speedup"] = (
        profile_row["switch_seconds"] / profile_row["compiled_seconds"]
        if profile_row["compiled_seconds"]
        else 0.0
    )
    profile_row["stores_identical"] = (
        stores["switch"] == stores["compiled"]
    )
    row["profile"] = profile_row
    return row


def run_vm_bench(
    workloads=None,
    *,
    scale: int = 1,
    reps: int = 3,
    quick: bool = False,
    chunk_size: int = 4096,
) -> dict:
    """Benchmark the dispatch cores; geomeans computed over gated rows.

    The headline numbers: ``traced_speedup_geomean`` (instrumented
    recording, compiled over switch, traces bit-identical) and
    ``profile_speedup_geomean`` (end-to-end engine profile phase).
    """
    if workloads:
        names = [(w, True) for w in workloads]
    else:
        names = [(w, True) for w in VM_BENCH_WORKLOADS] + [
            (w, False) for w in VM_BENCH_EXTRA
        ]
    if quick:
        reps = max(2, reps - 1)
    rows = [
        bench_vm_workload(
            name, scale=scale, reps=reps, chunk_size=chunk_size,
            gated=gated,
        )
        for name, gated in names
    ]
    gated_rows = [r for r in rows if r["gated"]]
    traced = [r["traced_speedup"] for r in gated_rows]
    untraced = [r["untraced"]["speedup"] for r in gated_rows]
    profile = [r["profile"]["speedup"] for r in gated_rows]
    return {
        "bench": "vm",
        "workloads": rows,
        "gated": [r["workload"] for r in gated_rows],
        "traced_speedup_geomean": _geomean(traced),
        "traced_speedup_min": min(traced) if traced else 0.0,
        "untraced_speedup_geomean": _geomean(untraced),
        "profile_speedup_geomean": _geomean(profile),
        "all_traces_identical": all(
            r["trace_identical"] and r["state_identical"] for r in rows
        ),
        "all_stores_identical": all(
            r["profile"]["stores_identical"] for r in rows
        ),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "quick": quick,
    }


# ---------------------------------------------------------------------------
# the detection-core suite
# ---------------------------------------------------------------------------

#: the detection bench trio: loop-nest workloads whose profile cost is
#: detection bound — one textbook, one NAS, one apps-chapter program.
#: The gated trajectory numbers are their geomeans.
DETECT_BENCH_WORKLOADS = ("matmul", "CG", "mandelbrot")

#: reported alongside but not gated: deep recursion is eviction- and
#: frontier-churn bound, the detection core's least favourable regime
DETECT_BENCH_EXTRA = ("fft",)

#: the detect suite measures at a larger scale than the other suites:
#: detection throughput is the scaling story, and sub-100k-event traces
#: mostly measure fixed costs
DETECT_BENCH_SCALE = 2


def _detector(mode: str, vm, signature_slots=None, *, workers=2,
              sampling=None):
    from repro.profiler.sharded import ShardedDetector
    from repro.profiler.vectorized import VectorizedProfiler

    if mode == "sharded":
        return ShardedDetector(
            signature_slots, vm.loop_signature,
            n_shards=workers, sampling=sampling,
        )
    if mode == "vectorized":
        return VectorizedProfiler(signature_slots, vm.loop_signature)
    shadow = (
        PerfectShadow()
        if signature_slots is None
        else SignatureShadow(signature_slots)
    )
    return SerialProfiler(shadow, vm.loop_signature)


def _detect_trace(trace, vm, mode: str, reps: int):
    """Best-of-``reps`` detection wall time over a recorded trace."""
    best = float("inf")
    profiler = None
    for _ in range(reps):
        profiler = _detector(mode, vm)
        t0 = time.perf_counter()
        for chunk in trace.chunks:
            profiler.process_chunk(chunk)
        if mode == "vectorized":
            profiler.flush()
        best = min(best, time.perf_counter() - t0)
    return profiler, best


def _finish_detector(profiler) -> None:
    """Complete whatever 'all events seen' means for this detector."""
    finalize = getattr(profiler, "finalize", None)
    if finalize is not None:
        finalize()
    else:
        flush = getattr(profiler, "flush", None)
        if flush is not None:
            flush()


def _measured_detect_pass(trace, vm, mode: str, **kwargs) -> dict:
    """One untimed detection pass under tracemalloc.

    Peak-memory probes run separately from the timed loops on purpose:
    tracemalloc's allocation hooks distort throughput, so the timing
    samples stay clean and this pass pays the bookkeeping.  Returns the
    tracemalloc peak (python-level allocations of this process) and the
    detector's own ``memory_bytes`` accounting (which, for the sharded
    core, includes the merged worker-side totals).
    """
    profiler = _detector(mode, vm, **kwargs)
    tracemalloc.start()
    for chunk in trace.chunks:
        profiler.process_chunk(chunk)
    _finish_detector(profiler)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "peak_tracemalloc_bytes": peak,
        "memory_bytes": profiler.memory_bytes(),
    }


def bench_detect_workload(
    name: str,
    *,
    scale: int = DETECT_BENCH_SCALE,
    reps: int = 3,
    chunk_size: int = 4096,
    gated: bool = True,
    sharded_workers: int = 2,
    sampling=None,
) -> dict:
    """Measure one workload under the detection cores.

    ``loop`` vs ``vectorized`` is the gated interleaved comparison; the
    multi-process ``sharded`` core is measured alongside (store checked
    identical against vectorized, throughput reported not gated — on a
    single hot trace the fork/IPC overhead is the point of the
    measurement).  ``sampling`` adds a lossy sharded run scored with
    :func:`repro.profiler.deps.store_accuracy` against the exact store.
    """
    from repro.workloads import get_workload

    workload = get_workload(name)
    module = workload.compile(scale)
    row: dict = {"workload": name, "scale": scale, "gated": gated}

    trace = TraceSink()
    vm = VM(module, trace, chunk_format="columnar", chunk_size=chunk_size)
    vm.run(workload.entry)
    events = len(trace)
    row["events"] = events

    # cores sample interleaved per round with the collector paused (the
    # retained trace makes gen passes expensive and host-speed drift
    # would otherwise bias whichever core ran second); the speedup is
    # the median of per-round ratios, so adjacent samples see the same
    # host state
    import gc
    import statistics

    stores = {}
    counts = {}
    samples: dict[str, list] = {"loop": [], "vectorized": []}
    for _ in range(max(3, reps)):
        for mode in ("loop", "vectorized"):
            profiler = _detector(mode, vm)
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                for chunk in trace.chunks:
                    profiler.process_chunk(chunk)
                if mode == "vectorized":
                    profiler.flush()
                samples[mode].append(time.perf_counter() - t0)
            finally:
                gc.enable()
            stores[mode] = profiler.store.to_dict()
            counts[mode] = (
                len(profiler.store), profiler.store.raw_occurrences,
            )
    for mode in ("loop", "vectorized"):
        wall = statistics.median(samples[mode])
        row[mode] = {
            "detect_seconds": wall,
            "events_per_sec": events / wall if wall else 0.0,
            "deps": counts[mode][0],
            "raw_occurrences": counts[mode][1],
        }
    row["stores_identical"] = stores["loop"] == stores["vectorized"]
    row["detect_speedup"] = statistics.median(
        lo / ve
        for lo, ve in zip(samples["loop"], samples["vectorized"])
    )

    # -- per-run peak memory (untimed probe passes) --------------------
    for mode in ("loop", "vectorized"):
        row[mode].update(_measured_detect_pass(trace, vm, mode))

    # -- the multi-process sharded core --------------------------------
    from repro.profiler.deps import DependenceStore, store_accuracy

    sharded = _detector("sharded", vm, workers=sharded_workers)
    gc.collect()
    t0 = time.perf_counter()
    for chunk in trace.chunks:
        sharded.process_chunk(chunk)
    sharded.finalize()
    wall = time.perf_counter() - t0
    row["sharded"] = {
        "workers": sharded_workers,
        "detect_seconds": wall,
        "events_per_sec": events / wall if wall else 0.0,
        "deps": len(sharded.store),
        "store_identical": sharded.store.to_dict() == stores["vectorized"],
        "memory_bytes": sharded.memory_bytes(),
        "speedup_vs_vectorized": (
            statistics.median(samples["vectorized"]) / wall if wall else 0.0
        ),
    }

    if sampling is not None:
        exact_store = DependenceStore.from_dict(stores["vectorized"])
        sampled = _detector(
            "sharded", vm, workers=sharded_workers, sampling=sampling
        )
        t0 = time.perf_counter()
        for chunk in trace.chunks:
            sampled.process_chunk(chunk)
        sampled.finalize()
        wall = time.perf_counter() - t0
        accuracy = store_accuracy(sampled.store, exact_store)
        row["sampled"] = {
            "workers": sharded_workers,
            "rate": sampling,
            "detect_seconds": wall,
            "events_per_sec": events / wall if wall else 0.0,
            "shipped_events": sampled.shipped_events,
            **accuracy,
        }

    # -- end-to-end engine profile() -----------------------------------
    from repro.engine.config import DiscoveryConfig
    from repro.engine.core import DiscoveryEngine

    profile_row: dict = {}
    profile_stores = {}
    for mode in ("loop", "vectorized"):
        best = float("inf")
        stats = None
        for _ in range(reps):
            engine = DiscoveryEngine(
                config=DiscoveryConfig(
                    source=workload.source(scale), name=name,
                    entry=workload.entry, detect=mode,
                )
            )
            artifact = engine.profile()
            best = min(best, engine.timings["profile"])
            stats = artifact.stats
        profile_stores[mode] = artifact.store.to_dict()
        profile_row[f"{mode}_seconds"] = best
        profile_row[f"{mode}_detect_events_per_sec"] = stats[
            "detect_events_per_sec"
        ]
    profile_row["speedup"] = (
        profile_row["loop_seconds"] / profile_row["vectorized_seconds"]
        if profile_row["vectorized_seconds"]
        else 0.0
    )
    profile_row["stores_identical"] = (
        profile_stores["loop"] == profile_stores["vectorized"]
    )
    row["profile"] = profile_row
    return row


def detect_equivalence_sweep(
    *, scale: int = 1, chunk_size: int = 4096
) -> dict:
    """Loop vs. vectorized store equality over the whole registry.

    Every workload — the threaded ones included — is recorded once and
    profiled through both cores; the sweep passes only when every
    :class:`DependenceStore` (and every control-record map) matches
    bit for bit.
    """
    from repro.workloads import REGISTRY, get_workload

    mismatches: list[str] = []
    n_checked = 0
    for name in sorted(REGISTRY):
        workload = get_workload(name)
        module = workload.compile(scale)
        trace = TraceSink()
        vm = VM(
            module, trace, chunk_format="columnar", chunk_size=chunk_size
        )
        vm.run(workload.entry)
        results = {}
        for mode in ("loop", "vectorized"):
            profiler, _ = _detect_trace(trace, vm, mode, 1)
            results[mode] = (
                profiler.store.to_dict(),
                {r: c.to_dict() for r, c in profiler.control.items()},
            )
        n_checked += 1
        if results["loop"] != results["vectorized"]:
            mismatches.append(name)
    return {
        "workloads_checked": n_checked,
        "mismatches": mismatches,
        "all_identical": not mismatches,
    }


def run_detect_bench(
    workloads=None,
    *,
    scale: int = DETECT_BENCH_SCALE,
    reps: int = 3,
    quick: bool = False,
    chunk_size: int = 4096,
    sweep: bool = True,
    sharded_workers: int = 2,
    sampling: float = 0.25,
) -> dict:
    """Benchmark the detection cores; geomeans computed over gated rows.

    The headline numbers: ``detect_speedup_geomean`` (vectorized over
    loop detection throughput, stores bit-identical) and
    ``profile_speedup_geomean`` (end-to-end engine profile phase).  The
    multi-process sharded core rides along on every row —
    ``sharded_all_identical`` is its exactness tripwire and
    ``sampling_precision_min`` / ``sampling_recall_min`` the measured
    accuracy floor of the lossy mode (``sampling=None`` skips it).  The
    registry-wide equivalence sweep rides along unless ``sweep=False``.
    """
    if workloads:
        names = [(w, True) for w in workloads]
    else:
        names = [(w, True) for w in DETECT_BENCH_WORKLOADS] + [
            (w, False) for w in DETECT_BENCH_EXTRA
        ]
    if quick:
        reps = max(2, reps - 1)
    rows = [
        bench_detect_workload(
            name, scale=scale, reps=reps, chunk_size=chunk_size,
            gated=gated, sharded_workers=sharded_workers, sampling=sampling,
        )
        for name, gated in names
    ]
    gated_rows = [r for r in rows if r["gated"]]
    detect = [r["detect_speedup"] for r in gated_rows]
    profile = [r["profile"]["speedup"] for r in gated_rows]
    result = {
        "bench": "detect",
        "workloads": rows,
        "gated": [r["workload"] for r in gated_rows],
        "detect_speedup_geomean": _geomean(detect),
        "detect_speedup_min": min(detect) if detect else 0.0,
        "profile_speedup_geomean": _geomean(profile),
        "all_stores_identical": all(
            r["stores_identical"] and r["profile"]["stores_identical"]
            for r in rows
        ),
        "sharded_workers": sharded_workers,
        "sharded_all_identical": all(
            r["sharded"]["store_identical"] for r in rows
        ),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "quick": quick,
    }
    if sampling is not None:
        result["sampling_rate"] = sampling
        result["sampling_precision_min"] = min(
            r["sampled"]["precision"] for r in rows
        )
        result["sampling_recall_min"] = min(
            r["sampled"]["recall"] for r in rows
        )
    if sweep:
        result["equivalence_sweep"] = detect_equivalence_sweep(
            chunk_size=chunk_size
        )
        result["all_stores_identical"] = (
            result["all_stores_identical"]
            and result["equivalence_sweep"]["all_identical"]
        )
    return result


# ---------------------------------------------------------------------------
# the large-scale (synthetic-stream) detection leg
# ---------------------------------------------------------------------------

#: the out-of-core scale point: ~10⁸ events, per the acceptance bar
DETECT_SCALE_EVENTS = 100_000_000

#: sharded-vs-vectorized speedup the scale leg demands at 4 workers —
#: enforced only when the host actually has that many CPUs (a 1-core CI
#: container physically cannot demonstrate process parallelism; the
#: measured ratio and the CPU count are recorded either way)
DETECT_SCALE_SPEEDUP = 2.5


def _available_cpus() -> int:
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_detect_scale_bench(
    *,
    n_events: int = DETECT_SCALE_EVENTS,
    workers: int = 4,
    sampling: float = 0.25,
    quick: bool = False,
) -> dict:
    """Vectorized vs. sharded detection on a synthetic 10⁸-event stream.

    The stream (:class:`repro.profiler.synth.SyntheticStream`) is
    generated chunk-at-a-time, so the input never resides in memory —
    peak RSS is detector state plus one chunk regardless of
    ``n_events`` (the out-of-core claim, gated on the recorded RSS
    deltas, not just throughput).  ``quick`` shrinks the stream to a
    smoke size for CI.

    The sharded speedup gate is **conditional on hardware**: the gate
    object records the required ratio, the measured ratio, the CPU
    count, and whether the gate was enforced (``cpus >= workers``).
    Numbers are never synthesized — on a single-CPU host the measured
    ratio honestly shows the IPC overhead instead.
    """
    import gc

    from repro.profiler.deps import store_accuracy
    from repro.profiler.sharded import ShardedDetector
    from repro.profiler.synth import SyntheticStream
    from repro.profiler.vectorized import VectorizedProfiler

    if quick:
        n_events = min(n_events, 2_000_000)
    stream = SyntheticStream(n_events)
    cpus = _available_cpus()

    def rss_self_kb() -> int:
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

    def rss_children_kb() -> int:
        return resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss

    result: dict = {
        "bench": "detect_scale",
        "n_events": stream.n_events,
        "workers": workers,
        "cpus": cpus,
        "quick": quick,
    }

    # -- single-process vectorized baseline ----------------------------
    gc.collect()
    rss_before = rss_self_kb()
    vec = VectorizedProfiler(None, stream.sig_decoder)
    t0 = time.perf_counter()
    for chunk in stream.iter_chunks():
        vec.process_chunk(chunk)
    vec.flush()
    vec_wall = time.perf_counter() - t0
    result["vectorized"] = {
        "detect_seconds": vec_wall,
        "events_per_sec": stream.n_events / vec_wall if vec_wall else 0.0,
        "deps": len(vec.store),
        "memory_bytes": vec.memory_bytes(),
        "ru_maxrss_kb": rss_self_kb(),
        "ru_maxrss_delta_kb": max(0, rss_self_kb() - rss_before),
    }

    # -- sharded exact -------------------------------------------------
    gc.collect()
    rss_before = rss_self_kb()
    sharded = ShardedDetector(None, stream.sig_decoder, n_shards=workers)
    t0 = time.perf_counter()
    for chunk in stream.iter_chunks():
        sharded.process_chunk(chunk)
    sharded.finalize()
    sharded_wall = time.perf_counter() - t0
    result["sharded"] = {
        "detect_seconds": sharded_wall,
        "events_per_sec": (
            stream.n_events / sharded_wall if sharded_wall else 0.0
        ),
        "deps": len(sharded.store),
        "memory_bytes": sharded.memory_bytes(),
        "ru_maxrss_kb": rss_self_kb(),
        "ru_maxrss_delta_kb": max(0, rss_self_kb() - rss_before),
        # worker processes are children: their peak RSS lands here
        "children_maxrss_kb": rss_children_kb(),
    }
    result["store_identical"] = (
        sharded.store.to_dict() == vec.store.to_dict()
    )
    speedup = vec_wall / sharded_wall if sharded_wall else 0.0
    result["sharded_speedup"] = speedup
    enforced = cpus >= workers
    result["speedup_gate"] = {
        "required": DETECT_SCALE_SPEEDUP,
        "measured": speedup,
        "cpus": cpus,
        "enforced": enforced,
        "passed": (speedup >= DETECT_SCALE_SPEEDUP) if enforced else None,
    }

    # -- sharded sampled -----------------------------------------------
    if sampling is not None:
        gc.collect()
        sampled = ShardedDetector(
            None, stream.sig_decoder, n_shards=workers, sampling=sampling
        )
        t0 = time.perf_counter()
        for chunk in stream.iter_chunks():
            sampled.process_chunk(chunk)
        sampled.finalize()
        wall = time.perf_counter() - t0
        accuracy = store_accuracy(sampled.store, vec.store)
        result["sampled"] = {
            "rate": sampling,
            "detect_seconds": wall,
            "events_per_sec": stream.n_events / wall if wall else 0.0,
            "shipped_events": sampled.shipped_events,
            "speedup_vs_vectorized": vec_wall / wall if wall else 0.0,
            **accuracy,
        }
    return result


def format_detect_scale_table(result: dict) -> str:
    """Fixed-width rendering in the benchmarks/out house style."""
    lines = [
        f"scale leg: {result['n_events']} synthetic events, "
        f"{result['workers']} workers, {result['cpus']} cpu(s)"
    ]
    for mode in ("vectorized", "sharded", "sampled"):
        row = result.get(mode)
        if not row:
            continue
        extra = ""
        if mode == "sharded":
            extra = f"  children RSS {row['children_maxrss_kb']} kB"
        if mode == "sampled":
            extra = (
                f"  precision {row['precision']:.3f} "
                f"recall {row['recall']:.3f}"
            )
        lines.append(
            f"  {mode:10s} {row['detect_seconds']:8.2f}s "
            f"{row['events_per_sec']:12.0f} ev/s{extra}"
        )
    gate = result["speedup_gate"]
    verdict = (
        "not enforced (cpus < workers)"
        if not gate["enforced"]
        else ("PASS" if gate["passed"] else "FAIL")
    )
    lines.append(
        f"  sharded speedup {result['sharded_speedup']:.2f}x "
        f"(gate {gate['required']:.1f}x: {verdict}); store identical: "
        f"{result['store_identical']}"
    )
    return "\n".join(lines)


def format_detect_table(result: dict) -> str:
    """Fixed-width rendering in the benchmarks/out house style."""
    header = (
        f"{'workload':12s} {'events':>8s} {'loop eps':>10s} "
        f"{'vec eps':>10s} {'shard eps':>10s} {'detect':>7s} "
        f"{'profile':>8s} {'identical':>9s} {'gated':>5s}"
    )
    lines = [header, "-" * len(header)]
    for row in result["workloads"]:
        sharded = row.get("sharded", {})
        lines.append(
            f"{row['workload']:12s} {row['events']:8d} "
            f"{row['loop']['events_per_sec']:10.0f} "
            f"{row['vectorized']['events_per_sec']:10.0f} "
            f"{sharded.get('events_per_sec', 0.0):10.0f} "
            f"{row['detect_speedup']:6.2f}x "
            f"{row['profile']['speedup']:7.2f}x "
            f"{str(row['stores_identical']):>9s} "
            f"{str(row['gated']):>5s}"
        )
    tail = (
        f"gated geomean: detect {result['detect_speedup_geomean']:.2f}x "
        f"(min {result['detect_speedup_min']:.2f}x), profile "
        f"{result['profile_speedup_geomean']:.2f}x"
    )
    if "sharded_all_identical" in result:
        tail += (
            f"; sharded({result['sharded_workers']}w) "
            f"{'identical' if result['sharded_all_identical'] else 'MISMATCHED'}"
        )
    if "sampling_precision_min" in result:
        tail += (
            f"; sampled@{result['sampling_rate']} precision≥"
            f"{result['sampling_precision_min']:.3f} recall≥"
            f"{result['sampling_recall_min']:.3f}"
        )
    sweep = result.get("equivalence_sweep")
    if sweep:
        tail += (
            f"; sweep {sweep['workloads_checked']} workloads "
            f"{'identical' if sweep['all_identical'] else 'MISMATCHED'}"
        )
    tail += f"; peak RSS {result['ru_maxrss_kb']} kB"
    lines.append(tail)
    scale = result.get("scale")
    if scale:
        lines.append(format_detect_scale_table(scale))
    return "\n".join(lines)


def format_vm_table(result: dict) -> str:
    """Fixed-width rendering in the benchmarks/out house style."""
    header = (
        f"{'workload':12s} {'events':>8s} {'switch eps':>11s} "
        f"{'compiled eps':>13s} {'traced':>7s} {'untraced':>9s} "
        f"{'profile':>8s} {'identical':>9s} {'gated':>5s}"
    )
    lines = [header, "-" * len(header)]
    for row in result["workloads"]:
        lines.append(
            f"{row['workload']:12s} {row['switch']['events']:8d} "
            f"{row['switch']['events_per_sec']:11.0f} "
            f"{row['compiled']['events_per_sec']:13.0f} "
            f"{row['traced_speedup']:6.2f}x "
            f"{row['untraced']['speedup']:8.2f}x "
            f"{row['profile']['speedup']:7.2f}x "
            f"{str(row['trace_identical']):>9s} "
            f"{str(row['gated']):>5s}"
        )
    lines.append(
        f"gated geomean: traced {result['traced_speedup_geomean']:.2f}x "
        f"(min {result['traced_speedup_min']:.2f}x), untraced "
        f"{result['untraced_speedup_geomean']:.2f}x, profile "
        f"{result['profile_speedup_geomean']:.2f}x; peak RSS "
        f"{result['ru_maxrss_kb']} kB"
    )
    return "\n".join(lines)


def format_pipeline_table(result: dict) -> str:
    """Fixed-width rendering in the benchmarks/out house style."""
    header = (
        f"{'workload':12s} {'events':>8s} {'tuple eps':>12s} "
        f"{'columnar eps':>13s} {'ratio':>6s} {'bytes/evt t':>11s} "
        f"{'bytes/evt c':>11s} {'identical':>9s}"
    )
    lines = [header, "-" * len(header)]
    for row in result["workloads"]:
        tup, col = row["tuple"], row["columnar"]
        lines.append(
            f"{row['workload']:12s} {tup['events']:8d} "
            f"{tup['events_per_sec']:12.0f} {col['events_per_sec']:13.0f} "
            f"{row['throughput_ratio']:6.2f} "
            f"{tup['trace_nbytes'] / max(1, tup['events']):11.1f} "
            f"{col['trace_nbytes'] / max(1, col['events']):11.1f} "
            f"{str(row['stores_identical']):>9s}"
        )
    lines.append(
        f"geomean ratio {result['throughput_ratio_geomean']:.2f}  "
        f"(min {result['throughput_ratio_min']:.2f}); trace bytes "
        f"{result['trace_bytes_ratio_geomean']:.2f}x smaller columnar; "
        f"peak RSS {result['ru_maxrss_kb']} kB"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# the observability suite
# ---------------------------------------------------------------------------

#: the obs bench trio mirrors the pipeline suite: one textbook, one NAS,
#: one recursion-heavy workload, so the disabled-overhead bound covers
#: both chunk-dense loops and call/ret-dense traces
OBS_BENCH_WORKLOADS = ("pi", "EP", "fft")

#: instrumentation-site calibration loop length (per measurement pass)
_OBS_CALIBRATION_CALLS = 200_000


def _disabled_site_cost_ns(calls: int = _OBS_CALIBRATION_CALLS) -> float:
    """Per-activation cost of one *disabled* instrumentation site, in ns.

    Every site in the pipeline guards on a single attribute
    (``tracer.enabled``) before doing any tracing work; the most
    expensive disabled form is the unconditional
    ``with tracer.span(...)`` used at phase granularity, which still
    allocates nothing but pays a method call plus the shared
    :data:`~repro.obs.trace.NULL_SPAN` enter/exit.  This measures that
    worst form (best of three passes), so the modelled overhead is an
    upper bound on what real sites pay.
    """
    from repro.obs.trace import Tracer

    tracer = Tracer(enabled=False)
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter_ns()
        for _ in range(calls):
            with tracer.span("calibrate", "obs"):
                pass
        best = min(best, (time.perf_counter_ns() - t0) / calls)
    return best


def bench_obs_workload(
    name: str, *, scale: int = 1, reps: int = 3,
    site_cost_ns: float = 0.0,
) -> dict:
    """One workload through the engine ``profile()`` phase per obs mode.

    Fresh engine per repetition (``profile()`` caches per instance);
    best-of-``reps`` wall per mode from ``engine.timings``.  The
    dependence stores must stay bit-identical across all three modes —
    observability must never perturb what the pipeline computes.
    """
    from repro.engine.config import DiscoveryConfig
    from repro.engine.core import DiscoveryEngine

    from repro.workloads import get_workload

    workload = get_workload(name)
    row: dict = {"workload": name}
    stores = {}
    n_spans = 0
    n_metrics = 0
    for mode in ("off", "metrics", "trace"):
        best = float("inf")
        for _ in range(reps):
            engine = DiscoveryEngine(
                config=DiscoveryConfig(
                    source=workload.source(scale), name=name,
                    entry=workload.entry, obs=mode,
                )
            )
            artifact = engine.profile()
            best = min(best, engine.timings["profile"])
        stores[mode] = artifact.store.to_dict()
        row[f"{mode}_seconds"] = best
        if mode == "trace":
            n_spans = engine.obs.tracer.n_spans
        if engine.obs.metrics is not None:
            n_metrics = len(engine.obs.metrics.snapshot())
    row["events"] = artifact.stats["trace_events"]
    row["n_spans"] = n_spans
    row["n_metrics"] = n_metrics
    row["stores_identical"] = (
        stores["off"] == stores["metrics"] == stores["trace"]
    )
    off = row["off_seconds"]
    row["metrics_overhead_pct"] = (
        (row["metrics_seconds"] / off - 1.0) * 100.0 if off else 0.0
    )
    row["trace_overhead_pct"] = (
        (row["trace_seconds"] / off - 1.0) * 100.0 if off else 0.0
    )
    # the gated number: disabled sites cost one guarded call apiece;
    # the enabled run counts how often sites would activate, so
    # (per-site cost x activations) / obs-off wall bounds what the
    # disabled build pays for carrying the instrumentation at all
    row["disabled_overhead_pct"] = (
        site_cost_ns * n_spans / (off * 1e9) * 100.0 if off else 0.0
    )
    return row


def run_obs_bench(
    workloads=None,
    *,
    scale: int = 1,
    reps: int = 3,
    quick: bool = False,
    chunk_size: int = 4096,
) -> dict:
    """Benchmark the observability layer (``BENCH_obs.json``).

    Two claims are gated: the dependence stores are bit-identical with
    observability off, metrics-only, and full tracing
    (``all_stores_identical``), and the *disabled* layer costs at most
    2 % of profile wall time (``disabled_overhead_pct_max`` — modelled
    as calibrated per-site guard cost times the activation count the
    enabled run observed).  The enabled overheads are reported but not
    gated; tracing is opt-in.
    """
    del chunk_size  # engine profile() owns its chunking; kept for CLI parity
    names = list(workloads) if workloads else list(OBS_BENCH_WORKLOADS)
    if quick:
        reps = max(2, reps - 1)
    site_cost = _disabled_site_cost_ns()
    rows = [
        bench_obs_workload(
            name, scale=scale, reps=reps, site_cost_ns=site_cost,
        )
        for name in names
    ]
    return {
        "bench": "obs",
        "workloads": rows,
        "disabled_site_cost_ns": site_cost,
        "disabled_overhead_pct_max": max(
            r["disabled_overhead_pct"] for r in rows
        ) if rows else 0.0,
        "metrics_overhead_pct_max": max(
            r["metrics_overhead_pct"] for r in rows
        ) if rows else 0.0,
        "trace_overhead_pct_max": max(
            r["trace_overhead_pct"] for r in rows
        ) if rows else 0.0,
        "all_stores_identical": all(r["stores_identical"] for r in rows),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "quick": quick,
    }


def format_obs_table(result: dict) -> str:
    """Fixed-width rendering in the benchmarks/out house style."""
    header = (
        f"{'workload':12s} {'off s':>8s} {'metrics s':>10s} "
        f"{'trace s':>8s} {'spans':>7s} {'metr %':>7s} {'trace %':>8s} "
        f"{'disabled %':>10s} {'identical':>9s}"
    )
    lines = [header, "-" * len(header)]
    for row in result["workloads"]:
        lines.append(
            f"{row['workload']:12s} {row['off_seconds']:8.3f} "
            f"{row['metrics_seconds']:10.3f} {row['trace_seconds']:8.3f} "
            f"{row['n_spans']:7d} {row['metrics_overhead_pct']:+6.1f}% "
            f"{row['trace_overhead_pct']:+7.1f}% "
            f"{row['disabled_overhead_pct']:9.4f}% "
            f"{str(row['stores_identical']):>9s}"
        )
    lines.append(
        f"disabled site {result['disabled_site_cost_ns']:.0f} ns/call; "
        f"worst disabled overhead "
        f"{result['disabled_overhead_pct_max']:.4f}% "
        f"(gate 2%); stores "
        f"{'identical' if result['all_stores_identical'] else 'MISMATCHED'}"
        f"; peak RSS {result['ru_maxrss_kb']} kB"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# the resilience fault suite
# ---------------------------------------------------------------------------

#: the fault matrix runs on one detection-bound workload — matrix cost is
#: cases x recovery latency, not trace size, so the smallest gated detect
#: workload suffices
FAULTS_BENCH_WORKLOAD = "matmul"

#: worker-side fault kinds exercised by the matrix (raise_in_phase is an
#: engine-level fault covered by the batch-resume tests, not this suite)
FAULTS_BENCH_KINDS = (
    "kill_worker",
    "hang_worker",
    "drop_slab_ack",
    "corrupt_done_payload",
)

#: small batches so the matrix has a real first/middle/last structure
#: (~140 task messages on the scale-1 trace) without a big trace
FAULTS_BENCH_BATCH_EVENTS = 512

#: supervision knobs tuned for bench latency: recovery behaviour is
#: identical to the defaults, only the waits are shortened so a hung
#: worker costs ~1 s instead of the production 60 s patience
FAULTS_BENCH_POLICY = {
    "hang_timeout": 1.0,
    "poll_interval": 0.1,
    "backoff_base": 0.01,
    "backoff_max": 0.1,
}


def _faults_reference(trace, vm):
    """The serial vectorized store every fault case must reproduce."""
    from repro.profiler.vectorized import VectorizedProfiler

    ref = VectorizedProfiler(None, vm.loop_signature)
    for chunk in trace.chunks:
        ref.process_chunk(chunk)
    ref.flush()
    return _faults_state(ref)


def _faults_state(det) -> dict:
    return {
        "store": det.store.to_dict(),
        "control": {
            line: rec.to_dict() for line, rec in sorted(det.control.items())
        },
    }


def _run_fault_case(trace, vm, plan, *, workers: int = 2) -> dict:
    """One supervised sharded run under a fault plan; never raises."""
    from repro.profiler.sharded import ShardedDetector

    det = ShardedDetector(
        None,
        vm.loop_signature,
        n_shards=workers,
        batch_events=FAULTS_BENCH_BATCH_EVENTS,
        slab_rows=FAULTS_BENCH_BATCH_EVENTS,
        policy=FAULTS_BENCH_POLICY,
        faults=plan,
    )
    t0 = time.perf_counter()
    try:
        with warnings.catch_warnings():
            # the degrade rung warns by design; the bench records the
            # tally instead of spamming the report
            warnings.simplefilter("ignore", RuntimeWarning)
            for chunk in trace.chunks:
                det.process_chunk(chunk)
            det.finalize()
    except BaseException as exc:
        det.close()
        return {
            "recovered": False,
            "error": f"{type(exc).__name__}: {exc}",
            "seconds": round(time.perf_counter() - t0, 3),
            "recovery": dict(det.recovery),
        }
    return {
        "recovered": True,
        "state": _faults_state(det),
        "seconds": round(time.perf_counter() - t0, 3),
        "recovery": dict(det.recovery),
    }


def run_faults_bench(
    *,
    scale: int = 1,
    workers: int = 2,
    quick: bool = False,
    seed: int = 0,
    chunk_size: int = 4096,
) -> dict:
    """Benchmark the fault-recovery layer (``BENCH_faults.json``).

    Gates three claims: every eventually-successful worker fault
    schedule — each kind at the first, middle and last task batch, plus
    seeded :meth:`~repro.resilience.FaultPlan.scattered` mixes —
    completes without raising (``all_recovered``) with a merged store
    bit-identical to the serial vectorized reference
    (``all_stores_identical``); and a schedule that exhausts every
    retry budget degrades to in-process detection rather than failing,
    still bit-identical (``degraded_runs`` == expected, degraded case
    included in the identity gate).  ``quick`` trims the matrix to one
    position per kind for the CI smoke lane.
    """
    from repro.resilience import FaultEvent, FaultPlan
    from repro.workloads import get_workload

    workload = get_workload(FAULTS_BENCH_WORKLOAD)
    module = workload.compile(scale)
    trace = TraceSink()
    vm = VM(module, trace, chunk_format="columnar", chunk_size=chunk_size)
    vm.run(workload.entry)
    reference = _faults_reference(trace, vm)

    events = len(trace)
    n_batches = max(1, -(-events // FAULTS_BENCH_BATCH_EVENTS))
    positions = [0, n_batches // 2, n_batches - 1]
    rows = []

    if quick:
        # one position per kind, rotating so the reduced lane still
        # touches first, middle and last batches across the kinds
        matrix = [
            (kind, positions[i % len(positions)])
            for i, kind in enumerate(FAULTS_BENCH_KINDS)
        ]
    else:
        matrix = [
            (kind, batch)
            for kind in FAULTS_BENCH_KINDS
            for batch in positions
        ]
    for kind, batch in matrix:
        plan = FaultPlan([FaultEvent(kind=kind, shard=0, batch=batch)])
        case = _run_fault_case(trace, vm, plan, workers=workers)
        case.update(case_kind=kind, batch=batch, schedule="single")
        rows.append(case)

    n_scattered = 1 if quick else 3
    for i in range(n_scattered):
        plan = FaultPlan.scattered(
            seed + i, n_shards=workers, n_batches=n_batches,
        )
        case = _run_fault_case(trace, vm, plan, workers=workers)
        case.update(
            case_kind="+".join(e.kind for e in plan.events),
            batch=None,
            schedule=f"scattered[{seed + i}]",
        )
        rows.append(case)

    # unrecoverable: a kill at every generation exhausts shard retries
    # and the pool restart; the ladder's last rung must degrade to
    # in-process detection, not raise
    degrade_plan = FaultPlan(
        [
            FaultEvent(kind="kill_worker", batch=0, gen=gen)
            for gen in range(8)
        ]
    )
    case = _run_fault_case(trace, vm, degrade_plan, workers=workers)
    case.update(case_kind="kill_worker", batch=0, schedule="unrecoverable")
    rows.append(case)

    for row in rows:
        row["store_identical"] = (
            row["recovered"] and row.pop("state", None) == reference
        )
    degraded_runs = sum(r["recovery"].get("degraded", 0) for r in rows)
    return {
        "bench": "faults",
        "workload": FAULTS_BENCH_WORKLOAD,
        "events": events,
        "n_batches": n_batches,
        "workers": workers,
        "cases": rows,
        "all_recovered": all(r["recovered"] for r in rows),
        "all_stores_identical": all(r["store_identical"] for r in rows),
        "degraded_runs": degraded_runs,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "quick": quick,
    }


def format_faults_table(result: dict) -> str:
    """Fixed-width rendering in the benchmarks/out house style."""
    header = (
        f"{'schedule':<16} {'fault':<32} {'batch':>5} {'ok':>3} "
        f"{'ident':>5} {'retry':>5} {'pool':>4} {'degr':>4} {'s':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in result["cases"]:
        rec = row["recovery"]
        batch = "-" if row["batch"] is None else str(row["batch"])
        lines.append(
            f"{row['schedule']:<16} {row['case_kind']:<32} {batch:>5} "
            f"{'y' if row['recovered'] else 'n':>3} "
            f"{'y' if row['store_identical'] else 'N':>5} "
            f"{rec.get('shard_retries', 0):>5} "
            f"{rec.get('pool_restarts', 0):>4} "
            f"{rec.get('degraded', 0):>4} {row['seconds']:>6.2f}"
        )
    lines.append(
        f"{len(result['cases'])} cases over {result['events']} events "
        f"({result['n_batches']} batches, {result['workers']} workers); "
        f"recovered {'all' if result['all_recovered'] else 'NOT ALL'}; "
        f"stores "
        f"{'identical' if result['all_stores_identical'] else 'MISMATCHED'}"
        f"; degraded runs {result['degraded_runs']}"
    )
    return "\n".join(lines)


# -- store suite: crash-safe concurrent artifact store -----------------

#: two registry workloads with distinct keys, so two writers have real
#: overlap (same keys, different order) without a long bench wall clock
STORE_BENCH_WORKLOADS = ("fib", "sort")

#: stable result-row fields: what a job *computed*, not how this
#: particular writer got it (resumed/deduped/attempts/seconds differ)
_STORE_ROW_FIELDS = (
    "ok", "name", "return_value", "n_threads", "total_instructions",
    "deps", "loops", "parallelizable_loops", "suggestions", "kinds", "top",
)

#: per-artifact volatility: stats keys that legitimately differ run-to-run
_STORE_VOLATILE_STAT_MARKERS = ("seconds", "per_sec")


def _store_canonical_json(name: str, text: str):
    """Reduce one JSON artifact to its run-invariant content."""
    import json as _json

    data = _json.loads(text)
    if name == "result.json":
        return {k: data.get(k) for k in _STORE_ROW_FIELDS}
    if name == "profile.json" and isinstance(data.get("stats"), dict):
        data = dict(data)
        data["stats"] = {
            k: v
            for k, v in data["stats"].items()
            if not any(m in k for m in _STORE_VOLATILE_STAT_MARKERS)
        }
    return data


def _store_artifact_digest(path: str, name: str) -> str:
    """Content digest of one artifact, ignoring volatile bytes.

    ``trace.npz`` is hashed by loaded array contents (the zip container
    embeds timestamps); JSON artifacts are canonicalized first.
    """
    import hashlib
    import json as _json

    import numpy as np

    digest = hashlib.sha256()
    if name.endswith(".npz"):
        with np.load(path, allow_pickle=False) as archive:
            for key in sorted(archive.files):
                arr = archive[key]
                digest.update(key.encode())
                digest.update(str(arr.dtype).encode())
                digest.update(str(arr.shape).encode())
                digest.update(np.ascontiguousarray(arr).tobytes())
        return digest.hexdigest()
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if name.endswith(".json"):
        canonical = _json.dumps(
            _store_canonical_json(name, text), sort_keys=True
        )
        digest.update(canonical.encode())
    else:
        digest.update(text.encode())
    return digest.hexdigest()


#: artifacts that never converge across writers, excluded from identity
_STORE_IDENTITY_EXCLUDED = ("config.json", "attempts.json", "manifest.json")


def _store_state(root: str) -> dict:
    """``{key: {artifact: digest}}`` canonical content of a whole store."""
    import os

    from repro.store import ArtifactStore

    store = ArtifactStore(root)
    state = {}
    for key in store.keys():
        key_dir = store.key_dir(key)
        entries = {}
        for name in sorted(os.listdir(key_dir)):
            path = os.path.join(key_dir, name)
            if (
                name.startswith(".")
                or ".tmp-" in name
                or name in _STORE_IDENTITY_EXCLUDED
                or not os.path.isfile(path)
            ):
                continue
            entries[name] = _store_artifact_digest(path, name)
        state[key] = entries
    return state


def _store_healed_count(root: str) -> int:
    """Quarantined artifacts across the store (files under .corrupt-N/)."""
    import glob
    import os

    return sum(
        1
        for path in glob.glob(os.path.join(root, "*", ".corrupt-*", "*"))
        if os.path.isfile(path)
    )


def _store_tmp_count(root: str) -> int:
    import glob
    import os

    return sum(
        1
        for path in glob.glob(os.path.join(root, "**", "*"), recursive=True)
        if ".tmp-" in os.path.basename(path) and os.path.isfile(path)
    )


def _store_bench_jobs(faulty: Optional[dict] = None) -> list:
    """One job per bench workload; ``faulty`` maps workload -> fault plan."""
    from repro.engine.batch import job_for_workload

    jobs = []
    for name in STORE_BENCH_WORKLOADS:
        overrides = {"obs": "metrics"}
        if faulty and name in faulty:
            overrides["fault_plan"] = faulty[name]
        jobs.append(job_for_workload(name, **overrides))
    return jobs


def _store_bench_writer(jobs, resume_dir, queue, store_options) -> None:
    """Process entry point: one concurrent batch runner."""
    from repro.engine.batch import run_batch

    queue.put(
        run_batch(
            jobs,
            jobs_parallel=1,
            resume_dir=resume_dir,
            store_options=store_options,
        )
    )


def _store_run_writers(
    writer_jobs: list, resume_dir: str, store_options: Optional[dict] = None
) -> tuple:
    """Run one batch-runner process per job list; returns (rows, exits).

    A writer killed by an injected fault reports no rows (``None`` in
    that slot) and its exit code carries
    :data:`~repro.resilience.faults.KILL_EXIT_CODE`.
    """
    import multiprocessing

    ctx = multiprocessing.get_context()
    procs, queues = [], []
    for jobs in writer_jobs:
        queue = ctx.SimpleQueue()
        proc = ctx.Process(
            target=_store_bench_writer,
            args=(jobs, resume_dir, queue, store_options),
            daemon=True,
        )
        proc.start()
        procs.append(proc)
        queues.append(queue)
    rows, exits = [], []
    for proc, queue in zip(procs, queues):
        proc.join(timeout=600)
        if proc.is_alive():  # defensive: a wedged writer fails the gate
            proc.kill()
            proc.join()
        exits.append(proc.exitcode)
        rows.append(queue.get() if not queue.empty() else None)
    return rows, exits


def _store_case_summary(
    schedule: str,
    root: str,
    reference: dict,
    all_rows: list,
    *,
    writers: int,
    expected_kill_exits: int = 0,
    exits: Optional[list] = None,
    t0: float = 0.0,
) -> dict:
    """Post-schedule audit: convergence, healing, torn reads, metrics."""
    from repro.store import ArtifactStore

    rows = [r for batch in all_rows if batch for r in batch]
    report = ArtifactStore(root).verify()
    kill_exits = sum(1 for code in (exits or []) if code == KILL_EXIT_CODE)
    counters: dict = {}
    for row in rows:
        for name, value in row.get("store_counters", {}).items():
            counters[name] = counters.get(name, 0) + value
    # a torn read would surface as a failed row, a verify-corrupt entry,
    # or a tmp file left under a final-looking tree
    torn_reads = (
        sum(1 for r in rows if not r.get("ok"))
        + report["corrupt"]
        + _store_tmp_count(root)
    )
    return {
        "schedule": schedule,
        "writers": writers,
        "rows": len(rows),
        "rows_ok": all(r.get("ok") for r in rows) and bool(rows),
        "deduped": sum(1 for r in rows if r.get("deduped")),
        "computed": sum(1 for r in rows if r.get("phases_run")),
        "kill_exits": kill_exits,
        "expected_kill_exits": expected_kill_exits,
        "exits_ok": kill_exits == expected_kill_exits
        and all(
            code in (0, KILL_EXIT_CODE) for code in (exits or [])
        ),
        "healed": _store_healed_count(root),
        "torn_reads": torn_reads,
        "store_identical": _store_state(root) == reference,
        "lock_waits": counters.get("store.lock_waits", 0),
        "lock_steals": counters.get("store.lock_steals", 0),
        "tmps_swept": counters.get("store.torn_tmp_cleaned", 0),
        "seconds": round(time.perf_counter() - t0, 3),
    }


def run_store_bench(*, quick: bool = False, seed: int = 0) -> dict:
    """Torture the artifact store under concurrent writers + faults.

    Five schedules, each ending with ≥2 concurrent batch runners on one
    shared resume dir (``BENCH_store.json``):

    * ``concurrent_clean`` — two runners, same keys in opposite order:
      every key computed exactly once, the latecomer dedupes.
    * ``kill_mid_write`` — a runner dies (``os._exit``) mid-``detect``
      publish, leaving a torn tmp; two clean runners then converge and
      sweep the orphan, and the killed runner's rerun fully dedupes.
    * ``torn_tmp`` — a runner publishes a truncated ``result.json``
      against its full-payload checksum; the next runners quarantine it
      to ``.corrupt-N/`` and recompute.
    * ``stale_lease`` — lease lock backend with a dead-pid lease planted
      on a key: deterministic takeover, counted on ``store.lock_steals``.
    * ``checksum_flip`` — a byte of a published ``detect.json`` flipped
      on disk (and the finished row removed): verified restore heals the
      poisoned artifact and recomputes from the surviving prefix.

    Gates: every schedule's final store is bit-identical (canonicalized
    content) to a clean single-writer reference, all rows ok, zero torn
    reads/leftover tmps, ≥2 total healed corruptions, ≥1 lease steal,
    and clean-schedule keys computed exactly once.  ``quick`` is
    accepted for CLI symmetry; the matrix is already the minimal one.
    """
    import json as _json
    import shutil
    import tempfile

    from repro.engine.batch import config_for_job, run_batch
    from repro.engine.checkpoint import job_key
    from repro.resilience.faults import FaultPlan, plant_stale_lease
    from repro.store import ArtifactStore

    keys = {
        name: job_key(config_for_job(job))
        for name, job in zip(STORE_BENCH_WORKLOADS, _store_bench_jobs())
    }
    first = STORE_BENCH_WORKLOADS[0]

    roots = []

    def new_root(tag: str) -> str:
        root = tempfile.mkdtemp(prefix=f"repro-store-bench-{tag}-")
        roots.append(root)
        return root

    cases = []
    try:
        ref_dir = new_root("ref")
        t0 = time.perf_counter()
        ref_rows = run_batch(
            _store_bench_jobs(), jobs_parallel=1, resume_dir=ref_dir
        )
        reference = _store_state(ref_dir)
        reference_ok = all(r.get("ok") for r in ref_rows)
        ref_seconds = round(time.perf_counter() - t0, 3)

        jobs_fwd = _store_bench_jobs()
        jobs_rev = list(reversed(_store_bench_jobs()))

        # 1. clean concurrency: dedupe instead of double-compute
        t0 = time.perf_counter()
        root = new_root("clean")
        rows, exits = _store_run_writers([jobs_fwd, jobs_rev], root)
        case = _store_case_summary(
            "concurrent_clean", root, reference, rows,
            writers=2, exits=exits, t0=t0,
        )
        flat = [r for batch in rows if batch for r in batch]
        per_name: dict = {}
        for row in flat:
            if row.get("phases_run"):
                per_name[row["name"]] = per_name.get(row["name"], 0) + 1
        case["computed_once"] = bool(per_name) and all(
            count == 1 for count in per_name.values()
        )
        cases.append(case)

        # 2. kill -9 mid-write, then heal under concurrency, then rerun
        t0 = time.perf_counter()
        root = new_root("kill")
        kill_plan = FaultPlan(
            [{"kind": "kill_in_store_write", "artifact": "detect.json"}]
        ).to_dict()
        _rows1, exits1 = _store_run_writers(
            [_store_bench_jobs({first: kill_plan})], root
        )
        rows2, exits2 = _store_run_writers([jobs_fwd, jobs_rev], root)
        rows3, exits3 = _store_run_writers(
            [_store_bench_jobs({first: kill_plan})], root
        )
        case = _store_case_summary(
            "kill_mid_write", root, reference, rows2 + rows3,
            writers=2, expected_kill_exits=1,
            exits=exits1 + exits2 + exits3, t0=t0,
        )
        case["rerun_deduped"] = bool(rows3[0]) and all(
            r.get("resumed") and r.get("phases_run") == [] for r in rows3[0]
        )
        cases.append(case)

        # 3. torn write published against a full-payload checksum
        t0 = time.perf_counter()
        root = new_root("torn")
        torn_plan = FaultPlan(
            [{"kind": "torn_store_write", "artifact": "result.json"}]
        ).to_dict()
        _rows1, exits1 = _store_run_writers(
            [_store_bench_jobs({first: torn_plan})], root
        )
        rows2, exits2 = _store_run_writers([jobs_fwd, jobs_rev], root)
        cases.append(
            _store_case_summary(
                "torn_tmp", root, reference, rows2,
                writers=2, exits=exits1 + exits2, t0=t0,
            )
        )

        # 4. stale lease left by a dead pid: deterministic takeover
        t0 = time.perf_counter()
        root = new_root("lease")
        lease_opts = {"lock_backend": "lease"}
        plant_stale_lease(ArtifactStore(root).key_dir(keys[first]))
        rows, exits = _store_run_writers(
            [jobs_fwd, jobs_rev], root, store_options=lease_opts
        )
        case = _store_case_summary(
            "stale_lease", root, reference, rows,
            writers=2, exits=exits, t0=t0,
        )
        cases.append(case)

        # 5. silent on-disk corruption of a published artifact
        t0 = time.perf_counter()
        root = new_root("flip")
        rows1, exits1 = _store_run_writers([_store_bench_jobs()], root)
        store = ArtifactStore(root)
        key_dir = store.key_dir(keys[first])
        from repro.resilience.faults import flip_artifact_byte

        flip_artifact_byte(f"{key_dir}/detect.json")
        import os as _os

        _os.unlink(f"{key_dir}/result.json")
        rows2, exits2 = _store_run_writers([jobs_fwd, jobs_rev], root)
        case = _store_case_summary(
            "checksum_flip", root, reference, rows2,
            writers=2, exits=exits1 + exits2, t0=t0,
        )
        flat = [r for batch in rows2 if batch for r in batch]
        case["healed_prefix_resume"] = any(
            r["name"] == first and r.get("phases_restored") == ["profile", "cus"]
            and r.get("phases_run") == ["detect", "rank"]
            for r in flat
        )
        cases.append(case)
    finally:
        for root in roots:
            shutil.rmtree(root, ignore_errors=True)

    return {
        "bench": "store",
        "workloads": list(STORE_BENCH_WORKLOADS),
        "keys": keys,
        "reference_ok": reference_ok,
        "reference_seconds": ref_seconds,
        "cases": cases,
        "all_stores_identical": all(c["store_identical"] for c in cases),
        "all_rows_ok": all(c["rows_ok"] for c in cases),
        "all_exits_ok": all(c["exits_ok"] for c in cases),
        "healed_corruptions": sum(c["healed"] for c in cases),
        "torn_reads": sum(c["torn_reads"] for c in cases),
        "deduped_total": sum(c["deduped"] for c in cases),
        "lock_waits": sum(c["lock_waits"] for c in cases),
        "lock_steals": sum(c["lock_steals"] for c in cases),
        "min_concurrent_writers": min(c["writers"] for c in cases),
        "computed_once": all(
            c.get("computed_once", True) for c in cases
        ),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "quick": quick,
        "seed": seed,
    }


def format_store_table(result: dict) -> str:
    """Fixed-width rendering in the benchmarks/out house style."""
    header = (
        f"{'schedule':<18} {'wr':>3} {'rows':>4} {'ok':>3} {'ident':>5} "
        f"{'heal':>4} {'torn':>4} {'dedup':>5} {'waits':>5} {'steal':>5} "
        f"{'s':>6}"
    )
    lines = [header, "-" * len(header)]
    for case in result["cases"]:
        lines.append(
            f"{case['schedule']:<18} {case['writers']:>3} "
            f"{case['rows']:>4} {'y' if case['rows_ok'] else 'N':>3} "
            f"{'y' if case['store_identical'] else 'N':>5} "
            f"{case['healed']:>4} {case['torn_reads']:>4} "
            f"{case['deduped']:>5} {case['lock_waits']:>5} "
            f"{case['lock_steals']:>5} {case['seconds']:>6.2f}"
        )
    lines.append(
        f"{len(result['cases'])} schedules over "
        f"{'+'.join(result['workloads'])}; stores "
        f"{'identical' if result['all_stores_identical'] else 'MISMATCHED'}; "
        f"healed {result['healed_corruptions']} corruptions; "
        f"{result['torn_reads']} torn reads; "
        f"{result['deduped_total']} deduped jobs, "
        f"{result['lock_waits']} lock waits, "
        f"{result['lock_steals']} steals"
    )
    return "\n".join(lines)
