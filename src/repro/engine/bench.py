"""Performance benchmarks: the event pipeline and the VM dispatch cores.

Two suites live here:

* **pipeline** (:func:`run_pipeline_bench`) — tuple vs. columnar chunk
  formats through the dependence profiler (the PR-2 trajectory seed,
  ``BENCH_pipeline.json``).
* **vm** (:func:`run_vm_bench`) — switch vs. compiled dispatch
  (:mod:`repro.runtime.compile`): instrumented recording throughput with
  bit-identical traces, untraced execution (the validate/scheduler
  path), and end-to-end engine ``profile()`` wall time
  (``BENCH_vm.json``).

The pipeline suite measures the hottest consumer path — pushing the
instrumentation event stream through the dependence profiler:

* **events/sec** — a workload's trace is recorded once per format, then
  profiled with a fresh :class:`~repro.profiler.serial.SerialProfiler`
  (best of ``reps`` passes).  The tuple path is the legacy per-event
  tuple representation; the columnar path is the packed
  :class:`~repro.runtime.events.EventChunk` pipeline.
* **peak memory** — ``tracemalloc`` peaks for recording each trace
  representation (the resident columnar/tuple footprint), plus the
  process-wide ``ru_maxrss`` snapshot for context.
* **equivalence** — every measured pair also asserts the two paths build
  the identical :class:`~repro.profiler.deps.DependenceStore`.

``run_pipeline_bench`` returns a JSON-ready dict; the ``repro bench``
subcommand and ``benchmarks/bench_pipeline.py`` both drive it and write
``BENCH_pipeline.json``.
"""

from __future__ import annotations

import resource
import time
import tracemalloc

from repro.profiler.serial import SerialProfiler
from repro.profiler.shadow import PerfectShadow
from repro.runtime.events import TraceSink
from repro.runtime.interpreter import VM

#: default measurement set: one textbook, one NAS, one BOTS workload with
#: loop-nest shapes the columnar fast path is known to serve well
DEFAULT_WORKLOADS = ("pi", "EP", "fft")


def _geomean(values: list[float]) -> float:
    import math

    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _record(module, entry: str, chunk_format: str, chunk_size: int):
    """Run the instrumented VM once; returns (trace, vm, wall, peak_bytes)."""
    trace = TraceSink()
    vm = VM(module, trace, chunk_format=chunk_format, chunk_size=chunk_size)
    tracemalloc.start()
    t0 = time.perf_counter()
    vm.run(entry)
    wall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return trace, vm, wall, peak


def _profile(trace, vm, reps: int) -> tuple[SerialProfiler, float]:
    """Best-of-``reps`` profiling wall time over a recorded trace."""
    best = float("inf")
    profiler = None
    for _ in range(reps):
        profiler = SerialProfiler(PerfectShadow(), vm.loop_signature)
        t0 = time.perf_counter()
        for chunk in trace.chunks:
            profiler.process_chunk(chunk)
        best = min(best, time.perf_counter() - t0)
    return profiler, best


def bench_workload(
    name: str,
    *,
    scale: int = 1,
    reps: int = 3,
    chunk_size: int = 4096,
) -> dict:
    """Measure one workload; returns a JSON-ready row."""
    from repro.workloads import get_workload

    workload = get_workload(name)
    module = workload.compile(scale)

    row: dict = {"workload": name, "scale": scale}
    stores = {}
    for chunk_format in ("tuple", "columnar"):
        trace, vm, record_wall, record_peak = _record(
            module, workload.entry, chunk_format, chunk_size
        )
        profiler, profile_wall = _profile(trace, vm, reps)
        stores[chunk_format] = profiler.store.to_dict()
        events = len(trace)
        row[chunk_format] = {
            "events": events,
            "profile_seconds": profile_wall,
            "events_per_sec": events / profile_wall if profile_wall else 0.0,
            "record_seconds": record_wall,
            "record_peak_bytes": record_peak,
            "trace_nbytes": trace.nbytes,
            "deps": profiler.stats.deps_built,
        }
    row["stores_identical"] = stores["tuple"] == stores["columnar"]
    tuple_eps = row["tuple"]["events_per_sec"]
    row["throughput_ratio"] = (
        row["columnar"]["events_per_sec"] / tuple_eps if tuple_eps else 0.0
    )
    row["trace_bytes_ratio"] = (
        row["tuple"]["trace_nbytes"] / row["columnar"]["trace_nbytes"]
        if row["columnar"]["trace_nbytes"]
        else 0.0
    )
    return row


def run_pipeline_bench(
    workloads=None,
    *,
    scale: int = 1,
    reps: int = 3,
    quick: bool = False,
    chunk_size: int = 4096,
) -> dict:
    """Benchmark the event pipeline on several workloads.

    ``quick`` reduces repetitions for the CI smoke gate.  The result's
    ``throughput_ratio_geomean`` is the headline number: columnar events/sec
    over tuple events/sec, geometric mean across workloads.
    """
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    if quick:
        reps = max(2, reps - 1)
    rows = [
        bench_workload(name, scale=scale, reps=reps, chunk_size=chunk_size)
        for name in names
    ]
    ratios = [row["throughput_ratio"] for row in rows]
    return {
        "bench": "pipeline",
        "workloads": rows,
        "throughput_ratio_geomean": _geomean(ratios),
        "throughput_ratio_min": min(ratios) if ratios else 0.0,
        "trace_bytes_ratio_geomean": _geomean(
            [row["trace_bytes_ratio"] for row in rows]
        ),
        "all_stores_identical": all(r["stores_identical"] for r in rows),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "quick": quick,
    }


# ---------------------------------------------------------------------------
# the VM dispatch suite
# ---------------------------------------------------------------------------

#: the VM bench trio: loop-nest workloads whose hot path is dispatch
#: bound — one textbook, one NAS, one apps-chapter program.  The gated
#: trajectory number is their geomean.
VM_BENCH_WORKLOADS = ("pi", "EP", "mandelbrot")

#: reported alongside but not gated: deep recursion is frame-machinery
#: bound, where both cores share most of the cost
VM_BENCH_EXTRA = ("fft",)


def _trace_rows(trace):
    import numpy as np

    return np.concatenate([chunk.rows for chunk in trace.chunks])


def bench_vm_workload(
    name: str,
    *,
    scale: int = 1,
    reps: int = 3,
    chunk_size: int = 4096,
    gated: bool = True,
) -> dict:
    """Measure one workload under both dispatch cores."""
    import numpy as np

    from repro.workloads import get_workload

    workload = get_workload(name)
    module = workload.compile(scale)
    row: dict = {"workload": name, "scale": scale, "gated": gated}

    # -- instrumented recording (trace production) ---------------------
    traces = {}
    states = {}
    for dispatch in ("switch", "compiled"):
        best = float("inf")
        first = None
        for _ in range(reps):
            trace = TraceSink()
            vm = VM(
                module, trace, chunk_format="columnar",
                dispatch=dispatch, chunk_size=chunk_size,
            )
            t0 = time.perf_counter()
            vm.run(workload.entry)
            wall = time.perf_counter() - t0
            if first is None:
                first = wall  # includes one-time closure compilation
            best = min(best, wall)
        traces[dispatch] = (trace, vm)
        states[dispatch] = (vm.memory, vm.output, vm.total_steps)
        row[dispatch] = {
            "record_seconds": best,
            "first_run_seconds": first,
            "events": len(trace),
            "events_per_sec": len(trace) / best if best else 0.0,
        }
    rows_s = _trace_rows(traces["switch"][0])
    rows_c = _trace_rows(traces["compiled"][0])
    row["trace_identical"] = bool(
        np.array_equal(rows_s, rows_c)
        and traces["switch"][1].strings.values
        == traces["compiled"][1].strings.values
        and [len(c) for c in traces["switch"][0].chunks]
        == [len(c) for c in traces["compiled"][0].chunks]
    )
    row["state_identical"] = states["switch"] == states["compiled"]
    row["steps"] = states["compiled"][2]
    row["traced_speedup"] = (
        row["switch"]["record_seconds"] / row["compiled"]["record_seconds"]
        if row["compiled"]["record_seconds"]
        else 0.0
    )

    # -- untraced execution (validate / scheduler path) ----------------
    untraced = {}
    for dispatch in ("switch", "compiled"):
        best = float("inf")
        for _ in range(reps):
            vm = VM(
                module, None, dispatch=dispatch, instrument=False,
            )
            t0 = time.perf_counter()
            vm.run(workload.entry)
            best = min(best, time.perf_counter() - t0)
        untraced[dispatch] = best
    row["untraced"] = {
        "switch_seconds": untraced["switch"],
        "compiled_seconds": untraced["compiled"],
        "speedup": (
            untraced["switch"] / untraced["compiled"]
            if untraced["compiled"]
            else 0.0
        ),
    }

    # -- end-to-end engine profile() -----------------------------------
    from repro.engine.config import DiscoveryConfig
    from repro.engine.core import DiscoveryEngine

    profile_row: dict = {}
    stores = {}
    for dispatch in ("switch", "compiled"):
        best = float("inf")
        stats = None
        for _ in range(reps):
            engine = DiscoveryEngine(
                config=DiscoveryConfig(
                    source=workload.source(scale), name=name,
                    entry=workload.entry, dispatch=dispatch,
                )
            )
            artifact = engine.profile()
            best = min(best, engine.timings["profile"])
            stats = artifact.stats
        stores[dispatch] = artifact.store.to_dict()
        profile_row[f"{dispatch}_seconds"] = best
        profile_row[f"{dispatch}_events_per_sec"] = stats[
            "vm_events_per_sec"
        ]
    profile_row["speedup"] = (
        profile_row["switch_seconds"] / profile_row["compiled_seconds"]
        if profile_row["compiled_seconds"]
        else 0.0
    )
    profile_row["stores_identical"] = (
        stores["switch"] == stores["compiled"]
    )
    row["profile"] = profile_row
    return row


def run_vm_bench(
    workloads=None,
    *,
    scale: int = 1,
    reps: int = 3,
    quick: bool = False,
    chunk_size: int = 4096,
) -> dict:
    """Benchmark the dispatch cores; geomeans computed over gated rows.

    The headline numbers: ``traced_speedup_geomean`` (instrumented
    recording, compiled over switch, traces bit-identical) and
    ``profile_speedup_geomean`` (end-to-end engine profile phase).
    """
    if workloads:
        names = [(w, True) for w in workloads]
    else:
        names = [(w, True) for w in VM_BENCH_WORKLOADS] + [
            (w, False) for w in VM_BENCH_EXTRA
        ]
    if quick:
        reps = max(2, reps - 1)
    rows = [
        bench_vm_workload(
            name, scale=scale, reps=reps, chunk_size=chunk_size,
            gated=gated,
        )
        for name, gated in names
    ]
    gated_rows = [r for r in rows if r["gated"]]
    traced = [r["traced_speedup"] for r in gated_rows]
    untraced = [r["untraced"]["speedup"] for r in gated_rows]
    profile = [r["profile"]["speedup"] for r in gated_rows]
    return {
        "bench": "vm",
        "workloads": rows,
        "gated": [r["workload"] for r in gated_rows],
        "traced_speedup_geomean": _geomean(traced),
        "traced_speedup_min": min(traced) if traced else 0.0,
        "untraced_speedup_geomean": _geomean(untraced),
        "profile_speedup_geomean": _geomean(profile),
        "all_traces_identical": all(
            r["trace_identical"] and r["state_identical"] for r in rows
        ),
        "all_stores_identical": all(
            r["profile"]["stores_identical"] for r in rows
        ),
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "quick": quick,
    }


def format_vm_table(result: dict) -> str:
    """Fixed-width rendering in the benchmarks/out house style."""
    header = (
        f"{'workload':12s} {'events':>8s} {'switch eps':>11s} "
        f"{'compiled eps':>13s} {'traced':>7s} {'untraced':>9s} "
        f"{'profile':>8s} {'identical':>9s} {'gated':>5s}"
    )
    lines = [header, "-" * len(header)]
    for row in result["workloads"]:
        lines.append(
            f"{row['workload']:12s} {row['switch']['events']:8d} "
            f"{row['switch']['events_per_sec']:11.0f} "
            f"{row['compiled']['events_per_sec']:13.0f} "
            f"{row['traced_speedup']:6.2f}x "
            f"{row['untraced']['speedup']:8.2f}x "
            f"{row['profile']['speedup']:7.2f}x "
            f"{str(row['trace_identical']):>9s} "
            f"{str(row['gated']):>5s}"
        )
    lines.append(
        f"gated geomean: traced {result['traced_speedup_geomean']:.2f}x "
        f"(min {result['traced_speedup_min']:.2f}x), untraced "
        f"{result['untraced_speedup_geomean']:.2f}x, profile "
        f"{result['profile_speedup_geomean']:.2f}x; peak RSS "
        f"{result['ru_maxrss_kb']} kB"
    )
    return "\n".join(lines)


def format_pipeline_table(result: dict) -> str:
    """Fixed-width rendering in the benchmarks/out house style."""
    header = (
        f"{'workload':12s} {'events':>8s} {'tuple eps':>12s} "
        f"{'columnar eps':>13s} {'ratio':>6s} {'bytes/evt t':>11s} "
        f"{'bytes/evt c':>11s} {'identical':>9s}"
    )
    lines = [header, "-" * len(header)]
    for row in result["workloads"]:
        tup, col = row["tuple"], row["columnar"]
        lines.append(
            f"{row['workload']:12s} {tup['events']:8d} "
            f"{tup['events_per_sec']:12.0f} {col['events_per_sec']:13.0f} "
            f"{row['throughput_ratio']:6.2f} "
            f"{tup['trace_nbytes'] / max(1, tup['events']):11.1f} "
            f"{col['trace_nbytes'] / max(1, col['events']):11.1f} "
            f"{str(row['stores_identical']):>9s}"
        )
    lines.append(
        f"geomean ratio {result['throughput_ratio_geomean']:.2f}  "
        f"(min {result['throughput_ratio_min']:.2f}); trace bytes "
        f"{result['trace_bytes_ratio_geomean']:.2f}x smaller columnar; "
        f"peak RSS {result['ru_maxrss_kb']} kB"
    )
    return "\n".join(lines)
