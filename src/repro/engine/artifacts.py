"""Typed, serializable phase artifacts.

Each :class:`~repro.engine.core.DiscoveryEngine` phase returns one artifact:

* ``profile()``   → :class:`ProfileArtifact`   (Phase 1: VM + profiler)
* ``build_cus()`` → :class:`CUArtifact`        (Phase 2a: CU construction)
* ``detect()``    → :class:`DetectArtifact`    (Phase 2b: loop/task detection)
* ``rank()``      → :class:`RankArtifact`      (Phase 3: scoring + ordering)

and the assembled :class:`DiscoveryResult` is the classic all-in-one record
the legacy ``discover()`` wrapper returns.

Every artifact has a stable ``to_dict()``/``from_dict()`` JSON round-trip so
it can be persisted to disk and reloaded (the DiscoPoP cu-graph-analyzer
pattern: downstream tools consume persisted artifacts instead of re-running
the program).  Live-only members — the compiled module, the VM, the raw
event trace, CU graphs — are *not* serialized; a reloaded artifact carries
``None`` there and supports every report/query that needs only the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cu.graph import CUGraph
from repro.cu.model import CURegistry
from repro.discovery.loops import LoopInfo
from repro.discovery.suggestions import Suggestion
from repro.discovery.tasks import SPMDTaskGroup, TaskGraph
from repro.mir.module import Module
from repro.parallelize.plan import TransformPlan
from repro.parallelize.validate import ValidationReport
from repro.profiler.deps import DependenceStore
from repro.profiler.pet import PETBuilder
from repro.profiler.serial import ControlRecord
from repro.runtime.interpreter import VM

#: to_dict tag -> artifact class, for :func:`load_artifact` dispatch
ARTIFACT_KINDS: dict = {}


def _artifact(kind: str):
    def register(cls):
        cls.artifact_kind = kind
        ARTIFACT_KINDS[kind] = cls
        return cls

    return register


def _control_to_dict(control: dict) -> dict:
    return {str(rid): rec.to_dict() for rid, rec in control.items()}


def _control_from_dict(data: dict) -> dict:
    return {
        int(rid): ControlRecord.from_dict(rec) for rid, rec in data.items()
    }


def _counts_to_dict(counts: dict) -> dict:
    return {str(line): count for line, count in counts.items()}


def _counts_from_dict(data: dict) -> dict:
    return {int(line): count for line, count in data.items()}


# ---------------------------------------------------------------------------
# phase artifacts
# ---------------------------------------------------------------------------


@_artifact("profile")
@dataclass
class ProfileArtifact:
    """Phase 1 output: one instrumented execution, fully profiled."""

    return_value: object
    store: DependenceStore
    control: dict
    #: {"reads": ..., "writes": ..., "accesses": ..., "raw_occurrences": ...,
    #:  "backend": ..., "chunk_format": ..., "trace_nbytes": ...}
    stats: dict = field(default_factory=dict)
    module: Optional[Module] = None
    #: TraceSink or SpillingTraceSink — anything with events()/iter_chunks()
    trace: Optional[object] = None
    pet: Optional[PETBuilder] = None
    vm: Optional[VM] = None
    #: the live BackendResult (extras: skip stats, parallel report, ...)
    backend_result: Optional[object] = None

    def to_dict(self) -> dict:
        return {
            "artifact": "profile",
            "return_value": self.return_value,
            "store": self.store.to_dict(),
            "control": _control_to_dict(self.control),
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileArtifact":
        return cls(
            return_value=data["return_value"],
            store=DependenceStore.from_dict(data["store"]),
            control=_control_from_dict(data["control"]),
            stats=dict(data["stats"]),
        )


@_artifact("cus")
@dataclass
class CUArtifact:
    """Phase 2a output: the CU partition of the executed program."""

    registry: CURegistry
    line_counts: dict
    total_instructions: int

    def to_dict(self) -> dict:
        return {
            "artifact": "cus",
            "registry": self.registry.to_dict(),
            "line_counts": _counts_to_dict(self.line_counts),
            "total_instructions": self.total_instructions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CUArtifact":
        return cls(
            registry=CURegistry.from_dict(data["registry"]),
            line_counts=_counts_from_dict(data["line_counts"]),
            total_instructions=data["total_instructions"],
        )


@dataclass
class FunctionTaskAnalysis:
    """Task-parallelism artefacts of one function container."""

    func: str
    region_id: int
    anchored_store: DependenceStore
    cu_graph: Optional[CUGraph] = None
    spmd_groups: list[SPMDTaskGroup] = field(default_factory=list)
    task_graph: Optional[TaskGraph] = None

    def to_dict(self) -> dict:
        """JSON form; the live CU graph is not serialized (rebuildable
        from the CU artifact + anchored store when needed)."""
        return {
            "func": self.func,
            "region_id": self.region_id,
            "anchored_store": self.anchored_store.to_dict(),
            "spmd_groups": [g.to_dict() for g in self.spmd_groups],
            "task_graph": (
                self.task_graph.to_dict() if self.task_graph else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionTaskAnalysis":
        return cls(
            func=data["func"],
            region_id=data["region_id"],
            anchored_store=DependenceStore.from_dict(data["anchored_store"]),
            spmd_groups=[
                SPMDTaskGroup.from_dict(g) for g in data["spmd_groups"]
            ],
            task_graph=(
                TaskGraph.from_dict(data["task_graph"])
                if data["task_graph"]
                else None
            ),
        )


@_artifact("detect")
@dataclass
class DetectArtifact:
    """Phase 2b output: classified loops and per-container task analyses."""

    loops: list[LoopInfo] = field(default_factory=list)
    functions: dict[str, FunctionTaskAnalysis] = field(default_factory=dict)
    #: loop-body containers with call sites, keyed by loop region id
    loop_tasks: dict[int, FunctionTaskAnalysis] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "artifact": "detect",
            "loops": [info.to_dict() for info in self.loops],
            "functions": {
                name: fta.to_dict() for name, fta in self.functions.items()
            },
            "loop_tasks": {
                str(rid): fta.to_dict()
                for rid, fta in self.loop_tasks.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DetectArtifact":
        return cls(
            loops=[LoopInfo.from_dict(info) for info in data["loops"]],
            functions={
                name: FunctionTaskAnalysis.from_dict(fta)
                for name, fta in data["functions"].items()
            },
            loop_tasks={
                int(rid): FunctionTaskAnalysis.from_dict(fta)
                for rid, fta in data["loop_tasks"].items()
            },
        )


@_artifact("rank")
@dataclass
class RankArtifact:
    """Phase 3 output: ranked suggestions for one thread count."""

    n_threads: int
    suggestions: list[Suggestion] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "artifact": "rank",
            "n_threads": self.n_threads,
            "suggestions": [s.to_dict() for s in self.suggestions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RankArtifact":
        return cls(
            n_threads=data["n_threads"],
            suggestions=[
                Suggestion.from_dict(s) for s in data["suggestions"]
            ],
        )


#: the transform plan serializes itself; register it for load_artifact
TransformPlan.artifact_kind = "transform_plan"
ARTIFACT_KINDS["transform_plan"] = TransformPlan


@_artifact("validation")
@dataclass
class ValidationArtifact:
    """Validate-phase output: one report per transformable suggestion."""

    n_workers: int
    reports: list[ValidationReport] = field(default_factory=list)

    @property
    def feasible(self) -> list[ValidationReport]:
        return [r for r in self.reports if r.feasible]

    @property
    def n_identical(self) -> int:
        return sum(1 for r in self.feasible if r.identical)

    @property
    def n_speedup(self) -> int:
        return sum(
            1
            for r in self.feasible
            if r.identical and r.measured_speedup > 1.0
        )

    @property
    def mean_abs_prediction_error(self) -> Optional[float]:
        """Mean |predicted - measured| / measured over valid transforms."""
        errors = [
            abs(r.prediction_error) for r in self.feasible if r.identical
        ]
        if not errors:
            return None
        return sum(errors) / len(errors)

    def to_dict(self) -> dict:
        return {
            "artifact": "validation",
            "n_workers": self.n_workers,
            "reports": [r.to_dict() for r in self.reports],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ValidationArtifact":
        return cls(
            n_workers=data["n_workers"],
            reports=[
                ValidationReport.from_dict(r) for r in data["reports"]
            ],
        )


# ---------------------------------------------------------------------------
# the assembled result
# ---------------------------------------------------------------------------


@_artifact("discovery_result")
@dataclass
class DiscoveryResult:
    """Everything the pipeline produced, for inspection and benches."""

    module: Optional[Module]
    return_value: object
    store: DependenceStore
    control: dict
    registry: Optional[CURegistry]
    line_counts: dict
    total_instructions: int
    loops: list[LoopInfo]
    functions: dict[str, FunctionTaskAnalysis]
    suggestions: list[Suggestion]
    pet: Optional[PETBuilder]
    #: task analyses for loop bodies that contain call sites (MPMD inside
    #: loops — the Fig. 4.10 FaceDetection shape), keyed by loop region id
    loop_tasks: dict[int, FunctionTaskAnalysis] = field(default_factory=dict)
    trace: Optional[object] = None
    vm: Optional[VM] = None
    #: thread count the suggestions were ranked for
    n_threads: int = 4
    #: wall seconds per engine phase (profile/build_cus/detect/rank);
    #: re-entrant phases accumulate, so values are per-phase totals
    timings: dict = field(default_factory=dict)
    #: per-phase {count, total, last} behind the totals in ``timings``
    timing_detail: dict = field(default_factory=dict)
    #: metrics-registry snapshot ({} unless config.obs was on); render
    #: with :func:`repro.obs.format_metrics_table` or ``repro stats``
    metrics: dict = field(default_factory=dict)
    #: self-profiling aggregates ({} unless config.obs == "trace"):
    #: per-phase self time, hottest span paths, sampling shares
    selfprof: dict = field(default_factory=dict)
    #: Phase-1 statistics (backend name, event counts, trace bytes, ...)
    profile_stats: dict = field(default_factory=dict)
    #: validate-phase reports (present when the engine ran with
    #: ``config.validate``): one per transformable suggestion
    validations: list[ValidationReport] = field(default_factory=list)
    #: mean |predicted - measured|/measured speedup error over the
    #: transforms that executed and validated identical (None = none did)
    prediction_error: Optional[float] = None

    def loop_at(self, line: int) -> Optional[LoopInfo]:
        """The innermost analysed loop whose header is at ``line``."""
        candidates = [l for l in self.loops if l.start_line == line]
        return candidates[0] if candidates else None

    def suggestions_of_kind(self, kind: str) -> list[Suggestion]:
        return [s for s in self.suggestions if s.kind == kind]

    def format_report(self) -> str:
        from repro.discovery.suggestions import format_suggestions

        return format_suggestions(self.suggestions)

    def to_dict(self) -> dict:
        """Stable JSON form of the full report (live objects dropped)."""
        return {
            "artifact": "discovery_result",
            "version": 1,
            "return_value": self.return_value,
            "n_threads": self.n_threads,
            "total_instructions": self.total_instructions,
            "line_counts": _counts_to_dict(self.line_counts),
            "store": self.store.to_dict(),
            "control": _control_to_dict(self.control),
            "loops": [info.to_dict() for info in self.loops],
            "functions": {
                name: fta.to_dict() for name, fta in self.functions.items()
            },
            "loop_tasks": {
                str(rid): fta.to_dict()
                for rid, fta in self.loop_tasks.items()
            },
            "suggestions": [s.to_dict() for s in self.suggestions],
            "timings": dict(self.timings),
            "timing_detail": {
                phase: dict(detail)
                for phase, detail in self.timing_detail.items()
            },
            "metrics": dict(self.metrics),
            "selfprof": dict(self.selfprof),
            "profile_stats": dict(self.profile_stats),
            "validations": [r.to_dict() for r in self.validations],
            "prediction_error": self.prediction_error,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiscoveryResult":
        return cls(
            module=None,
            return_value=data["return_value"],
            store=DependenceStore.from_dict(data["store"]),
            control=_control_from_dict(data["control"]),
            registry=None,
            line_counts=_counts_from_dict(data["line_counts"]),
            total_instructions=data["total_instructions"],
            loops=[LoopInfo.from_dict(info) for info in data["loops"]],
            functions={
                name: FunctionTaskAnalysis.from_dict(fta)
                for name, fta in data["functions"].items()
            },
            suggestions=[
                Suggestion.from_dict(s) for s in data["suggestions"]
            ],
            pet=None,
            loop_tasks={
                int(rid): FunctionTaskAnalysis.from_dict(fta)
                for rid, fta in data["loop_tasks"].items()
            },
            n_threads=data.get("n_threads", 4),
            timings=dict(data.get("timings") or {}),
            timing_detail={
                phase: dict(detail)
                for phase, detail in (data.get("timing_detail") or {}).items()
            },
            metrics=dict(data.get("metrics") or {}),
            selfprof=dict(data.get("selfprof") or {}),
            profile_stats=dict(data.get("profile_stats") or {}),
            validations=[
                ValidationReport.from_dict(r)
                for r in (data.get("validations") or [])
            ],
            prediction_error=data.get("prediction_error"),
        )


# ---------------------------------------------------------------------------
# persistence helpers
# ---------------------------------------------------------------------------


def save_artifact(artifact, path: str) -> None:
    """Persist any artifact with a ``to_dict`` to a JSON file."""
    import json

    with open(path, "w") as handle:
        json.dump(artifact.to_dict(), handle, indent=1)


def load_artifact(path: str):
    """Reload a persisted artifact, dispatching on its ``artifact`` tag."""
    import json

    with open(path) as handle:
        data = json.load(handle)
    kind = data.get("artifact")
    cls = ARTIFACT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown artifact kind {kind!r} in {path}")
    return cls.from_dict(data)
