"""Discovery configuration.

:class:`DiscoveryConfig` replaces the loose keyword soup (``entry``,
``n_threads``, ``signature_slots``, ``vm_kwargs``, ...) that the old
monolithic ``discover()`` call threaded through every layer.  A config is a
plain value object: JSON-serializable, hashable enough to key batch runs,
and safe to ship across process boundaries for the batch runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass
class DiscoveryConfig:
    """Everything a :class:`~repro.engine.core.DiscoveryEngine` run needs.

    ``source`` is optional — an engine can also be built from an
    already-compiled :class:`~repro.mir.module.Module` — but batch workers
    and ``from_dict`` round-trips carry the source text so a config alone
    fully describes a run.
    """

    #: source text (optional when a compiled Module is supplied)
    source: Optional[str] = None
    #: source language the text is lowered with: "minic" | "python"
    frontend: str = "minic"
    #: original source file path (diagnostics / result provenance)
    source_path: Optional[str] = None
    #: first line of ``source`` within the original file — analyze()
    #: extracts function bodies, so lowered line numbers keep pointing at
    #: the real file position
    source_firstline: int = 1
    #: display name for reports / batch rows
    name: str = "<source>"
    #: entry function executed by the profiling VM
    entry: str = "main"
    #: thread count assumed by the ranking phase
    n_threads: int = 4
    #: signature shadow size; None selects the exact PerfectShadow baseline
    signature_slots: Optional[int] = None
    #: enable the §2.4 skipping optimization in the profiler
    skip_loops: bool = False
    #: keep the full event trace on the assembled DiscoveryResult
    keep_trace: bool = False
    #: VM random seed (convenience; folded into vm_kwargs)
    seed: Optional[int] = None
    #: profiler backend name (see :mod:`repro.profiler.backends`):
    #: serial | signature | skipping | parallel | any registered name
    backend: str = "serial"
    #: extra backend constructor options (n_workers, queue_kind, ...)
    backend_options: dict = field(default_factory=dict)
    #: event chunk representation: "columnar" (packed numpy chunks) or
    #: "tuple" (legacy per-event tuples)
    chunk_format: str = "columnar"
    #: VM execution core: "compiled" (closure-specialized dispatch with
    #: fused superinstructions, see :mod:`repro.runtime.compile`) or
    #: "switch" (the bit-exact string-dispatch reference loop)
    dispatch: str = "compiled"
    #: dependence detection core: "vectorized" (segmented numpy scans,
    #: see :mod:`repro.profiler.vectorized`), "loop" (the bit-exact
    #: per-event reference walk), or "sharded" (multi-process address
    #: sharding, see :mod:`repro.profiler.sharded`)
    detect: str = "vectorized"
    #: worker processes of the sharded detection core
    detect_workers: int = 4
    #: sharded-core lossy mode: keep roughly this fraction of memory
    #: events (deterministic, stratified per region/line); None = exact
    detect_sampling: Optional[float] = None
    #: bound trace memory: spill all but the newest chunks to disk
    spill_trace: bool = False
    #: resident chunk window of the spilling sink
    max_resident_chunks: int = 64
    #: where spill segments go (None = a private temp dir)
    spill_dir: Optional[str] = None
    #: spill segment format: True = compressed .npz (smaller), False =
    #: raw .npy (mmap-able zero-copy by the sharded detection workers)
    spill_compress: bool = True
    #: extra VM constructor keywords (quantum, instrument, ...)
    vm_kwargs: dict = field(default_factory=dict)
    #: worker-pool width of the parallelize/validate phases
    n_workers: int = 4
    #: run the parallelize + validate phases as part of ``run()`` and
    #: attach ValidationReports (and the prediction error) to the result
    validate: bool = False
    #: steps one worker executes per scheduler tick
    parallel_quantum: int = 256
    #: observability depth (see :mod:`repro.obs`): "off" records
    #: nothing, "metrics" fills DiscoveryResult.metrics, "trace" adds
    #: span tracing + self-profiling (export with ``repro trace``)
    obs: str = "off"
    #: supervision knobs for the sharded detection core, as a
    #: :meth:`repro.resilience.RetryPolicy.to_dict` mapping (attempt
    #: budgets, seeded backoff, done/join/hang timeout budgets); empty =
    #: the RetryPolicy defaults.  See docs/RESILIENCE.md.
    resilience: dict = field(default_factory=dict)
    #: test-only deterministic fault schedule, as a
    #: :meth:`repro.resilience.FaultPlan.to_dict` mapping; None (the
    #: production value) injects nothing
    fault_plan: Optional[dict] = None

    def replace(self, **changes) -> "DiscoveryConfig":
        """A copy with the given fields changed (dataclasses.replace)."""
        return replace(self, **changes)

    def resolved_vm_kwargs(self) -> dict:
        kwargs = dict(self.vm_kwargs)
        if self.seed is not None:
            kwargs.setdefault("seed", self.seed)
        kwargs.setdefault("dispatch", self.dispatch)
        return kwargs

    def resolved_backend_options(self) -> dict:
        """Backend constructor options implied by this config.

        ``skip_loops`` is forwarded to every backend so an unsupported
        combination (e.g. ``parallel`` + skipping) fails loudly instead
        of silently running without the optimization.
        """
        options = dict(self.backend_options)
        if self.signature_slots is not None:
            options.setdefault("signature_slots", self.signature_slots)
        if self.skip_loops:
            options.setdefault("skip_loops", True)
        if self.detect != "vectorized":
            # non-default only, like the options above: the built-in
            # backends already default to the vectorized core, and a
            # custom registered backend without a ``detect`` kwarg must
            # keep working under a default config
            options.setdefault("detect", self.detect)
        if self.detect == "sharded":
            options.setdefault("detect_workers", self.detect_workers)
            if self.detect_sampling is not None:
                options.setdefault("detect_sampling", self.detect_sampling)
            if self.resilience:
                options.setdefault("resilience", dict(self.resilience))
            if self.fault_plan is not None:
                options.setdefault("fault_plan", dict(self.fault_plan))
        return options

    def to_dict(self) -> dict:
        return {
            "source": self.source,
            "frontend": self.frontend,
            "source_path": self.source_path,
            "source_firstline": self.source_firstline,
            "name": self.name,
            "entry": self.entry,
            "n_threads": self.n_threads,
            "signature_slots": self.signature_slots,
            "skip_loops": self.skip_loops,
            "keep_trace": self.keep_trace,
            "seed": self.seed,
            "backend": self.backend,
            "backend_options": dict(self.backend_options),
            "chunk_format": self.chunk_format,
            "dispatch": self.dispatch,
            "detect": self.detect,
            "detect_workers": self.detect_workers,
            "detect_sampling": self.detect_sampling,
            "spill_trace": self.spill_trace,
            "max_resident_chunks": self.max_resident_chunks,
            "spill_dir": self.spill_dir,
            "spill_compress": self.spill_compress,
            "vm_kwargs": dict(self.vm_kwargs),
            "n_workers": self.n_workers,
            "validate": self.validate,
            "parallel_quantum": self.parallel_quantum,
            "obs": self.obs,
            "resilience": dict(self.resilience),
            "fault_plan": (
                dict(self.fault_plan) if self.fault_plan is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DiscoveryConfig":
        return cls(
            source=data.get("source"),
            frontend=data.get("frontend", "minic"),
            source_path=data.get("source_path"),
            source_firstline=data.get("source_firstline", 1),
            name=data.get("name", "<source>"),
            entry=data.get("entry", "main"),
            n_threads=data.get("n_threads", 4),
            signature_slots=data.get("signature_slots"),
            skip_loops=data.get("skip_loops", False),
            keep_trace=data.get("keep_trace", False),
            seed=data.get("seed"),
            backend=data.get("backend", "serial"),
            backend_options=dict(data.get("backend_options") or {}),
            chunk_format=data.get("chunk_format", "columnar"),
            dispatch=data.get("dispatch", "compiled"),
            detect=data.get("detect", "vectorized"),
            detect_workers=data.get("detect_workers", 4),
            detect_sampling=data.get("detect_sampling"),
            spill_trace=data.get("spill_trace", False),
            max_resident_chunks=data.get("max_resident_chunks", 64),
            spill_dir=data.get("spill_dir"),
            spill_compress=data.get("spill_compress", True),
            vm_kwargs=dict(data.get("vm_kwargs") or {}),
            n_workers=data.get("n_workers", 4),
            validate=data.get("validate", False),
            parallel_quantum=data.get("parallel_quantum", 256),
            obs=data.get("obs", "off"),
            resilience=dict(data.get("resilience") or {}),
            fault_plan=(
                dict(data["fault_plan"])
                if data.get("fault_plan") is not None
                else None
            ),
        )
