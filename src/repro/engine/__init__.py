"""Staged discovery engine — the re-entrant public API.

::

    from repro.engine import DiscoveryEngine

    engine = DiscoveryEngine.from_source(source)
    engine.profile()        # Phase 1: one instrumented execution
    engine.build_cus()      # Phase 2a: CU construction over the trace
    engine.detect()         # Phase 2b: DOALL/DOACROSS + SPMD/MPMD detection
    engine.rank(n_threads=8)   # Phase 3: cheap, re-runnable per thread count
    result = engine.run()   # assembled DiscoveryResult (all phases cached)

Every phase returns a typed artifact with a stable ``to_dict`` /
``from_dict`` JSON round-trip (:mod:`repro.engine.artifacts`), and
:mod:`repro.engine.batch` fans full runs across a process pool.
"""

from repro.engine.artifacts import (
    ARTIFACT_KINDS,
    CUArtifact,
    DetectArtifact,
    DiscoveryResult,
    FunctionTaskAnalysis,
    ProfileArtifact,
    RankArtifact,
    ValidationArtifact,
    load_artifact,
    save_artifact,
)
from repro.engine.batch import (
    config_for_job,
    format_batch_table,
    job_for_source,
    job_for_workload,
    run_batch,
    run_job,
)
from repro.engine.checkpoint import JobCheckpoint, job_key
from repro.engine.config import DiscoveryConfig
from repro.engine.core import DiscoveryEngine

__all__ = [
    "ARTIFACT_KINDS",
    "CUArtifact",
    "DetectArtifact",
    "DiscoveryConfig",
    "DiscoveryEngine",
    "DiscoveryResult",
    "FunctionTaskAnalysis",
    "JobCheckpoint",
    "ProfileArtifact",
    "RankArtifact",
    "ValidationArtifact",
    "config_for_job",
    "format_batch_table",
    "job_for_source",
    "job_for_workload",
    "job_key",
    "load_artifact",
    "run_batch",
    "run_job",
    "save_artifact",
]
