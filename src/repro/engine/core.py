"""The staged discovery engine (Fig. 1.3, re-entrant).

The paper's pipeline is conceptually staged — profile → CU construction →
detection → ranking — and :class:`DiscoveryEngine` exposes exactly those
stages as independently runnable, cached phases:

* :meth:`DiscoveryEngine.profile`   — Phase 1: execute the instrumented VM,
  collect the trace, merged dependences and the PET.  The only phase that
  runs the program; ``vm_runs`` counts its executions.
* :meth:`DiscoveryEngine.build_cus` — Phase 2a: top-down CU construction
  over the recorded trace.
* :meth:`DiscoveryEngine.detect`    — Phase 2b: loop classification (DOALL /
  DOACROSS) and SPMD/MPMD task detection per container.
* :meth:`DiscoveryEngine.rank`      — Phase 3: score + order suggestions for
  a thread count.  Cheap: re-ranking for a new ``n_threads`` reuses every
  cached upstream phase without re-executing the VM.
* :meth:`DiscoveryEngine.parallelize` — Phase 4: transform ranked DOALL
  loops and MPMD task graphs into executable parallel form
  (:class:`~repro.parallelize.plan.TransformPlan`).
* :meth:`DiscoveryEngine.validate`  — Phase 5: execute each transform on the
  work-stealing scheduler and compare against the sequential run
  (:class:`~repro.engine.artifacts.ValidationArtifact`); these runs count in
  ``validation_runs``, not ``vm_runs``.

Each phase returns a typed artifact (:mod:`repro.engine.artifacts`) and
caches it on the engine; ``force=True`` re-runs a phase and invalidates its
downstream caches.  :meth:`DiscoveryEngine.run` assembles the classic
:class:`~repro.engine.artifacts.DiscoveryResult`.
"""

from __future__ import annotations

from typing import Optional

from repro.cu.graph import build_cu_graph, container_cus
from repro.cu.topdown import TopDownBuilder
from repro.discovery.lifting import anchor_events
from repro.discovery.loops import analyze_loops
from repro.discovery.ranking import (
    RankingScores,
    rank_suggestions,
    score_loop,
    score_task_graph,
)
from repro.discovery.suggestions import Suggestion
from repro.discovery.tasks import call_sites, find_mpmd_tasks, find_spmd_tasks
from repro.engine.artifacts import (
    CUArtifact,
    DetectArtifact,
    DiscoveryResult,
    FunctionTaskAnalysis,
    ProfileArtifact,
    RankArtifact,
    ValidationArtifact,
)
from repro.engine.config import DiscoveryConfig
from repro.mir.lowering import compile_source
from repro.mir.module import Module
from repro.obs import ObsSession
from repro.parallelize import (
    build_transform_plan,
    run_sequential_reference,
    validate_plan,
)
from repro.profiler.backends import make_backend
from repro.profiler.pet import PETBuilder
from repro.profiler.serial import SerialProfiler
from repro.profiler.shadow import PerfectShadow
from repro.runtime.events import SpillingTraceSink, TraceSink
from repro.runtime.interpreter import VM
from repro.simulate.exec_model import collect_iteration_costs

#: a task graph must promise at least this inherent speedup to be suggested
MPMD_MIN_SPEEDUP = 1.2
#: and represent at least this fraction of the program's work
MPMD_MIN_COVERAGE = 0.01


def compile_config_source(config: DiscoveryConfig) -> Module:
    """Compile ``config.source`` with the frontend the config selects."""
    if config.frontend == "python":
        from repro.frontend.lowering import compile_python_source

        return compile_python_source(
            config.source,
            name=config.name,
            filename=config.source_path or "<python>",
            first_line=config.source_firstline,
        )
    if config.frontend != "minic":
        raise ValueError(
            f"unknown frontend {config.frontend!r} (expected minic|python)"
        )
    return compile_source(config.source, name=config.name)


class DiscoveryEngine:
    """Staged, re-entrant front door to the discovery pipeline."""

    def __init__(
        self,
        module: Optional[Module] = None,
        config: Optional[DiscoveryConfig] = None,
        **overrides,
    ) -> None:
        if config is None:
            config = DiscoveryConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config
        if module is None:
            if config.source is None:
                raise ValueError(
                    "DiscoveryEngine needs a compiled module or a config "
                    "with source text"
                )
            module = compile_config_source(config)
        self.module = module
        #: number of instrumented VM executions (the expensive phase)
        self.vm_runs = 0
        #: number of validation executions (sequential reference + one
        #: parallel run per feasible transform)
        self.validation_runs = 0
        #: accumulated wall seconds per phase (re-entrant phases add up)
        self.timings: dict[str, float] = {}
        #: per-phase {count, total, last} behind the totals above
        self.timing_detail: dict[str, dict] = {}
        #: per-run observability bundle (mode, tracer, metrics)
        self.obs = ObsSession(config.obs)
        #: test-only deterministic fault schedule (config.fault_plan);
        #: None in production.  ``fault_attempt`` is matched against
        #: ``FaultEvent.gen`` so a resumed/retried run (attempt 1+) sails
        #: past the faults that crashed attempt 0.
        self._faults = None
        self.fault_attempt = 0
        if config.fault_plan is not None:
            from repro.resilience import FaultPlan

            self._faults = FaultPlan.from_dict(config.fault_plan)
        self._profile: Optional[ProfileArtifact] = None
        self._cus: Optional[CUArtifact] = None
        self._detect: Optional[DetectArtifact] = None
        self._rank: Optional[RankArtifact] = None
        self._transform = None
        self._validate: Optional[ValidationArtifact] = None
        #: cached sequential reference run (module/entry/vm_kwargs are
        #: fixed per engine, so one uninstrumented run serves every
        #: worker-count sweep)
        self._seq_ref = None

    @classmethod
    def from_source(cls, source: str, **overrides) -> "DiscoveryEngine":
        """Build an engine straight from MiniC source text."""
        return cls(config=DiscoveryConfig(source=source, **overrides))

    def _check_fault(self, phase: str) -> None:
        """Raise an injected ``raise_in_phase`` fault if one is due."""
        if self._faults is not None:
            self._faults.check_phase(phase, attempt=self.fault_attempt)

    def adopt(
        self,
        *,
        profile: Optional[ProfileArtifact] = None,
        cus: Optional[CUArtifact] = None,
        detect: Optional[DetectArtifact] = None,
        rank: Optional[RankArtifact] = None,
    ) -> None:
        """Install previously computed phase artifacts (checkpoint resume).

        Artifacts must form a prefix of the phase chain — adopting a
        downstream artifact without its upstream inputs would let a
        later ``force=True`` silently recompute from nothing.  The batch
        runner restores a crashed job this way and re-enters at the
        first missing phase; adopted phases never count in ``vm_runs``
        or ``timings``.
        """
        chain = [
            ("profile", profile), ("cus", cus),
            ("detect", detect), ("rank", rank),
        ]
        seen_gap = False
        for name, artifact in chain:
            if artifact is None:
                seen_gap = True
            elif seen_gap:
                raise ValueError(
                    f"adopt() artifacts must form a phase prefix: "
                    f"{name!r} supplied but an upstream phase is missing"
                )
        if profile is not None:
            self._profile = profile
        if cus is not None:
            self._cus = cus
        if detect is not None:
            self._detect = detect
        if rank is not None:
            self._rank = rank

    def _record_timing(self, phase: str, wall: float) -> None:
        """Accumulate a phase wall time (re-entrant phases add, not clobber).

        ``timings[phase]`` stays the float *total* for backward compat;
        ``timing_detail[phase]`` carries count/total/last so a forced
        re-run is distinguishable from a single slow one.
        """
        detail = self.timing_detail.get(phase)
        if detail is None:
            detail = self.timing_detail[phase] = {
                "count": 0, "total": 0.0, "last": 0.0,
            }
        detail["count"] += 1
        detail["total"] += wall
        detail["last"] = wall
        self.timings[phase] = detail["total"]

    def _wrap_tee(self, inner):
        """Observe each VM execution window flowing through the tee.

        Per-window, not per-event: one span / histogram update per chunk
        keeps the instrumented overhead proportional to chunk count.
        """
        tracer = self.obs.tracer
        metrics = self.obs.metrics
        windows = window_events = None
        if metrics is not None:
            windows = metrics.counter(
                "vm.windows", "execution windows shipped through the tee"
            )
            window_events = metrics.histogram(
                "vm.window_events", "events per execution window"
            )

        def tee(chunk) -> None:
            n = len(chunk)
            if tracer.enabled:
                with tracer.span("vm.window", "vm", n_events=n):
                    inner(chunk)
            else:
                inner(chunk)
            if windows is not None:
                windows.inc()
                window_events.observe(n)

        return tee

    # ------------------------------------------------------------------
    # Phase 1: profile
    # ------------------------------------------------------------------

    def profile(self, *, force: bool = False) -> ProfileArtifact:
        """Execute the instrumented VM once; cache trace + dependences."""
        if self._profile is None or force:
            import time as _time

            self._check_fault("profile")
            t0 = _time.perf_counter()
            with self.obs.tracer.span("phase.profile", "engine"):
                self._profile = self._run_profile()
            self._record_timing("profile", _time.perf_counter() - t0)
            self._cus = self._detect = self._rank = None
            self._transform = self._validate = None
        return self._profile

    def _run_profile(self) -> ProfileArtifact:
        config = self.config
        if config.spill_trace:
            trace = SpillingTraceSink(
                config.max_resident_chunks,
                spill_dir=config.spill_dir,
                compress=config.spill_compress,
            )
        else:
            trace = TraceSink()
        backend = make_backend(
            config.backend, **config.resolved_backend_options()
        )
        pet = PETBuilder()

        def tee(chunk) -> None:
            trace(chunk)
            backend(chunk)
            pet.process_chunk(chunk)

        if self.obs.active:
            tee = self._wrap_tee(tee)
            attach = getattr(backend, "attach_obs", None)
            if attach is not None:
                attach(self.obs.tracer, self.obs.metrics)

        vm = VM(
            self.module,
            tee,
            chunk_format=config.chunk_format,
            **config.resolved_vm_kwargs(),
        )
        backend.sig_decoder = vm.loop_signature
        self.vm_runs += 1
        import time as _time

        t0 = _time.perf_counter()
        with self.obs.tracer.span("vm.run", "vm", entry=config.entry):
            return_value = vm.run(config.entry)
        vm_wall = _time.perf_counter() - t0
        # per-variant wall time: the instrumented execution (event
        # staging and sink processing included) under the core that ran
        self._record_timing(f"vm_{vm.effective_dispatch}", vm_wall)
        result = backend.finish()
        stats = dict(result.stats)
        stats["chunk_format"] = config.chunk_format
        stats["dispatch"] = vm.effective_dispatch
        # source provenance: which frontend lowered the module and where
        # the text came from, serialized with the result like dispatch/
        # detect so downstream consumers can map lines back to the file
        stats["frontend"] = config.frontend
        stats["source_file"] = config.source_path
        stats["source_firstline"] = config.source_firstline
        stats["vm_wall_seconds"] = vm_wall
        stats["vm_events_per_sec"] = (
            trace.n_events / vm_wall if vm_wall > 0 else 0.0
        )
        stats["vm_steps"] = vm.total_steps
        stats["trace_events"] = trace.n_events
        stats["trace_nbytes"] = trace.nbytes
        if self.obs.metrics is not None:
            m = self.obs.metrics
            m.counter(
                "engine.vm_runs", "instrumented VM executions"
            ).inc()
            m.counter(
                "engine.vm_steps", "interpreter/compiled steps executed"
            ).inc(vm.total_steps)
            m.counter(
                "engine.trace_events", "runtime events recorded"
            ).inc(trace.n_events)
            m.gauge(
                "engine.trace_nbytes", "bytes held by the trace sink"
            ).set(trace.nbytes)
            deps = stats.get("deps")
            raw = stats.get("raw_occurrences")
            if deps is not None:
                m.gauge("detect.deps", "merged dependence edges").set(deps)
            if raw is not None and deps:
                m.gauge("detect.raw_occurrences",
                        "pre-merge dependence occurrences").set(raw)
                m.gauge(
                    "detect.dedup_ratio",
                    "raw occurrences per merged dependence",
                ).set(round(raw / deps, 4))
        if isinstance(trace, SpillingTraceSink):
            stats["spilled_chunks"] = trace.n_spilled_chunks
            stats["spilled_bytes"] = trace.spilled_bytes
        return ProfileArtifact(
            return_value=return_value,
            store=result.store,
            control=result.control,
            stats=stats,
            module=self.module,
            trace=trace,
            pet=pet,
            vm=vm,
            backend_result=result,
        )

    # ------------------------------------------------------------------
    # Phase 2a: CU construction
    # ------------------------------------------------------------------

    def build_cus(self, *, force: bool = False) -> CUArtifact:
        """Top-down CU construction over the cached trace.

        Walks the trace chunk-wise: packed chunks take the columnar fast
        path (vectorized line counts), and a spilling sink re-reads its
        segments lazily, so the full trace never needs to be resident.
        """
        if self._cus is None or force:
            import time as _time

            self._check_fault("cus")
            profile = self.profile()
            t0 = _time.perf_counter()
            with self.obs.tracer.span("phase.build_cus", "engine"):
                builder = TopDownBuilder(self.module)
                builder.process_chunks(profile.trace.iter_chunks())
                registry = builder.build()
            self._cus = CUArtifact(
                registry=registry,
                line_counts=builder.line_counts,
                total_instructions=sum(builder.line_counts.values()),
            )
            if self.obs.metrics is not None:
                self.obs.metrics.gauge(
                    "engine.cus", "computational units constructed"
                ).set(len(registry.all_cus))
            self._record_timing("build_cus", _time.perf_counter() - t0)
            self._detect = self._rank = None
            self._transform = self._validate = None
        return self._cus

    # ------------------------------------------------------------------
    # Phase 2b: detection
    # ------------------------------------------------------------------

    def detect(self, *, force: bool = False) -> DetectArtifact:
        """Loop classification + per-container task detection."""
        if self._detect is None or force:
            import time as _time

            self._check_fault("detect")
            profile = self.profile()
            cus = self.build_cus()
            t0 = _time.perf_counter()
            self.obs.tracer.begin("phase.detect", "engine")
            module = self.module
            registry = cus.registry

            loops = analyze_loops(
                module,
                profile.store,
                registry,
                profile.control,
                cus.line_counts,
            )

            functions: dict[str, FunctionTaskAnalysis] = {}
            for name, func in module.functions.items():
                region = module.regions.get(func.region_id)
                if region is None or region.region_id not in registry.by_region:
                    continue  # never executed
                functions[name] = self._analyze_container(name, region)

            # loop bodies containing call sites are task containers too (the
            # FaceDetection frame loop of Fig. 4.10 is the canonical case)
            loop_tasks: dict[int, FunctionTaskAnalysis] = {}
            for region in module.loops():
                if region.region_id not in registry.by_region:
                    continue
                if not call_sites(module, region):
                    continue
                loop_tasks[region.region_id] = self._analyze_container(
                    region.func, region
                )

            self._detect = DetectArtifact(
                loops=loops, functions=functions, loop_tasks=loop_tasks
            )
            self.obs.tracer.end()
            if self.obs.metrics is not None:
                m = self.obs.metrics
                m.gauge("detect.loops", "loops classified").set(len(loops))
                m.gauge(
                    "detect.task_containers",
                    "functions + loop bodies analyzed for tasks",
                ).set(len(functions) + len(loop_tasks))
            self._record_timing("detect", _time.perf_counter() - t0)
            self._rank = None
            self._transform = self._validate = None
        return self._detect

    def _analyze_container(self, name: str, region) -> FunctionTaskAnalysis:
        profile = self.profile()
        cus = self.build_cus()
        module = self.module
        anchored_prof = SerialProfiler(
            PerfectShadow(), profile.vm.loop_signature
        )
        # anchored line counts attribute a call's entire dynamic subtree to
        # its call site — the work a task node really carries
        anchored_counts: dict[int, int] = {}

        def tally(events):
            for ev in events:
                if ev[0] in ("R", "W"):
                    line = ev[2]
                    anchored_counts[line] = anchored_counts.get(line, 0) + 1
                yield ev

        anchored_prof.process_chunk(
            tally(anchor_events(profile.trace.events(), module, region))
        )
        # each call site becomes its own CU: calls are the task units
        call_lines = frozenset(call_sites(module, region))
        graph = build_cu_graph(
            cus.registry,
            anchored_prof.store,
            module,
            region,
            isolate_lines=call_lines,
            line_counts=anchored_counts,
        )
        return FunctionTaskAnalysis(
            func=name,
            region_id=region.region_id,
            anchored_store=anchored_prof.store,
            cu_graph=graph,
            spmd_groups=find_spmd_tasks(
                module, region, graph, anchored_prof.store
            ),
            task_graph=find_mpmd_tasks(graph, region),
        )

    # ------------------------------------------------------------------
    # Phase 3: ranking
    # ------------------------------------------------------------------

    def rank(
        self, n_threads: Optional[int] = None, *, force: bool = False
    ) -> RankArtifact:
        """Score and order suggestions; cheap to re-run per thread count.

        With no ``n_threads``, an existing cached ranking is reused
        whatever its thread count — downstream phases (parallelize,
        validate) depend on *the* current ranking, not on a particular
        count — so ``run(n_threads=8)`` validates against the 8-thread
        suggestions it returns.
        """
        if n_threads is None and self._rank is not None and not force:
            return self._rank
        n = n_threads if n_threads is not None else self.config.n_threads
        if self._rank is None or force or self._rank.n_threads != n:
            import time as _time

            self._check_fault("rank")
            t0 = _time.perf_counter()
            with self.obs.tracer.span("phase.rank", "engine", n_threads=n):
                self._rank = self._run_rank(n)
            if self.obs.metrics is not None:
                self.obs.metrics.gauge(
                    "rank.suggestions", "ranked parallelization suggestions"
                ).set(len(self._rank.suggestions))
            self._record_timing("rank", _time.perf_counter() - t0)
            self._transform = self._validate = None
        return self._rank

    def _run_rank(self, n_threads: int) -> RankArtifact:
        cus = self.build_cus()
        detect = self.detect()
        module = self.module
        registry = cus.registry
        total_instructions = cus.total_instructions

        suggestions: list[Suggestion] = []
        for info in detect.loops:
            if not info.is_parallelizable:
                continue
            region = module.regions[info.region_id]
            body_work = [
                cu.instructions
                for cu in container_cus(
                    registry, module, region, cus.line_counts
                )
            ]
            scores = score_loop(
                info, total_instructions, n_threads, body_work
            )
            suggestions.append(
                Suggestion(
                    kind=info.classification,
                    func=info.func,
                    start_line=info.start_line,
                    end_line=info.end_line,
                    scores=scores,
                    loop=info,
                )
            )
        analyses = list(detect.functions.values()) + list(
            detect.loop_tasks.values()
        )
        for analysis in analyses:
            region = module.regions[analysis.region_id]
            for group in analysis.spmd_groups:
                if not group.independent:
                    continue
                scores = RankingScores(
                    instruction_coverage=min(
                        1.0,
                        sum(
                            analysis.cu_graph.cu(c).instructions
                            for c in group.cu_ids
                        )
                        / max(1, total_instructions),
                    ),
                    local_speedup=float(
                        min(n_threads, len(group.call_lines))
                    ),
                    cu_imbalance=0.0,
                )
                suggestions.append(
                    Suggestion(
                        kind="SPMD",
                        func=analysis.func,
                        start_line=min(group.call_lines),
                        end_line=max(group.call_lines),
                        scores=scores,
                        spmd=group,
                    )
                )
            tg = analysis.task_graph
            if tg is not None and tg.width >= 2 and len(tg.nodes) >= 2:
                scores = score_task_graph(tg, total_instructions, n_threads)
                if (
                    tg.inherent_speedup >= MPMD_MIN_SPEEDUP
                    and scores.instruction_coverage >= MPMD_MIN_COVERAGE
                ):
                    suggestions.append(
                        Suggestion(
                            kind="MPMD",
                            func=analysis.func,
                            start_line=region.start_line,
                            end_line=region.end_line,
                            scores=scores,
                            task_graph=tg,
                        )
                    )

        return RankArtifact(
            n_threads=n_threads, suggestions=rank_suggestions(suggestions)
        )

    # ------------------------------------------------------------------
    # Phase 4: parallelize (suggestion-driven MIR transforms)
    # ------------------------------------------------------------------

    def parallelize(
        self, n_workers: Optional[int] = None, *, force: bool = False
    ):
        """Transform ranked DOALL/MPMD suggestions into parallel form.

        Returns the :class:`~repro.parallelize.plan.TransformPlan`: per
        suggestion either the chunking/outlining recipe plus a transformed
        module clone, or the reason the transform was declined.  Attaches a
        ``transform`` summary to each planned suggestion.
        """
        workers = n_workers if n_workers is not None else self.config.n_workers
        if (
            self._transform is None
            or force
            or self._transform.n_workers != workers
        ):
            import time as _time

            profile = self.profile()
            ranked = self.rank()
            t0 = _time.perf_counter()
            with self.obs.tracer.span(
                "phase.parallelize", "engine", n_workers=workers
            ):
                self._transform = build_transform_plan(
                    self.module,
                    ranked.suggestions,
                    profile.control,
                    n_workers=workers,
                    name=self.config.name,
                )
            if self.obs.metrics is not None:
                self.obs.metrics.gauge(
                    "parallelize.feasible",
                    "suggestions transformed into runnable plans",
                ).set(len(self._transform.feasible_entries))
            self._record_timing("parallelize", _time.perf_counter() - t0)
            self._validate = None
        return self._transform

    # ------------------------------------------------------------------
    # Phase 5: validate (execute transforms, compare, measure)
    # ------------------------------------------------------------------

    def validate(
        self, n_workers: Optional[int] = None, *, force: bool = False
    ) -> ValidationArtifact:
        """Execute every feasible transform and validate it bit-for-bit."""
        workers = n_workers if n_workers is not None else self.config.n_workers
        if (
            self._validate is None
            or force
            or self._validate.n_workers != workers
        ):
            import time as _time

            plan = self.parallelize(workers)
            ranked = self.rank()
            vm_kwargs = self.config.resolved_vm_kwargs()
            t0 = _time.perf_counter()
            self.obs.tracer.begin("phase.validate", "engine")
            if self._seq_ref is None:
                with self.obs.tracer.span("seq.reference", "vm"):
                    self._seq_ref = run_sequential_reference(
                        self.module, entry=self.config.entry, **vm_kwargs
                    )
                self.validation_runs += 1
            # per-iteration cost profiles of the DOALL regions, from the
            # cached trace (one scan for every region): the exec model
            # then predicts with the real chunk work distribution
            # instead of a uniform estimate
            profile = self.profile()
            iteration_costs = collect_iteration_costs(
                profile.trace,
                {
                    entry.region_id
                    for entry in plan.feasible_entries
                    if getattr(entry, "chunks", None)
                },
            )
            reports = validate_plan(
                self.module,
                plan,
                n_workers=workers,
                entry=self.config.entry,
                suggestions=ranked.suggestions,
                quantum=self.config.parallel_quantum,
                vm_kwargs=vm_kwargs,
                seq=self._seq_ref,
                iteration_costs=iteration_costs,
                tracer=(
                    self.obs.tracer if self.obs.tracer.enabled else None
                ),
            )
            self.validation_runs += sum(1 for r in reports if r.feasible)
            self._validate = ValidationArtifact(
                n_workers=workers, reports=reports
            )
            self.obs.tracer.end()
            if self.obs.metrics is not None:
                m = self.obs.metrics
                for report in reports:
                    sched = getattr(report, "scheduler", None) or {}
                    for key in ("ticks", "steals", "tasks_forked"):
                        if key in sched:
                            m.counter(
                                f"pvm.{key}",
                                f"scheduler {key} across validation runs",
                            ).inc(sched[key])
            self._record_timing("validate", _time.perf_counter() - t0)
        return self._validate

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------

    def run(self, n_threads: Optional[int] = None) -> DiscoveryResult:
        """Run (or reuse) every phase and assemble a DiscoveryResult."""
        sampler = None
        if self.obs.tracer.enabled:
            from repro.obs import SamplingProfiler

            sampler = SamplingProfiler(self.obs.tracer).start()
        try:
            profile = self.profile()
            cus = self.build_cus()
            detect = self.detect()
            ranked = self.rank(n_threads)
            validations = []
            prediction_error = None
            if self.config.validate:
                artifact = self.validate()
                validations = list(artifact.reports)
                prediction_error = artifact.mean_abs_prediction_error
        finally:
            if sampler is not None:
                sampler.stop()
        selfprof: dict = {}
        if self.obs.tracer.enabled:
            from repro.obs import hotness

            hot = hotness(self.obs.tracer)
            selfprof = {
                "phases": hot["phases"],
                "hottest": [list(row) for row in hot["hottest"]],
                "sampling": sampler.aggregates(),
            }
        return DiscoveryResult(
            module=self.module,
            return_value=profile.return_value,
            store=profile.store,
            control=profile.control,
            registry=cus.registry,
            line_counts=cus.line_counts,
            total_instructions=cus.total_instructions,
            loops=detect.loops,
            functions=detect.functions,
            suggestions=ranked.suggestions,
            pet=profile.pet,
            loop_tasks=detect.loop_tasks,
            trace=profile.trace if self.config.keep_trace else None,
            vm=profile.vm,
            n_threads=ranked.n_threads,
            timings=dict(self.timings),
            timing_detail={
                phase: dict(detail)
                for phase, detail in self.timing_detail.items()
            },
            metrics=self.obs.snapshot(),
            selfprof=selfprof,
            profile_stats=dict(profile.stats),
            validations=validations,
            prediction_error=prediction_error,
        )

    #: alias mirroring the legacy function name
    discover = run
