"""Instrumentation event stream format.

Events are plain tuples for speed; the first element is a one-character kind
code.  Layouts::

    (EV_READ,   addr, line, var, op_id, tid, ts, loop_sig, var_id)
    (EV_WRITE,  addr, line, var, op_id, tid, ts, loop_sig, var_id)
    (EV_BGN,    region_id, kind, line, tid, ts)
    (EV_END,    region_id, kind, line, tid, ts, iterations)
    (EV_ITER,   region_id, tid, ts)
    (EV_FENTRY, func_name, line, tid, ts, call_line)
    (EV_FEXIT,  func_name, tid, ts)
    (EV_ALLOC,  base, size, tid, ts)          # stack frame or heap block
    (EV_FREE,   base, size, tid, ts)          # lifetime end of a block
    (EV_LOCK,   lock_id, tid, ts)             # lock acquired
    (EV_UNLOCK, lock_id, tid, ts)
    (EV_SPAWN,  child_tid, tid, ts)
    (EV_JOINED, joined_tid, tid, ts)

``loop_sig`` is an interned id of the thread's loop-context stack
``((region_id, iteration), ...)`` at the time of the access — the dependence
builder uses it to classify loop-carried dependences.  ``ts`` is a global
logical timestamp (one tick per executed instruction) — the paper's
"timestamp of every memory access" used to expose potential data races in
multi-threaded targets (§2.3.4).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

EV_READ = "R"
EV_WRITE = "W"
EV_BGN = "G"
EV_END = "E"
EV_ITER = "I"
EV_FENTRY = "C"
EV_FEXIT = "X"
EV_ALLOC = "A"
EV_FREE = "F"
EV_LOCK = "L"
EV_UNLOCK = "U"
EV_SPAWN = "S"
EV_JOINED = "J"

MEMORY_KINDS = (EV_READ, EV_WRITE)


class TraceSink:
    """Sink that records the entire event stream in memory.

    Suitable for the test programs and CU construction (which needs to walk
    the trace); the profiler proper consumes chunks online instead.
    """

    def __init__(self) -> None:
        self.chunks: list[list[tuple]] = []
        self.n_events = 0

    def __call__(self, chunk: list[tuple]) -> None:
        self.chunks.append(chunk)
        self.n_events += len(chunk)

    def events(self) -> Iterator[tuple]:
        for chunk in self.chunks:
            yield from chunk

    def memory_events(self) -> Iterator[tuple]:
        for event in self.events():
            if event[0] in MEMORY_KINDS:
                yield event

    def __len__(self) -> int:
        return self.n_events


class CallbackSink:
    """Adapts a per-event callback into a chunk sink."""

    def __init__(self, fn: Callable[[tuple], None]) -> None:
        self.fn = fn

    def __call__(self, chunk: Iterable[tuple]) -> None:
        fn = self.fn
        for event in chunk:
            fn(event)


def count_memory_accesses(sink: TraceSink) -> tuple[int, int]:
    """(reads, writes) in a recorded trace."""
    reads = writes = 0
    for event in sink.events():
        if event[0] == EV_READ:
            reads += 1
        elif event[0] == EV_WRITE:
            writes += 1
    return reads, writes
