"""Instrumentation event stream formats.

Two chunk representations flow through the pipeline:

* **Legacy tuple chunks** — lists of plain tuples whose first element is a
  one-character kind code.  Layouts::

      (EV_READ,   addr, line, var, op_id, tid, ts, loop_sig, var_id)
      (EV_WRITE,  addr, line, var, op_id, tid, ts, loop_sig, var_id)
      (EV_BGN,    region_id, kind, line, tid, ts)
      (EV_END,    region_id, kind, line, tid, ts, iterations)
      (EV_ITER,   region_id, tid, ts)
      (EV_FENTRY, func_name, line, tid, ts, call_line)
      (EV_FEXIT,  func_name, tid, ts)
      (EV_ALLOC,  base, size, tid, ts)          # stack frame or heap block
      (EV_FREE,   base, size, tid, ts)          # lifetime end of a block
      (EV_LOCK,   lock_id, tid, ts)             # lock acquired
      (EV_UNLOCK, lock_id, tid, ts)
      (EV_SPAWN,  child_tid, tid, ts)
      (EV_JOINED, joined_tid, tid, ts)

* **Columnar chunks** (:class:`EventChunk`) — a packed numpy structured
  array (:data:`EVENT_DTYPE`): one int64 row of :data:`N_COLS` columns per
  event, kinds int-coded (:data:`K_READ` ...), strings (variable/function
  names, region kinds) interned through a :class:`StringTable`.  Every
  legacy layout maps onto the same nine columns (see :data:`COLUMNS`); the
  adapter :meth:`EventChunk.to_tuples` decodes rows back to the legacy
  tuples bit-for-bit, so tuple-era consumers keep working unchanged —
  iterating an :class:`EventChunk` yields legacy tuples.

``loop_sig`` is an interned id of the thread's loop-context stack
``((region_id, iteration), ...)`` at the time of the access — the dependence
builder uses it to classify loop-carried dependences.  ``ts`` is a global
logical timestamp (one tick per executed instruction) — the paper's
"timestamp of every memory access" used to expose potential data races in
multi-threaded targets (§2.3.4).
"""

from __future__ import annotations

import os
import tempfile
from collections import deque
from typing import Callable, Iterable, Iterator, Optional, Union

import numpy as np

EV_READ = "R"
EV_WRITE = "W"
EV_BGN = "G"
EV_END = "E"
EV_ITER = "I"
EV_FENTRY = "C"
EV_FEXIT = "X"
EV_ALLOC = "A"
EV_FREE = "F"
EV_LOCK = "L"
EV_UNLOCK = "U"
EV_SPAWN = "S"
EV_JOINED = "J"

MEMORY_KINDS = (EV_READ, EV_WRITE)

# ---------------------------------------------------------------------------
# packed columnar format
# ---------------------------------------------------------------------------

# Int kind codes.  READ/WRITE are 0/1 so `kind <= K_WRITE` masks memory
# events in one vectorized comparison.
K_READ = 0
K_WRITE = 1
K_BGN = 2
K_END = 3
K_ITER = 4
K_FENTRY = 5
K_FEXIT = 6
K_ALLOC = 7
K_FREE = 8
K_LOCK = 9
K_UNLOCK = 10
K_SPAWN = 11
K_JOINED = 12

KIND_CODE = {
    EV_READ: K_READ,
    EV_WRITE: K_WRITE,
    EV_BGN: K_BGN,
    EV_END: K_END,
    EV_ITER: K_ITER,
    EV_FENTRY: K_FENTRY,
    EV_FEXIT: K_FEXIT,
    EV_ALLOC: K_ALLOC,
    EV_FREE: K_FREE,
    EV_LOCK: K_LOCK,
    EV_UNLOCK: K_UNLOCK,
    EV_SPAWN: K_SPAWN,
    EV_JOINED: K_JOINED,
}
CODE_KIND = {code: kind for kind, code in KIND_CODE.items()}

#: column order of a packed row.  Per kind:
#:
#: ====== ========= ===== ============ =========== === == === ======
#: kind   addr      line  name         aux         tid ts sig var
#: ====== ========= ===== ============ =========== === == === ======
#: READ   addr      line  var-name id  op_id       ✓   ✓  ✓   var_id
#: WRITE  addr      line  var-name id  op_id       ✓   ✓  ✓   var_id
#: BGN    region_id line  kind-str id  —           ✓   ✓
#: END    region_id line  kind-str id  iterations  ✓   ✓
#: ITER   region_id —     —            —           ✓   ✓
#: FENTRY —         line  func-name id call_line   ✓   ✓
#: FEXIT  —         —     func-name id —           ✓   ✓
#: ALLOC  base      —     —            size        ✓   ✓
#: FREE   base      —     —            size        ✓   ✓
#: LOCK   lock_id   —     —            —           ✓   ✓
#: UNLOCK lock_id   —     —            —           ✓   ✓
#: SPAWN  child_tid —     —            —           ✓   ✓
#: JOINED joined    —     —            —           ✓   ✓
#: ====== ========= ===== ============ =========== === == === ======
COLUMNS = ("kind", "addr", "line", "name", "aux", "tid", "ts", "sig", "var")
N_COLS = len(COLUMNS)
COL_KIND, COL_ADDR, COL_LINE, COL_NAME, COL_AUX, COL_TID, COL_TS, COL_SIG, \
    COL_VAR = range(N_COLS)

#: structured view of a packed row — all int64 so a (n, N_COLS) C-contiguous
#: int64 array can be reinterpreted without copying
EVENT_DTYPE = np.dtype([(name, np.int64) for name in COLUMNS])

#: bytes per packed event
EVENT_NBYTES = EVENT_DTYPE.itemsize


class StringTable:
    """Bidirectional interning of the strings an event stream carries.

    Index 0 is reserved for ``None`` (memory events of unnamed temporaries
    carry ``var=None`` in the legacy tuples).  The table only ever grows, so
    ids stay valid for the lifetime of a trace; chunks hold a reference to
    the table instead of copies.
    """

    __slots__ = ("values", "_ids")

    def __init__(self, values: Optional[list] = None) -> None:
        if values:
            if values[0] is not None:
                raise ValueError("StringTable slot 0 is reserved for None")
            self.values: list = list(values)
        else:
            self.values = [None]
        self._ids: dict = {v: i for i, v in enumerate(self.values)}

    def intern(self, value: Optional[str]) -> int:
        sid = self._ids.get(value)
        if sid is None:
            sid = len(self.values)
            self._ids[value] = sid
            self.values.append(value)
        return sid

    def decode(self, sid: int) -> Optional[str]:
        return self.values[sid]

    def __len__(self) -> int:
        return len(self.values)

    def to_array(self) -> np.ndarray:
        """Unicode array for npz persistence (slot 0 stored as '')."""
        return np.array(
            ["" if v is None else v for v in self.values], dtype=str
        )

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "StringTable":
        values: list = [None]
        values.extend(str(v) for v in arr.tolist()[1:])
        return cls(values)


def _encode_row(ev: tuple, strings: StringTable) -> tuple:
    """One legacy tuple -> one packed int row (the slow reference codec)."""
    kind = ev[0]
    code = KIND_CODE[kind]
    if code <= K_WRITE:
        var_id = ev[8]
        return (code, ev[1], ev[2], strings.intern(ev[3]), ev[4], ev[5],
                ev[6], ev[7], -1 if var_id is None else var_id)
    if code == K_BGN:
        return (code, ev[1], ev[3], strings.intern(ev[2]), 0, ev[4], ev[5],
                0, 0)
    if code == K_END:
        return (code, ev[1], ev[3], strings.intern(ev[2]), ev[6], ev[4],
                ev[5], 0, 0)
    if code == K_ITER:
        return (code, ev[1], 0, 0, 0, ev[2], ev[3], 0, 0)
    if code == K_FENTRY:
        return (code, 0, ev[2], strings.intern(ev[1]), ev[5], ev[3], ev[4],
                0, 0)
    if code == K_FEXIT:
        return (code, 0, 0, strings.intern(ev[1]), 0, ev[2], ev[3], 0, 0)
    if code in (K_ALLOC, K_FREE):
        return (code, ev[1], 0, 0, ev[2], ev[3], ev[4], 0, 0)
    # LOCK / UNLOCK / SPAWN / JOINED: (kind, operand, tid, ts)
    return (code, ev[1], 0, 0, 0, ev[2], ev[3], 0, 0)


def _decode_row(row: list, names: list) -> tuple:
    """One packed int row -> the legacy tuple (inverse of _encode_row)."""
    code = row[COL_KIND]
    if code <= K_WRITE:
        var_id = row[COL_VAR]
        return (EV_READ if code == K_READ else EV_WRITE, row[COL_ADDR],
                row[COL_LINE], names[row[COL_NAME]], row[COL_AUX],
                row[COL_TID], row[COL_TS], row[COL_SIG],
                None if var_id == -1 else var_id)
    if code == K_BGN:
        return (EV_BGN, row[COL_ADDR], names[row[COL_NAME]], row[COL_LINE],
                row[COL_TID], row[COL_TS])
    if code == K_END:
        return (EV_END, row[COL_ADDR], names[row[COL_NAME]], row[COL_LINE],
                row[COL_TID], row[COL_TS], row[COL_AUX])
    if code == K_ITER:
        return (EV_ITER, row[COL_ADDR], row[COL_TID], row[COL_TS])
    if code == K_FENTRY:
        return (EV_FENTRY, names[row[COL_NAME]], row[COL_LINE],
                row[COL_TID], row[COL_TS], row[COL_AUX])
    if code == K_FEXIT:
        return (EV_FEXIT, names[row[COL_NAME]], row[COL_TID], row[COL_TS])
    if code == K_ALLOC or code == K_FREE:
        return (EV_ALLOC if code == K_ALLOC else EV_FREE, row[COL_ADDR],
                row[COL_AUX], row[COL_TID], row[COL_TS])
    return (CODE_KIND[code], row[COL_ADDR], row[COL_TID], row[COL_TS])


class EventChunk:
    """One packed columnar chunk: a ``(n, N_COLS)`` int64 array + strings.

    Iterating an :class:`EventChunk` yields the legacy tuples, so every
    tuple-era consumer (PET builder, CU walker, skipping filter, tests)
    accepts a columnar chunk unmodified; columnar-aware consumers detect
    the type and read the columns directly instead.
    """

    __slots__ = ("rows", "strings")

    def __init__(self, rows: np.ndarray, strings: StringTable) -> None:
        self.rows = rows
        self.strings = strings

    # -- construction --------------------------------------------------

    @classmethod
    def from_tuples(
        cls, events: Iterable[tuple], strings: Optional[StringTable] = None
    ) -> "EventChunk":
        """Pack legacy tuples (the migration codec; the VM packs natively)."""
        strings = strings if strings is not None else StringTable()
        staged = [_encode_row(ev, strings) for ev in events]
        rows = np.array(staged, dtype=np.int64).reshape(len(staged), N_COLS)
        return cls(rows, strings)

    # -- columns -------------------------------------------------------

    @property
    def kind(self) -> np.ndarray:
        return self.rows[:, COL_KIND]

    @property
    def addr(self) -> np.ndarray:
        return self.rows[:, COL_ADDR]

    @property
    def line(self) -> np.ndarray:
        return self.rows[:, COL_LINE]

    @property
    def structured(self) -> np.ndarray:
        """Zero-copy view of the rows as the :data:`EVENT_DTYPE` records."""
        return np.ascontiguousarray(self.rows).view(EVENT_DTYPE).reshape(-1)

    def memory_mask(self) -> np.ndarray:
        return self.rows[:, COL_KIND] <= K_WRITE

    def take(self, indices) -> "EventChunk":
        """Row subset (order-preserving) sharing the string table."""
        return EventChunk(self.rows[indices], self.strings)

    # -- sizes ---------------------------------------------------------

    def __len__(self) -> int:
        return self.rows.shape[0]

    @property
    def nbytes(self) -> int:
        return self.rows.nbytes

    # -- legacy view ---------------------------------------------------

    def to_tuples(self) -> Iterator[tuple]:
        """Decode rows back to the legacy tuple layouts, in order."""
        names = self.strings.values
        for row in self.rows.tolist():
            yield _decode_row(row, names)

    __iter__ = to_tuples


class ChunkBuilder:
    """Fills preallocated packed chunks from staged rows.

    The interpreter stages int rows in a plain Python list (a CPython list
    append is an order of magnitude cheaper than a per-element structured-
    array store) and the builder blits the whole batch into the
    preallocated chunk in one vectorized assignment at flush time.
    """

    __slots__ = ("capacity", "strings", "_rows")

    def __init__(
        self, capacity: int, strings: Optional[StringTable] = None
    ) -> None:
        self.capacity = capacity
        self.strings = strings if strings is not None else StringTable()
        self._rows = np.empty((capacity, N_COLS), dtype=np.int64)

    def build(self, staged: list) -> EventChunk:
        """Pack staged rows into the current preallocated chunk.

        The returned chunk always owns (a view of) the buffer it was
        packed into; the builder swaps in a fresh buffer either way, so a
        later ``build`` can never scribble over rows already handed out.
        """
        n = len(staged)
        rows, self._rows = self._rows, np.empty(
            (self.capacity, N_COLS), dtype=np.int64
        )
        if n != self.capacity:
            # short final chunk: hand out a sliced view of the
            # preallocated buffer instead of re-materializing the staged
            # rows through np.array()
            rows = rows[:n]
        if n:
            rows[:] = staged
        return EventChunk(rows, self.strings)

    def build_flat(self, staged: list) -> EventChunk:
        """Pack a *flat* staging list (:data:`N_COLS` ints per event).

        The compiled-dispatch VM stages scalar int columns instead of
        row tuples — converting one flat int list is almost twice as
        fast as converting a list of row tuples, and no per-event tuple
        object is ever allocated.
        """
        rows = np.fromiter(staged, np.int64, len(staged)).reshape(
            -1, N_COLS
        )
        return EventChunk(rows, self.strings)


def estimate_tuple_bytes(chunk: list) -> int:
    """Approximate heap footprint of a legacy tuple chunk (for nbytes)."""
    import sys

    if not chunk:
        return 0
    sample = chunk[0]
    per_event = sys.getsizeof(sample) + 8 * len(sample) + 8
    return sys.getsizeof(chunk) + per_event * len(chunk)


Chunk = Union[list, EventChunk]


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


class TraceSink:
    """Sink that records the entire event stream in memory.

    Accepts both chunk representations.  ``n_events`` is maintained in
    exactly one place (:meth:`__call__`); every other view (``__len__``,
    iteration) derives from the recorded chunks.  ``nbytes`` exposes the
    resident footprint so memory pressure is observable.
    """

    def __init__(self) -> None:
        self.chunks: list[Chunk] = []
        self.n_events = 0

    def __call__(self, chunk: Chunk) -> None:
        self.chunks.append(chunk)
        self.n_events += len(chunk)

    def iter_chunks(self) -> Iterator[Chunk]:
        """The recorded chunks in arrival order (columnar-aware walkers)."""
        yield from self.chunks

    def events(self) -> Iterator[tuple]:
        for chunk in self.chunks:
            yield from chunk

    def memory_events(self) -> Iterator[tuple]:
        for event in self.events():
            if event[0] in MEMORY_KINDS:
                yield event

    def __len__(self) -> int:
        return self.n_events

    @property
    def nbytes(self) -> int:
        """Resident bytes across recorded chunks (estimate for tuples)."""
        total = 0
        for chunk in self.chunks:
            if isinstance(chunk, EventChunk):
                total += chunk.nbytes
            else:
                total += estimate_tuple_bytes(chunk)
        return total


class SpillingTraceSink:
    """Bounded-memory trace recorder: resident chunk window + npz spill.

    Keeps at most ``max_resident_chunks`` packed chunks in RAM; older
    chunks are spilled to segment files, one chunk per segment, ``rows``
    array only — the string table stays resident, it is tiny and
    monotonic.  ``compress=True`` (the default) writes compressed
    ``.npz``; ``compress=False`` writes raw ``.npy``, which consumers —
    notably the sharded detection workers — can
    ``np.load(..., mmap_mode="r")`` zero-copy straight out of the page
    cache instead of decompressing per segment (:attr:`segment_paths`
    exposes the on-disk files).  :meth:`events` / :meth:`iter_chunks`
    re-iterate the full trace in order, loading spilled segments lazily,
    so CU construction and report generation no longer need the whole
    trace in memory.

    Tuple chunks are packed on arrival through the reference codec; the
    columnar VM hands over already-packed chunks and shares its string
    table.
    """

    def __init__(
        self,
        max_resident_chunks: int = 64,
        *,
        spill_dir: Optional[str] = None,
        compress: bool = True,
    ) -> None:
        if max_resident_chunks < 1:
            raise ValueError("need at least one resident chunk")
        self.max_resident_chunks = max_resident_chunks
        self.compress = compress
        self.n_events = 0
        self.n_spilled_chunks = 0
        self.spilled_bytes = 0
        self._resident: deque[EventChunk] = deque()
        self._segments: list[str] = []
        self._strings: Optional[StringTable] = None
        self._spill_dir = spill_dir
        self._own_dir = spill_dir is None
        self._dir: Optional[str] = None

    # -- ingestion -----------------------------------------------------

    def __call__(self, chunk: Chunk) -> None:
        if not isinstance(chunk, EventChunk):
            if self._strings is None:
                self._strings = StringTable()
            chunk = EventChunk.from_tuples(chunk, self._strings)
        elif self._strings is None:
            self._strings = chunk.strings
        self.n_events += len(chunk)
        self._resident.append(chunk)
        while len(self._resident) > self.max_resident_chunks:
            self._spill(self._resident.popleft())

    def _ensure_dir(self) -> str:
        if self._dir is None:
            if self._spill_dir is not None:
                os.makedirs(self._spill_dir, exist_ok=True)
                self._dir = self._spill_dir
            else:
                self._dir = tempfile.mkdtemp(prefix="repro-trace-")
        return self._dir

    def _spill(self, chunk: EventChunk) -> None:
        ext = "npz" if self.compress else "npy"
        path = os.path.join(
            self._ensure_dir(), f"segment-{len(self._segments):06d}.{ext}"
        )
        with open(path, "wb") as handle:
            if self.compress:
                np.savez_compressed(handle, rows=chunk.rows)
            else:
                # raw .npy: a plain array dump, np.load(mmap_mode="r")-able
                np.save(handle, chunk.rows)
        self._segments.append(path)
        self.n_spilled_chunks += 1
        self.spilled_bytes += os.path.getsize(path)

    # -- re-iterable reading -------------------------------------------

    @property
    def strings(self) -> StringTable:
        if self._strings is None:
            self._strings = StringTable()
        return self._strings

    @property
    def resident_chunks(self) -> int:
        return len(self._resident)

    @property
    def segment_paths(self) -> tuple:
        """Spilled segment files, in trace order (resident chunks excluded)."""
        return tuple(self._segments)

    def iter_chunks(self) -> Iterator[EventChunk]:
        """All chunks in arrival order; spilled segments load lazily.

        Raw ``.npy`` segments are memory-mapped read-only — iterating a
        spilled trace touches only the pages a consumer actually reads.
        """
        strings = self.strings
        for path in self._segments:
            if path.endswith(".npy"):
                yield EventChunk(np.load(path, mmap_mode="r"), strings)
            else:
                with np.load(path) as data:
                    yield EventChunk(data["rows"], strings)
        yield from self._resident

    def events(self) -> Iterator[tuple]:
        for chunk in self.iter_chunks():
            yield from chunk

    def memory_events(self) -> Iterator[tuple]:
        for event in self.events():
            if event[0] in MEMORY_KINDS:
                yield event

    def __len__(self) -> int:
        return self.n_events

    @property
    def nbytes(self) -> int:
        """Resident bytes only — the point of spilling."""
        return sum(chunk.nbytes for chunk in self._resident)

    # -- persistence / cleanup -----------------------------------------

    def save(self, path: str) -> None:
        save_trace(self, path)

    def close(self) -> None:
        """Delete spill segments (and the spill dir when we created it)."""
        for segment in self._segments:
            try:
                os.remove(segment)
            except OSError:
                pass
        self._segments.clear()
        if self._own_dir and self._dir is not None:
            try:
                os.rmdir(self._dir)
            except OSError:
                pass
        self._dir = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def save_trace(sink, path: str) -> None:
    """Persist a recorded trace (any sink with ``iter_chunks``) as one npz.

    Layout: ``strings`` (unicode array, slot 0 = None) + ``rows_000000...``
    one array per chunk, preserving chunk boundaries.
    """
    arrays: dict[str, np.ndarray] = {}
    strings: Optional[StringTable] = None
    for i, chunk in enumerate(sink.iter_chunks()):
        if not isinstance(chunk, EventChunk):
            if strings is None:
                strings = StringTable()
            chunk = EventChunk.from_tuples(chunk, strings)
        else:
            strings = chunk.strings
        arrays[f"rows_{i:06d}"] = chunk.rows
    if strings is None:
        strings = StringTable()
    arrays["strings"] = strings.to_array()
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_trace(path: str) -> TraceSink:
    """Reload a :func:`save_trace` artifact into an in-memory TraceSink."""
    sink = TraceSink()
    with np.load(path) as data:
        strings = StringTable.from_array(data["strings"])
        for key in sorted(k for k in data.files if k.startswith("rows_")):
            sink(EventChunk(data[key], strings))
    return sink


class CallbackSink:
    """Adapts a per-event callback into a chunk sink."""

    def __init__(self, fn: Callable[[tuple], None]) -> None:
        self.fn = fn

    def __call__(self, chunk: Iterable[tuple]) -> None:
        fn = self.fn
        for event in chunk:
            fn(event)


def count_memory_accesses(sink) -> tuple[int, int]:
    """(reads, writes) in a recorded trace."""
    reads = writes = 0
    for event in sink.events():
        if event[0] == EV_READ:
            reads += 1
        elif event[0] == EV_WRITE:
            writes += 1
    return reads, writes
