"""Runtime substrate: the VM that executes MIR and emits the instrumentation
event stream.

The paper links instrumented binaries against ``libDiscoPoP``; here the
interpreter *is* the instrumentation — it executes MIR over a real flat
word-addressed memory (globals segment, per-thread stacks, a heap) and emits
the same events LLVM instrumentation would: memory accesses with absolute
addresses, control-region entry/exit/iteration, function entry/exit,
allocation/lifetime, lock, and thread events.

Events are delivered to a sink in *chunks* — the producer side of the
paper's producer/consumer profiling pipeline (§2.3.3).
"""

from repro.runtime.events import (
    EV_READ,
    EV_WRITE,
    EV_BGN,
    EV_END,
    EV_ITER,
    EV_FENTRY,
    EV_FEXIT,
    EV_ALLOC,
    EV_FREE,
    EV_LOCK,
    EV_UNLOCK,
    EV_SPAWN,
    EV_JOINED,
    EVENT_DTYPE,
    ChunkBuilder,
    EventChunk,
    SpillingTraceSink,
    StringTable,
    TraceSink,
    CallbackSink,
    load_trace,
    save_trace,
)
from repro.runtime.compile import (
    INLINE_OPS,
    RUN_TERMINATORS,
    CompiledCode,
    bigram_census,
    compile_function,
    find_runs,
)
from repro.runtime.memory import MemoryLayout
from repro.runtime.interpreter import VM, VMError, run_module, run_source

__all__ = [
    "EV_READ",
    "EV_WRITE",
    "EV_BGN",
    "EV_END",
    "EV_ITER",
    "EV_FENTRY",
    "EV_FEXIT",
    "EV_ALLOC",
    "EV_FREE",
    "EV_LOCK",
    "EV_UNLOCK",
    "EV_SPAWN",
    "EV_JOINED",
    "EVENT_DTYPE",
    "ChunkBuilder",
    "EventChunk",
    "SpillingTraceSink",
    "StringTable",
    "TraceSink",
    "CallbackSink",
    "load_trace",
    "save_trace",
    "INLINE_OPS",
    "RUN_TERMINATORS",
    "CompiledCode",
    "bigram_census",
    "compile_function",
    "find_runs",
    "MemoryLayout",
    "VM",
    "VMError",
    "run_module",
    "run_source",
]
